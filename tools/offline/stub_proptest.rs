//! Offline API stub for the `proptest` crate (see tools/offline/README.md).
//!
//! Compiled as `--crate-name proptest` by `tools/offline/verify.sh` so the
//! workspace's property tests can build *and run* without crates.io access.
//! It implements the subset of proptest the workspace uses:
//!
//! * the `proptest!` macro (typed args, `in <strategy>` args, per-block
//!   `#![proptest_config(...)]`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`,
//! * `any::<T>()`, integer range strategies, `proptest::collection::vec`,
//!   `Just` and `Strategy::prop_map`.
//!
//! Sampling is a plain SplitMix64 sweep — no shrinking, no persistence.
//! That is deliberately simpler than real proptest but runs the identical
//! test bodies over the same value domains.

/// Deterministic value source handed to strategies.
pub mod stubrng {
    pub struct StubRng {
        state: u64,
    }

    impl StubRng {
        pub fn new(seed: u64) -> Self {
            StubRng {
                state: seed ^ 0x6a09_e667_f3bc_c909,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod test_runner {
    /// Stub of `ProptestConfig`: only the case count is honoured.
    #[derive(Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Per-case outcome used by the assertion macros.
    pub enum CaseError {
        /// `prop_assume!` rejected the inputs; resample.
        Reject,
        /// `prop_assert*!` failed; abort the test.
        Fail(String),
    }
}

pub mod strategy {
    use crate::stubrng::StubRng;

    /// Stub `Strategy`: a sampleable value domain.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut StubRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Constant strategy.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StubRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StubRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_tuple_strategies {
        ($(($($s:ident/$v:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StubRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategies!((A/a, B/b) (A/a, B/b, C/c) (A/a, B/b, C/c, D/d));

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StubRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StubRng) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty range strategy");
                    let span = (b - a) as u128 + 1;
                    a + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StubRng) -> $t {
                    let span = <$t>::MAX as u128 - self.start as u128 + 1;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }
    impl_range_strategies!(u8, u16, u32, u64, usize);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::stubrng::StubRng;

    /// Types with a default whole-domain strategy (`any::<T>()`) or a direct
    /// draw (typed `proptest!` arguments).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StubRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StubRng) -> Self { rng.next_u64() as $t }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StubRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StubRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::stubrng::StubRng;

    /// Length specs accepted by `vec`: a fixed `usize` or a range.
    pub trait LenSpec {
        fn sample_len(&self, rng: &mut StubRng) -> usize;
    }

    impl LenSpec for usize {
        fn sample_len(&self, _rng: &mut StubRng) -> usize {
            *self
        }
    }

    impl LenSpec for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StubRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + (rng.next_u64() as usize % (self.end - self.start))
        }
    }

    impl LenSpec for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StubRng) -> usize {
            let (a, b) = (*self.start(), *self.end());
            a + (rng.next_u64() as usize % (b - a + 1))
        }
    }

    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: LenSpec> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StubRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, L: LenSpec>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

pub mod sample {
    /// Stub of `proptest::sample::Index`: a position scaled to a length.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(pub(crate) u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl crate::arbitrary::Arbitrary for Index {
        fn arbitrary(rng: &mut crate::stubrng::StubRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__stub_proptest_fns!{ cfg = ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__stub_proptest_fns!{
            cfg = (<$crate::test_runner::Config as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[macro_export]
macro_rules! __stub_proptest_fns {
    (cfg = ($cfg:expr)) => {};
    (cfg = ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            // Seed per test name so runs are deterministic but distinct.
            let __seed = ::std::convert::identity::<&str>(stringify!($name))
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                });
            let mut __rng = $crate::stubrng::StubRng::new(__seed);
            let mut __accepted = 0u32;
            let mut __attempts = 0u32;
            while __accepted < __cfg.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __cfg.cases.saturating_mul(20).max(1000),
                    "proptest stub: prop_assume! rejected too many cases in {}",
                    stringify!($name)
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::CaseError> =
                    (|| {
                        $crate::__stub_proptest_bind!(__rng, $($args)*);
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::CaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::CaseError::Fail(msg)) => {
                        panic!("property failed in {}: {}", stringify!($name), msg)
                    }
                }
            }
        }
        $crate::__stub_proptest_fns!{ cfg = ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! __stub_proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__stub_proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__stub_proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::CaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::CaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::CaseError::Fail(
                format!("{:?} != {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::CaseError::Fail(
                format!("{:?} != {:?}: {}", __a, __b, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err($crate::test_runner::CaseError::Fail(
                format!("both sides equal {:?}", __a),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::CaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}
