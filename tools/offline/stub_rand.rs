//! Offline API stub for the `rand` crate (see tools/offline/README.md).
//!
//! The verification sandbox has no crates.io access, so `tools/offline/verify.sh`
//! compiles this file as `--crate-name rand` and links the workspace against it.
//! It reproduces exactly the API surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `random` / `random_range` / `random_bool` /
//! `fill`, and `SliceRandom::{shuffle, choose}` — backed by a SplitMix64
//! stream. The statistical quality is irrelevant for these tests; only
//! determinism per seed matters.

pub mod rngs {
    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64 core).
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        pub fn random<T: crate::StubRandom>(&mut self) -> T {
            T::from_u64(self.next_u64())
        }

        pub fn random_range<T, R: crate::SampleRange<T>>(&mut self, range: R) -> T {
            range.sample(self)
        }

        pub fn random_bool(&mut self, p: f64) -> bool {
            (self.next_u64() as f64 / u64::MAX as f64) < p
        }

        pub fn fill(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&v[..n]);
            }
        }
    }
}

/// Types producible from a raw 64-bit draw (stub analogue of `Distribution`).
pub trait StubRandom {
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_stub_random {
    ($($t:ty),*) => {$(
        impl StubRandom for $t {
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_stub_random!(u8, u16, u32, u64, usize, i32, i64);

impl StubRandom for bool {
    fn from_u64(v: u64) -> Self {
        v & 1 == 1
    }
}

impl StubRandom for f64 {
    fn from_u64(v: u64) -> Self {
        v as f64 / u64::MAX as f64
    }
}

/// Ranges a value can be drawn from (stub analogue of `SampleRange`).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty random_range");
                let span = (b - a) as u128 + 1;
                a + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let frac = rng.next_u64() as $t / u64::MAX as $t;
                self.start + frac * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Stand-in for `rand::Rng`. The generation methods live inherently on
/// the stub [`rngs::StdRng`], so this trait only has to exist for
/// `use rand::Rng;` imports to resolve.
pub trait Rng {}

impl Rng for rngs::StdRng {}

/// Seeding trait matching the call form `StdRng::seed_from_u64(s)`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_state(seed)
    }
}

/// Slice helpers matching `rand::seq::SliceRandom` as used in the workspace.
pub trait SliceRandom {
    type Item;
    fn shuffle(&mut self, rng: &mut rngs::StdRng);
    fn choose(&self, rng: &mut rngs::StdRng) -> Option<&Self::Item>;
    fn choose_multiple(
        &self,
        rng: &mut rngs::StdRng,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut rngs::StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..i + 1);
            self.swap(i, j);
        }
    }

    fn choose(&self, rng: &mut rngs::StdRng) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }

    fn choose_multiple(&self, rng: &mut rngs::StdRng, amount: usize) -> std::vec::IntoIter<&T> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        order.truncate(amount.min(self.len()));
        order
            .into_iter()
            .map(|i| &self[i])
            .collect::<Vec<&T>>()
            .into_iter()
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SampleRange, SeedableRng, SliceRandom, StubRandom};
}
