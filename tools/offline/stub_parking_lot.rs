//! Offline API stub for `parking_lot` (see tools/offline/README.md).
//!
//! Wraps `std::sync::Mutex` behind parking_lot's panic-free `lock()`
//! signature. Poisoning is swallowed (parking_lot has no poisoning), which
//! matches the workspace's usage: mutexes only guard plan caches and stat
//! counters.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}
