//! Offline proc-macro stub for `#[derive(Serialize)]` (see README.md).
//!
//! Compiled by `tools/offline/verify.sh` as `--crate-name serde_derive
//! --crate-type proc-macro` and re-exported by `stub_serde.rs`, so the
//! workspace's `#[derive(serde::Serialize)]` attributes expand without
//! crates.io access. It token-scans the item directly (no `syn`) and
//! supports exactly the shapes the workspace uses: non-generic structs
//! with named fields, and enums whose variants are unit or braced. The
//! generated impl writes serde's externally-tagged JSON layout through
//! the stub `serde::Serialize` trait.

extern crate proc_macro;

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Steps past attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Field names of a braced `{ name: Type, ... }` body, skipping types
/// with angle-bracket depth tracking (`Vec<u64>`, `Option<Vec<u8>>`, …).
fn field_names(body: TokenStream) -> Vec<String> {
    let tt: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tt.len() {
        i = skip_meta(&tt, i);
        if i >= tt.len() {
            break;
        }
        let name = match &tt[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("stub serde derive: expected field name, got `{other}`"),
        };
        i += 1;
        match &tt[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("stub serde derive: expected `:` after `{name}`, got `{other}`"),
        }
        let mut angle = 0i32;
        while i < tt.len() {
            match &tt[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the separating comma (or off the end)
        names.push(name);
    }
    names
}

fn struct_impl(name: &str, body: TokenStream) -> String {
    let pairs: Vec<String> = field_names(body)
        .iter()
        .map(|f| format!("(\"{f}\", &self.{f} as &dyn ::serde::Serialize)"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn stub_json(&self, out: &mut ::std::string::String) {{\n\
         ::serde::obj(out, &[{}]);\n}}\n}}",
        pairs.join(", ")
    )
}

fn enum_impl(name: &str, body: TokenStream) -> String {
    let tt: Vec<TokenTree> = body.into_iter().collect();
    let mut arms = Vec::new();
    let mut i = 0;
    while i < tt.len() {
        i = skip_meta(&tt, i);
        if i >= tt.len() {
            break;
        }
        let variant = match &tt[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("stub serde derive: expected variant name, got `{other}`"),
        };
        i += 1;
        match tt.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = field_names(g.stream());
                let pats = fields.join(", ");
                let pairs: Vec<String> = fields
                    .iter()
                    .map(|f| format!("(\"{f}\", {f} as &dyn ::serde::Serialize)"))
                    .collect();
                arms.push(format!(
                    "{name}::{variant} {{ {pats} }} => {{\n\
                     out.push('{{');\n\
                     ::serde::string(out, \"{variant}\");\n\
                     out.push(':');\n\
                     ::serde::obj(out, &[{}]);\n\
                     out.push('}}');\n}}",
                    pairs.join(", ")
                ));
                i += 1;
                if let Some(TokenTree::Punct(p)) = tt.get(i) {
                    if p.as_char() == ',' {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                arms.push(format!(
                    "{name}::{variant} => ::serde::string(out, \"{variant}\"),"
                ));
                i += 1;
            }
            None => {
                arms.push(format!(
                    "{name}::{variant} => ::serde::string(out, \"{variant}\"),"
                ));
            }
            Some(other) => {
                panic!("stub serde derive: unsupported variant shape at `{other}` (tuple variants are not used in this workspace)")
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn stub_json(&self, out: &mut ::std::string::String) {{\n\
         match self {{\n{}\n}}\n}}\n}}",
        arms.join("\n")
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("stub serde derive: expected `struct`/`enum`, got `{other}`"),
    };
    i += 1;
    let name = tokens[i].to_string();
    i += 1;
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "stub serde derive on `{name}`: only plain braced items are supported, got {other:?}"
        ),
    };
    let code = match kind.as_str() {
        "struct" => struct_impl(&name, body),
        "enum" => enum_impl(&name, body),
        other => panic!("stub serde derive: unsupported item kind `{other}`"),
    };
    code.parse().expect("stub serde derive generated invalid Rust")
}
