//! Offline API stub for `serde` — `Serialize` only (see README.md).
//!
//! `tools/offline/verify.sh` compiles this as `--crate-name serde` with
//! the proc-macro from `stub_serde_derive.rs` linked as `serde_derive`,
//! so `use serde::Serialize; #[derive(Serialize)]` resolves exactly like
//! the real crate's `derive` feature. The trait is a single method that
//! appends compact JSON; `stub_serde_json.rs` builds `to_string[_pretty]`
//! on top of it. Field order is derive order, so per-seed determinism —
//! the only property the offline tests assert about serialisation —
//! holds just as it does under real `serde_json`.

pub use serde_derive::Serialize;

/// Stub analogue of `serde::Serialize`: append `self` as JSON.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn stub_json(&self, out: &mut String);
}

/// Appends a JSON string literal with minimal escaping.
pub fn string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON object from (key, value) pairs — the derive's target.
pub fn obj(out: &mut String, fields: &[(&str, &dyn Serialize)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        string(out, k);
        out.push(':');
        v.stub_json(out);
    }
    out.push('}');
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn stub_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn stub_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // Mirrors serde_json's arbitrary-precision-off default.
                    out.push_str("null");
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn stub_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn stub_json(&self, out: &mut String) {
        string(out, self);
    }
}

impl Serialize for String {
    fn stub_json(&self, out: &mut String) {
        string(out, self);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn stub_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.stub_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn stub_json(&self, out: &mut String) {
        self.as_slice().stub_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn stub_json(&self, out: &mut String) {
        self.as_slice().stub_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn stub_json(&self, out: &mut String) {
        match self {
            Some(v) => v.stub_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn stub_json(&self, out: &mut String) {
        (**self).stub_json(out);
    }
}
