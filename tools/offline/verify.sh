#!/usr/bin/env bash
# Offline tier-1 verification for sandboxes without crates.io access.
#
# `cargo build && cargo test` need the real registry; when it is
# unreachable this script reproduces the same coverage with direct rustc
# invocations: it compiles API stubs for the external dependencies
# (rand, proptest, parking_lot, crossbeam, criterion, serde/serde_json —
# see the stub_*.rs headers), builds every workspace crate against them
# in dependency order, then compiles and runs each crate's unit tests,
# the root integration tests, the cli binary (plus a live serve/load
# smoke against a loopback daemon), and the bench binaries (smoke-run
# once via the criterion stub). The serde stub covers Serialize only, so
# the bench crate's serde-based lib is compile-skipped here; CI covers it.
#
# Usage: tools/offline/verify.sh [--asan] [--tsan] [--clippy]
#   --asan    additionally run the gf/ec kernel tests under AddressSanitizer
#             (nightly rustc with -Zsanitizer=address, real SIMD paths)
#   --tsan    additionally run the concurrency-bearing crates (ec, rs, xor)
#             under ThreadSanitizer (nightly rustc with -Zsanitizer=thread;
#             std stays uninstrumented, see tsan_suppressions.txt)
#   --clippy  additionally lint every compiled crate with clippy-driver
set -euo pipefail

REPO="$(cd "$(dirname "$0")/../.." && pwd)"
OUT="${APEC_OFFLINE_OUT:-/tmp/apec-offline}"
EDITION=2021
RUN_ASAN=0
RUN_TSAN=0
RUN_CLIPPY=0
for arg in "$@"; do
  case "$arg" in
    --asan) RUN_ASAN=1 ;;
    --tsan) RUN_TSAN=1 ;;
    --clippy) RUN_CLIPPY=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

LIBDIR="$OUT/rlibs"
TESTDIR="$OUT/tests"
mkdir -p "$LIBDIR" "$TESTDIR"

RUSTC="${RUSTC:-rustc}"
COMMON=(--edition "$EDITION" -O -L "dependency=$LIBDIR")

# crate-name -> root source path, in dependency order.
CRATES=(
  "apec_gf:crates/gf/src/lib.rs:"
  "apec_bitmatrix:crates/bitmatrix/src/lib.rs:apec_gf"
  "apec_ec:crates/ec/src/lib.rs:apec_gf crossbeam parking_lot rand"
  "apec_rs:crates/rs/src/lib.rs:apec_gf apec_ec parking_lot"
  "apec_lrc:crates/lrc/src/lib.rs:apec_gf apec_ec apec_rs"
  "apec_xor:crates/xor/src/lib.rs:apec_gf apec_ec apec_bitmatrix parking_lot"
  "approx_code:crates/core/src/lib.rs:apec_gf apec_bitmatrix apec_ec apec_rs apec_lrc apec_xor parking_lot"
  "apec_video:crates/video/src/lib.rs:rand"
  "apec_recovery:crates/recovery/src/lib.rs:apec_video"
  "apec_analysis:crates/analysis/src/lib.rs:approx_code apec_ec rand"
  "apec_cluster:crates/cluster/src/lib.rs:apec_ec apec_rs apec_lrc apec_xor approx_code parking_lot rand"
  "apec_audit:crates/audit/src/lib.rs:apec_gf apec_bitmatrix apec_ec apec_rs apec_lrc apec_xor approx_code"
  "apec_tier:crates/tier/src/lib.rs:apec_ec apec_rs apec_lrc approx_code apec_video apec_recovery apec_analysis apec_cluster rand serde serde_json"
  "apec_store:crates/store/src/lib.rs:apec_ec approx_code"
  "apec_maint:crates/maint/src/lib.rs:apec_ec apec_store apec_tier approx_code"
  "apec_serve:crates/serve/src/lib.rs:apec_ec apec_store apec_tier apec_maint"
  "approximate_code:src/lib.rs:apec_gf apec_bitmatrix apec_ec apec_rs apec_lrc apec_xor approx_code apec_video apec_recovery apec_analysis apec_cluster apec_audit apec_tier rand"
)

STUBS=(
  "rand:tools/offline/stub_rand.rs"
  "proptest:tools/offline/stub_proptest.rs"
  "parking_lot:tools/offline/stub_parking_lot.rs"
  "crossbeam:tools/offline/stub_crossbeam.rs"
  "criterion:tools/offline/stub_criterion.rs"
)

externs_for() {
  local deps="$1" e=()
  for d in $deps; do
    e+=(--extern "$d=$LIBDIR/lib$d.rlib")
  done
  echo "${e[@]}"
}

echo "== building dependency stubs"
for entry in "${STUBS[@]}"; do
  name="${entry%%:*}"; src="${entry#*:}"
  "$RUSTC" "${COMMON[@]}" --crate-name "$name" --crate-type rlib \
    "$REPO/$src" -o "$LIBDIR/lib$name.rlib" --cap-lints allow
done

echo "== building serde stubs (proc-macro derive + trait + json)"
"$RUSTC" --edition "$EDITION" -O --crate-name serde_derive --crate-type proc-macro \
  "$REPO/tools/offline/stub_serde_derive.rs" -o "$LIBDIR/libserde_derive.so" --cap-lints allow
"$RUSTC" "${COMMON[@]}" --crate-name serde --crate-type rlib \
  --extern serde_derive="$LIBDIR/libserde_derive.so" \
  "$REPO/tools/offline/stub_serde.rs" -o "$LIBDIR/libserde.rlib" --cap-lints allow
"$RUSTC" "${COMMON[@]}" --crate-name serde_json --crate-type rlib \
  --extern serde="$LIBDIR/libserde.rlib" \
  "$REPO/tools/offline/stub_serde_json.rs" -o "$LIBDIR/libserde_json.rlib" --cap-lints allow

echo "== building workspace crates"
for entry in "${CRATES[@]}"; do
  IFS=: read -r name src deps <<<"$entry"
  [ -f "$REPO/$src" ] || { echo "  skip $name (missing $src)"; continue; }
  # shellcheck disable=SC2046
  "$RUSTC" "${COMMON[@]}" --crate-name "$name" --crate-type rlib \
    $(externs_for "$deps") "$REPO/$src" -o "$LIBDIR/lib$name.rlib"
  echo "  lib $name ok"
done

echo "== building + running unit tests"
# Tests skipped ONLY under the stub RNG: they assert statistical quality
# (PSNR bars) of synthetic video generated from the exact StdRng stream,
# which the SplitMix64 stub cannot reproduce. CI runs them with real rand.
skips_for() {
  case "$1" in
    apec_recovery) echo "--skip block_motion_clears_35db_and_rivals_global" ;;
    *) echo "" ;;
  esac
}
for entry in "${CRATES[@]}"; do
  IFS=: read -r name src deps <<<"$entry"
  [ -f "$REPO/$src" ] || continue
  # shellcheck disable=SC2046
  "$RUSTC" "${COMMON[@]}" --crate-name "$name" --test \
    $(externs_for "$deps") \
    --extern proptest="$LIBDIR/libproptest.rlib" \
    --extern rand="$LIBDIR/librand.rlib" \
    "$REPO/$src" -o "$TESTDIR/$name-test"
  # shellcheck disable=SC2046
  "$TESTDIR/$name-test" --test-threads "$(nproc)" -q $(skips_for "$name")
  echo "  unit $name ok"
done

echo "== building + running integration tests"
ROOT_EXTERNS=(--extern approximate_code="$LIBDIR/libapproximate_code.rlib"
  --extern rand="$LIBDIR/librand.rlib"
  --extern proptest="$LIBDIR/libproptest.rlib")
for d in apec_gf apec_bitmatrix apec_ec apec_rs apec_lrc apec_xor approx_code \
         apec_video apec_recovery apec_analysis apec_cluster apec_audit apec_tier; do
  ROOT_EXTERNS+=(--extern "$d=$LIBDIR/lib$d.rlib")
done
for t in "$REPO"/tests/*.rs; do
  name="$(basename "$t" .rs)"
  "$RUSTC" "${COMMON[@]}" --crate-name "$name" --test "${ROOT_EXTERNS[@]}" \
    "$t" -o "$TESTDIR/it-$name"
  "$TESTDIR/it-$name" --test-threads "$(nproc)" -q
  echo "  integration $name ok"
done

echo "== cli: build the apec binary, unit tests, serve/load smoke"
# The cli is a bin target, so it gets its own lane instead of a CRATES
# row. The smoke run drives the full daemon stack end-to-end: init a
# demo store, serve it on a loopback port, replay the seeded load
# harness (failures + repairs mid-run), assert the run was healthy (the
# cli exits non-zero on any mismatch or transport error), and validate
# the BENCH_serve.json it writes against the registered schema.
CLI_EXTERNS=()
for d in apec_audit apec_ec approx_code apec_video apec_recovery \
         apec_maint apec_serve apec_store apec_tier; do
  CLI_EXTERNS+=(--extern "$d=$LIBDIR/lib$d.rlib")
done
"$RUSTC" "${COMMON[@]}" --crate-name apec --crate-type bin "${CLI_EXTERNS[@]}" \
  "$REPO/crates/cli/src/main.rs" -o "$TESTDIR/apec"
echo "  bin apec ok"
"$RUSTC" "${COMMON[@]}" --crate-name apec --test "${CLI_EXTERNS[@]}" \
  "$REPO/crates/cli/src/main.rs" -o "$TESTDIR/apec-cli-test"
"$TESTDIR/apec-cli-test" --test-threads "$(nproc)" -q
echo "  unit apec ok"
SERVE_DIR="$OUT/serve-smoke-vault"
SERVE_ADDR="127.0.0.1:$(( 42000 + $$ % 20000 ))"
rm -rf "$SERVE_DIR"
"$TESTDIR/apec" serve --dir "$SERVE_DIR" --addr "$SERVE_ADDR" --demo 1 \
  > "$OUT/serve-smoke.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  grep -q "serving" "$OUT/serve-smoke.log" 2>/dev/null && break
  sleep 0.1
done
"$TESTDIR/apec" load --addr "$SERVE_ADDR" --seed 7 \
  --bitrot 4 --scrub-json "$OUT/BENCH_scrub.json" \
  --json "$OUT/BENCH_serve.json" --shutdown 1
wait "$SERVE_PID"
trap - EXIT
echo "  serve/load smoke ok ($OUT/BENCH_serve.json, $OUT/BENCH_scrub.json)"
# Standalone maintenance pass over the now-offline vault: inject seeded
# bit-rot, then prove one synchronous scrub finds and heals all of it
# (the cli exits non-zero if any stripe cannot be fully recovered).
"$TESTDIR/apec" scrub --dir "$SERVE_DIR" --inject 3 --inject-seed 99 --repair 1
# Capture, then grep: `grep -q` exits at first match and the still-
# printing cli would take an EPIPE under pipefail.
RESCRUB=$("$TESTDIR/apec" scrub --dir "$SERVE_DIR")
grep -q "0 unhealthy shards" <<<"$RESCRUB"
echo "  scrub smoke ok"

echo "== xtask: build, unit tests, fixture regressions, workspace lint"
# xtask is dependency-free, so this lane needs no stubs. The fixture
# integration tests include the lint module tree via #[path] and read
# their fixtures relative to the repo root; the final invocation is the
# real call-graph lint over the workspace, ratcheted against the
# committed xtask/panic_baseline.json, xtask/transitive_baseline.json
# and xtask/lock_baseline.json.
"$RUSTC" --edition "$EDITION" -O --crate-name xtask \
  "$REPO/xtask/src/main.rs" -o "$TESTDIR/xtask"
"$RUSTC" --edition "$EDITION" -O --crate-name xtask --test \
  "$REPO/xtask/src/main.rs" -o "$TESTDIR/xtask-unit"
"$TESTDIR/xtask-unit" --test-threads "$(nproc)" -q
echo "  unit xtask ok"
"$RUSTC" --edition "$EDITION" -O --crate-name lint_fixtures --test \
  "$REPO/xtask/tests/lint_fixtures.rs" -o "$TESTDIR/xtask-fixtures"
(cd "$REPO" && "$TESTDIR/xtask-fixtures" --test-threads "$(nproc)" -q)
echo "  fixtures xtask ok"
"$RUSTC" --edition "$EDITION" -O --crate-name callgraph_fixtures --test \
  "$REPO/xtask/tests/callgraph_fixtures.rs" -o "$TESTDIR/xtask-cg-fixtures"
(cd "$REPO" && "$TESTDIR/xtask-cg-fixtures" --test-threads "$(nproc)" -q)
echo "  callgraph fixtures xtask ok"
"$RUSTC" --edition "$EDITION" -O --crate-name lock_fixtures --test \
  "$REPO/xtask/tests/lock_fixtures.rs" -o "$TESTDIR/xtask-lk-fixtures"
(cd "$REPO" && "$TESTDIR/xtask-lk-fixtures" --test-threads "$(nproc)" -q)
echo "  lock fixtures xtask ok"
(cd "$REPO" && "$TESTDIR/xtask" lint --report "$OUT/panics.json" --sarif "$OUT/lint.sarif" \
  --stats "$OUT/LINT_STATS.json" --enforce-time-budget)
echo "  lint + triple ratchet ok ($OUT/panics.json, $OUT/lint.sarif, $OUT/LINT_STATS.json)"
(cd "$REPO" && "$TESTDIR/xtask" bench-check "$OUT/LINT_STATS.json")
(cd "$REPO" && "$TESTDIR/xtask" bench-check)
echo "  bench-check (lint stats + committed artifacts) ok"

echo "== compiling benches (stub criterion; smoke-running repair_benches)"
# The stub harness runs every registered routine once, so compiling is a
# real type-check of the bench code and running is a smoke test.
# CARGO_MANIFEST_DIR (normally set by cargo) is pointed into $OUT so the
# hand-timed JSON summaries land there instead of dirtying the repo root.
BENCH_EXTERNS=(--extern criterion="$LIBDIR/libcriterion.rlib"
  --extern rand="$LIBDIR/librand.rlib")
for d in apec_gf apec_bitmatrix apec_ec apec_rs apec_lrc apec_xor approx_code \
         apec_video apec_recovery apec_analysis apec_cluster apec_tier; do
  BENCH_EXTERNS+=(--extern "$d=$LIBDIR/lib$d.rlib")
done
mkdir -p "$OUT/bench-manifest/sub"
for b in "$REPO"/crates/bench/benches/*.rs; do
  name="$(basename "$b" .rs)"
  CARGO_MANIFEST_DIR="$OUT/bench-manifest/sub" \
    "$RUSTC" "${COMMON[@]}" --crate-name "$name" "${BENCH_EXTERNS[@]}" \
    "$b" -o "$TESTDIR/bench-$name"
  echo "  bench $name compiles"
done
"$TESTDIR/bench-repair_benches" >/dev/null 2>&1 || "$TESTDIR/bench-repair_benches"
echo "  bench repair_benches smoke ok ($OUT/BENCH_repair.json)"
"$TESTDIR/bench-encode_benches" >/dev/null 2>&1 || "$TESTDIR/bench-encode_benches"
echo "  bench encode_benches smoke ok ($OUT/BENCH_encode.json)"
CARGO_MANIFEST_DIR="$OUT/bench-manifest/sub" \
  "$TESTDIR/bench-tier_benches" >/dev/null 2>&1 || "$TESTDIR/bench-tier_benches"
echo "  bench tier_benches smoke ok ($OUT/BENCH_tier.json)"
# Schema-validate the freshly generated artifacts too (the smoke runs
# write them under $OUT, one directory above the fake manifest dir).
"$TESTDIR/xtask" bench-check "$OUT/BENCH_repair.json" "$OUT/BENCH_encode.json" "$OUT/BENCH_tier.json" "$OUT/BENCH_serve.json" "$OUT/BENCH_scrub.json"
echo "  bench-check (generated artifacts) ok"

if [ "$RUN_CLIPPY" = 1 ]; then
  echo "== clippy (offline, per-crate)"
  CLIPPY="${CLIPPY_DRIVER:-clippy-driver}"
  for entry in "${CRATES[@]}"; do
    IFS=: read -r name src deps <<<"$entry"
    [ -f "$REPO/$src" ] || continue
    # shellcheck disable=SC2046
    "$CLIPPY" "${COMMON[@]}" --crate-name "$name" --crate-type rlib \
      $(externs_for "$deps") "$REPO/$src" -o "$LIBDIR/lib$name.rlib" \
      -W clippy::all -D warnings
    echo "  clippy $name ok"
  done
fi

if [ "$RUN_ASAN" = 1 ]; then
  echo "== AddressSanitizer lane (nightly, real SIMD paths)"
  ASAN_OUT="$OUT/asan"
  mkdir -p "$ASAN_OUT/rlibs" "$ASAN_OUT/tests"
  NIGHTLY=(rustc +nightly --edition "$EDITION" -O -Zsanitizer=address
    -L "dependency=$ASAN_OUT/rlibs")
  for entry in "${STUBS[@]}"; do
    name="${entry%%:*}"; src="${entry#*:}"
    "${NIGHTLY[@]}" --crate-name "$name" --crate-type rlib \
      "$REPO/$src" -o "$ASAN_OUT/rlibs/lib$name.rlib" --cap-lints allow
  done
  for entry in "${CRATES[@]}"; do
    IFS=: read -r name src deps <<<"$entry"
    [ -f "$REPO/$src" ] || continue
    e=()
    for d in $deps; do e+=(--extern "$d=$ASAN_OUT/rlibs/lib$d.rlib"); done
    "${NIGHTLY[@]}" --crate-name "$name" --crate-type rlib \
      "${e[@]}" "$REPO/$src" -o "$ASAN_OUT/rlibs/lib$name.rlib"
    case "$name" in
      apec_gf|apec_bitmatrix|apec_ec|apec_rs|apec_xor|apec_audit)
        "${NIGHTLY[@]}" --crate-name "$name" --test \
          "${e[@]}" \
          --extern proptest="$ASAN_OUT/rlibs/libproptest.rlib" \
          --extern rand="$ASAN_OUT/rlibs/librand.rlib" \
          "$REPO/$src" -o "$ASAN_OUT/tests/$name-test"
        ASAN_OPTIONS=detect_leaks=1 "$ASAN_OUT/tests/$name-test" -q
        echo "  asan $name ok"
        ;;
    esac
  done
fi

if [ "$RUN_TSAN" = 1 ]; then
  echo "== ThreadSanitizer lane (nightly, crossbeam pipelines)"
  # The concurrency-bearing crates: ec's segmented encode/reconstruct
  # pipeline (the one Ordering::Relaxed site lives there) plus the codec
  # crates sharing plan caches behind parking_lot mutexes. The prebuilt
  # std is uninstrumented (-Cunsafe-allow-abi-mismatch=sanitizer), so
  # std-internal handshakes are suppressed via tsan_suppressions.txt;
  # workspace frames are never suppressed. The harness runs single-
  # threaded — each test's own crossbeam scope provides the
  # concurrency under test, and parallel libtest threads only add
  # uninstrumented-capture-buffer noise.
  TSAN_OUT="$OUT/tsan"
  mkdir -p "$TSAN_OUT/rlibs" "$TSAN_OUT/tests"
  TSANC=(rustc +nightly --edition "$EDITION" -O -Zsanitizer=thread
    -Cunsafe-allow-abi-mismatch=sanitizer -L "dependency=$TSAN_OUT/rlibs")
  for entry in "${STUBS[@]}"; do
    name="${entry%%:*}"; src="${entry#*:}"
    "${TSANC[@]}" --crate-name "$name" --crate-type rlib \
      "$REPO/$src" -o "$TSAN_OUT/rlibs/lib$name.rlib" --cap-lints allow
  done
  for entry in "${CRATES[@]}"; do
    IFS=: read -r name src deps <<<"$entry"
    case "$name" in
      apec_gf|apec_bitmatrix|apec_ec|apec_rs|apec_xor) ;;
      *) continue ;;
    esac
    e=()
    for d in $deps; do e+=(--extern "$d=$TSAN_OUT/rlibs/lib$d.rlib"); done
    "${TSANC[@]}" --crate-name "$name" --crate-type rlib \
      "${e[@]}" "$REPO/$src" -o "$TSAN_OUT/rlibs/lib$name.rlib"
    case "$name" in
      apec_ec|apec_rs|apec_xor)
        "${TSANC[@]}" --crate-name "$name" --test \
          "${e[@]}" \
          --extern proptest="$TSAN_OUT/rlibs/libproptest.rlib" \
          --extern rand="$TSAN_OUT/rlibs/librand.rlib" \
          "$REPO/$src" -o "$TSAN_OUT/tests/$name-test"
        TSAN_OPTIONS="halt_on_error=1 suppressions=$REPO/tools/offline/tsan_suppressions.txt" \
          "$TSAN_OUT/tests/$name-test" -q --test-threads 1
        echo "  tsan $name ok"
        ;;
    esac
  done
fi

echo "offline verification passed"
