//! Offline API stub for `crossbeam` (see tools/offline/README.md).
//!
//! Implements `crossbeam::thread::scope` / `Scope::spawn` on top of
//! `std::thread::scope`. One semantic difference: a panicking worker makes
//! the std scope panic at join instead of surfacing as `Err`, which is
//! equivalent for the workspace's `.expect(...)` call sites.

pub mod thread {
    /// Stub of `crossbeam::thread::Scope`.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
