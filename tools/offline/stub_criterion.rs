//! Offline API stub for the `criterion` benchmark harness (see
//! tools/offline/README.md).
//!
//! The verification sandbox has no crates.io access, so
//! `tools/offline/verify.sh` compiles this file as `--crate-name criterion`
//! and builds the bench binaries against it. It reproduces exactly the API
//! surface the workspace's benches use — `Criterion`, `BenchmarkGroup`,
//! `Bencher::iter`, `Throughput::Bytes`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros (including the
//! `name/config/targets` form). Every registered benchmark routine is run
//! **once** as a smoke test; no statistics are collected. CI runs the real
//! criterion for timing.

/// Stand-in for `criterion::Criterion`. Carries no state; benchmark
/// routines execute immediately, once.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        smoke_run(&id.into_benchmark_id().label, f);
        self
    }

    pub fn final_summary(&mut self) {}
}

/// Stand-in for `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        smoke_run(&label, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        smoke_run(&label, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn smoke_run<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher;
    f(&mut b);
    eprintln!("  smoke {label} ok");
}

/// Stand-in for `criterion::Bencher`; runs the routine exactly once.
pub struct Bencher;

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _ = routine();
    }
}

/// Stand-in for `criterion::Throughput`.
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Stand-in for `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Mirror of criterion's `IntoBenchmarkId` conversion for the id
/// arguments of `bench_function`/`bench_with_input`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
