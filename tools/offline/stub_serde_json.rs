//! Offline API stub for `serde_json` (see README.md).
//!
//! Provides `to_string` / `to_string_pretty` over the stub
//! `serde::Serialize` trait. "Pretty" output here is the same compact
//! JSON — the offline tests assert determinism and content, never
//! whitespace — and the error type is uninhabited-in-practice because
//! the stub serialiser cannot fail.

/// Stub analogue of `serde_json::Error`. The stub writer never fails,
/// so this is constructed only to satisfy the `Result` signature.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("stub serde_json error (unreachable)")
    }
}

impl std::error::Error for Error {}

/// Serialises to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.stub_json(&mut out);
    Ok(out)
}

/// Stub "pretty" output: identical to [`to_string`]; offline tests only
/// assert determinism and content, never formatting.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string(value)
}
