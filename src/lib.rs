//! Approximate Code — umbrella crate.
//!
//! This is the façade for the whole workspace: a from-scratch Rust
//! reproduction of *"Approximate Code: A Cost-Effective Erasure Coding
//! Framework for Tiered Video Storage in Cloud Systems"* (ICPP 2019).
//! Each subsystem lives in its own crate and is re-exported here as a
//! module:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`gf`] | `apec-gf` | GF(2^8) arithmetic, matrices, bulk kernels |
//! | [`bitmatrix`] | `apec-bitmatrix` | GF(2) solver + XOR recovery plans |
//! | [`ec`] | `apec-ec` | the `ErasureCode` trait, stripes, parallel pipeline |
//! | [`rs`] | `apec-rs` | Reed-Solomon / Cauchy-RS |
//! | [`lrc`] | `apec-lrc` | Azure-style LRC |
//! | [`xor`] | `apec-xor` | EVENODD, RDP, STAR, TIP-like array codes |
//! | [`approx`] | `approx-code` | **the paper's framework**: APPR.RS/LRC/STAR/TIP |
//! | [`video`] | `apec-video` | synthetic H.264-like streams, tiered container |
//! | [`recovery`] | `apec-recovery` | frame interpolation + PSNR |
//! | [`cluster`] | `apec-cluster` | functional cluster + repair timing model |
//! | [`analysis`] | `apec-analysis` | reliability/overhead/write-cost models |
//! | [`audit`] | `apec-audit` | static construction auditor: rank sweeps + schedule proofs |
//! | [`tier`] | `apec-tier` | tier lifecycle engine: workload → demotion → cost report |
//!
//! Start with `examples/quickstart.rs`, then `examples/video_vault.rs`
//! for the full video→tiers→cluster→failure→interpolation pipeline.
//!
//! ```
//! use approximate_code::prelude::*;
//!
//! let code = ApproxCode::build_named(BaseFamily::Rs, 4, 1, 2, 3, Structure::Uneven)?;
//! let shard = vec![0u8; code.shard_alignment() * 64];
//! let data: Vec<Vec<u8>> = (0..code.data_nodes()).map(|_| shard.clone()).collect();
//! let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
//! let parity = code.encode(&refs)?;
//!
//! let mut stripe: Vec<Option<Vec<u8>>> =
//!     data.into_iter().chain(parity).map(Some).collect();
//! stripe[0] = None;
//! stripe[1] = None; // two failures in the important stripe
//! let report = code.reconstruct_tiered(&mut stripe)?;
//! assert!(report.important_recovered);
//! # Ok::<(), apec_ec::EcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use apec_analysis as analysis;
pub use apec_audit as audit;
pub use apec_bitmatrix as bitmatrix;
pub use apec_cluster as cluster;
pub use apec_ec as ec;
pub use apec_gf as gf;
pub use apec_lrc as lrc;
pub use apec_recovery as recovery;
pub use apec_rs as rs;
pub use apec_tier as tier;
pub use apec_video as video;
pub use apec_xor as xor;
pub use approx_code as approx;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::approx::{ApproxCode, BaseFamily, Structure, TieredReport};
    pub use crate::cluster::{Cluster, ClusterConfig, RepairPlanner};
    pub use crate::ec::{DecodeSession, EncodeSession, ErasureCode, RepairPlan, RepairScratch};
    pub use crate::lrc::Lrc;
    pub use crate::recovery::{recover_lost_frames, Interpolator};
    pub use crate::rs::ReedSolomon;
    pub use crate::tier::{
        DemotionPolicy, TierConfig, TierEngine, TierReport, Trace, WorkloadConfig,
    };
    pub use crate::video::{GopConfig, SyntheticVideo};
    pub use crate::xor::{evenodd, rdp, star, tip_like};
}
