//! End-to-end acceptance tests of the tier lifecycle engine.
//!
//! These assert the PR's contract: same seed ⇒ byte-identical report,
//! measured storage overhead of demoted objects matches the analytical
//! model, every byte of conversion traffic is accounted, and approximate
//! reads on cold objects survive every within-tolerance failure pattern
//! with a finite PSNR instead of a panic.

use approximate_code::audit::policy::for_each_pattern;
use approximate_code::tier::{Tier, TierConfig, TierEngine, WorkloadConfig};

fn run_report(seed: u64) -> approximate_code::tier::TierReport {
    let mut engine = TierEngine::new(TierConfig::demo(seed)).expect("demo config is valid");
    engine
        .run(&WorkloadConfig::small(seed))
        .expect("trace executes")
}

#[test]
fn same_seed_produces_byte_identical_reports() {
    let a = run_report(7);
    let b = run_report(7);
    assert_eq!(a.to_json(), b.to_json(), "same seed must replay identically");
    assert_eq!(a.digest(), b.digest());

    let c = run_report(8);
    assert_ne!(a.digest(), c.digest(), "different seeds must diverge");
}

#[test]
fn the_lifecycle_actually_moves_data_and_saves_storage() {
    let report = run_report(42);
    assert!(report.events.ingests > 0 && report.events.reads > 0);
    assert!(report.events.failures > 0 && report.events.repairs > 0);
    assert!(report.tiers.demotions > 0, "the demo policy must demote");
    assert!(report.reads.cold > 0, "cold objects must still be read");
    assert!(
        report.costs.savings_ratio() > 0.0,
        "tiering must beat the all-hot counterfactual: {:?}",
        report.costs
    );
    assert!(!report.timeline.is_empty());
    assert!(report.latency.max_ns > 0);
}

#[test]
fn demoted_storage_overhead_matches_the_analytical_model() {
    let report = run_report(3);
    assert!(report.tiers.cold_objects > 0, "need demoted objects to measure");
    // The demo cold code is APPR.RS(k=5, r=1, g=2, h=3): 20 nodes over 15
    // data nodes, overhead 4/3 — measured must match analytical exactly
    // (both are integer node-count ratios).
    let oh = &report.overhead;
    assert!(
        (oh.measured_cold - oh.expected_cold).abs() < 1e-12,
        "cold overhead: measured {} vs analytic {}",
        oh.measured_cold,
        oh.expected_cold
    );
    assert!(
        (oh.measured_hot - oh.expected_hot).abs() < 1e-12,
        "hot overhead: measured {} vs analytic {}",
        oh.measured_hot,
        oh.expected_hot
    );
}

#[test]
fn every_conversion_byte_is_accounted() {
    let report = run_report(13);
    assert!(!report.conversions.is_empty());
    let read_sum: u64 = report.conversions.iter().map(|c| c.bytes_read).sum();
    let write_sum: u64 = report.conversions.iter().map(|c| c.bytes_written).sum();
    assert_eq!(read_sum, report.io.conversion.read_bytes);
    assert_eq!(write_sum, report.io.conversion.write_bytes);
    assert!(write_sum > 0, "conversions must write the cold encoding");

    // The four categories partition everything the cluster counters saw.
    let io = &report.io;
    assert_eq!(
        io.ingest.read_bytes + io.read.read_bytes + io.conversion.read_bytes + io.repair.read_bytes,
        io.cluster_total.read_bytes,
        "read bytes must partition: {io:?}"
    );
    assert_eq!(
        io.ingest.write_bytes
            + io.read.write_bytes
            + io.conversion.write_bytes
            + io.repair.write_bytes,
        io.cluster_total.write_bytes,
        "write bytes must partition: {io:?}"
    );
}

#[test]
fn cold_reads_survive_every_within_tolerance_pattern() {
    // The demo cold code is 3DFT (r + g = 3): for every failure pattern of
    // up to 3 of its placement nodes, a cold read must succeed — fully,
    // or approximately with a finite PSNR — and never panic.
    use approximate_code::ec::ErasureCode;
    let width = TierConfig::demo(0)
        .cold
        .build()
        .expect("demo cold code is valid")
        .total_nodes();
    for size in 1..=3 {
        for_each_pattern(width, size, |pattern| {
            let mut engine =
                TierEngine::new(TierConfig::demo(99)).expect("demo config is valid");
            engine.ingest(0).expect("ingest");
            assert!(engine.demote(0).expect("demote"), "demotion must succeed");
            let placement = engine.meta_of(0).expect("exists").placement.clone();
            for &pos in pattern {
                engine.fail_node(placement[pos]).expect("kill");
            }
            let read = engine.read_object(0).expect("read must not error");
            assert_eq!(read.tier, Tier::Cold);
            assert!(
                !read.unavailable,
                "within tolerance {pattern:?} the read must be served"
            );
            if read.lost_frames > 0 {
                let db = read.psnr_db.expect("approximate reads report PSNR");
                assert!(db.is_finite(), "pattern {pattern:?}: psnr {db}");
            }
        });
    }
}
