//! Beyond-the-paper extensions the framework supports "for free":
//! 4DFT-protected important data (r + g = 4 with an RS base), non-prime
//! k for the XOR families (automatic shortening), and large-h tiering.
//! The paper fixes r + g = 3 because it targets 3DFTs; the construction
//! itself never depended on that, and these tests pin it down.

use approximate_code::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

fn random_data(code: &ApproxCode, shard_len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..code.data_nodes())
        .map(|_| {
            let mut v = vec![0u8; shard_len];
            rng.fill(v.as_mut_slice());
            v
        })
        .collect()
}

fn full_stripe(code: &ApproxCode, data: &[Vec<u8>]) -> Vec<Option<Vec<u8>>> {
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = code.encode(&refs).unwrap();
    data.iter().cloned().chain(parity).map(Some).collect()
}

#[test]
fn four_dft_important_data_with_rs_base() {
    // APPR.RS(4,2,2,3): important data must survive any r+g = 4 failures
    // of its codeword (stripe 0 + globals).
    let code = ApproxCode::build_named(BaseFamily::Rs, 4, 2, 2, 3, Structure::Uneven).unwrap();
    assert_eq!(code.important_fault_tolerance(), 4);
    let data = random_data(&code, code.shard_alignment() * 64, 1);
    let full = full_stripe(&code, &data);
    let p = *code.params();

    // All four data nodes of the important stripe at once.
    let victims = [
        p.data_node(0, 0),
        p.data_node(0, 1),
        p.data_node(0, 2),
        p.data_node(0, 3),
    ];
    let mut stripe = full.clone();
    for &v in &victims {
        stripe[v] = None;
    }
    let report = code.reconstruct_tiered(&mut stripe).unwrap();
    assert!(report.fully_recovered, "4 important-data failures must repair");
    assert_eq!(stripe, full);

    // And a mixed pattern: 2 data + 1 local parity + 1 global.
    let victims = [
        p.data_node(0, 0),
        p.data_node(0, 3),
        p.local_parity_node(0, 1),
        p.global_node(0),
    ];
    let mut stripe = full.clone();
    for &v in &victims {
        stripe[v] = None;
    }
    let report = code.reconstruct_tiered(&mut stripe).unwrap();
    assert!(report.important_recovered);
    assert_eq!(stripe, full);
}

#[test]
fn any_double_failure_recovers_fully_at_r2_g2() {
    let code = ApproxCode::build_named(BaseFamily::Rs, 3, 2, 2, 3, Structure::Even).unwrap();
    assert_eq!(code.fault_tolerance(), 2);
    let data = random_data(&code, code.shard_alignment() * 8, 2);
    let full = full_stripe(&code, &data);
    let n = code.total_nodes();
    for a in 0..n {
        for b in a + 1..n {
            let mut stripe = full.clone();
            stripe[a] = None;
            stripe[b] = None;
            code.reconstruct(&mut stripe)
                .unwrap_or_else(|e| panic!("pattern ({a},{b}): {e}"));
            assert_eq!(stripe, full, "pattern ({a},{b})");
        }
    }
}

#[test]
fn non_prime_k_shortens_the_xor_families() {
    // k = 6 is not prime and 8 = 6+2 is not prime either, yet the
    // framework shortens from the next prime transparently.
    for family in [BaseFamily::Star, BaseFamily::Tip] {
        let code = ApproxCode::build_named(family, 6, 1, 2, 4, Structure::Uneven).unwrap();
        assert_eq!(code.params().k, 6);
        let data = random_data(&code, code.shard_alignment() * 4, 3);
        let full = full_stripe(&code, &data);
        let p = *code.params();
        // Triple failure on the important stripe.
        let victims = [p.data_node(0, 0), p.data_node(0, 5), p.global_node(1)];
        let mut stripe = full.clone();
        for &v in &victims {
            stripe[v] = None;
        }
        let report = code.reconstruct_tiered(&mut stripe).unwrap();
        assert!(report.fully_recovered, "{family:?}");
        assert_eq!(stripe, full, "{family:?}");
    }
}

#[test]
fn deep_tiering_with_large_h() {
    // h = 12: 1/12 importance ratio — far past the paper's h ∈ {4, 6}.
    let code = ApproxCode::build_named(BaseFamily::Rs, 3, 1, 2, 12, Structure::Even).unwrap();
    assert_eq!(code.total_nodes(), 12 * 4 + 2);
    let data = random_data(&code, code.shard_alignment() * 4, 4);
    let full = full_stripe(&code, &data);
    // Single failures across the whole width still repair.
    for victim in [0, 17, 35, code.params().global_node(1)] {
        let mut stripe = full.clone();
        stripe[victim] = None;
        code.reconstruct(&mut stripe).unwrap();
        assert_eq!(stripe, full, "victim {victim}");
    }
    // Storage overhead approaches the r=1 floor as h grows.
    assert!(code.storage_overhead() < 1.40);
}

#[test]
fn reliability_formulas_hold_for_the_r2_g2_extension() {
    // The paper's P_U derivation (Eq. 1–2) is parametric in r; check it
    // against the decoder at r=2, g=2 (f = r+1 = 3). P_I's closed form is
    // 3DFT-specific, so only P_U is compared here.
    use approximate_code::analysis::reliability;
    for structure in [Structure::Even, Structure::Uneven] {
        let code =
            ApproxCode::build_named(BaseFamily::Rs, 3, 2, 2, 3, structure).unwrap();
        let measured = reliability::enumerate_reliability(&code, 3);
        let want = reliability::analytic_p_u(3, 2, 2, 3, structure);
        assert!(
            (measured.p_u - want).abs() < 1e-12,
            "{structure}: {} vs {want}",
            measured.p_u
        );
    }
}
