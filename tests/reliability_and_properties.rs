//! Integration checks tying the analytical models to the real decoders
//! and the paper's claims.

use approximate_code::analysis::{overhead, reliability, writecost};
use approximate_code::prelude::*;

#[test]
fn analytic_reliability_matches_decoder_across_families_and_structures() {
    // The §3.4 formulas assume only that local and global codes are MDS;
    // they must agree exactly with enumeration for RS, STAR and TIP bases.
    for family in [BaseFamily::Rs, BaseFamily::Star, BaseFamily::Tip] {
        for structure in [Structure::Even, Structure::Uneven] {
            let (k, r, g, h) = (3, 1, 2, 3);
            let code = ApproxCode::build_named(family, k, r, g, h, structure).unwrap();
            let m2 = reliability::enumerate_reliability(&code, r + 1);
            let want_pu = reliability::analytic_p_u(k, r, g, h, structure);
            assert!(
                (m2.p_u - want_pu).abs() < 1e-12,
                "{family:?}/{structure:?}: P_U {} vs {}",
                m2.p_u,
                want_pu
            );
            let m4 = reliability::enumerate_reliability(&code, r + g + 1);
            let want_pi = reliability::analytic_p_i(k, r, g, h, structure).expect("3DFT");
            assert!(
                (m4.p_i - want_pi).abs() < 1e-12,
                "{family:?}/{structure:?}: P_I {} vs {}",
                m4.p_i,
                want_pi
            );
        }
    }
}

#[test]
fn reliability_with_r2_g1_configuration() {
    // The other 3DFT split the paper evaluates: r = 2, g = 1.
    for structure in [Structure::Even, Structure::Uneven] {
        let (k, r, g, h) = (3, 2, 1, 3);
        let code = ApproxCode::build_named(BaseFamily::Rs, k, r, g, h, structure).unwrap();
        let m3 = reliability::enumerate_reliability(&code, r + 1);
        let want_pu = reliability::analytic_p_u(k, r, g, h, structure);
        assert!(
            (m3.p_u - want_pu).abs() < 1e-12,
            "{structure:?}: P_U {} vs {}",
            m3.p_u,
            want_pu
        );
        let m4 = reliability::enumerate_reliability(&code, r + g + 1);
        let want_pi = reliability::analytic_p_i(k, r, g, h, structure).expect("3DFT");
        assert!(
            (m4.p_i - want_pi).abs() < 1e-12,
            "{structure:?}: P_I {} vs {}",
            m4.p_i,
            want_pi
        );
    }
}

#[test]
fn storage_overhead_formulas_match_generated_codes() {
    for family in [BaseFamily::Rs, BaseFamily::Lrc, BaseFamily::Star, BaseFamily::Tip] {
        for (k, r, g, h) in [(5usize, 1usize, 2usize, 4usize), (5, 2, 1, 6)] {
            let code =
                ApproxCode::build_named(family, k, r, g, h, Structure::Even).unwrap();
            let want = overhead::appr_overhead(k, r, g, h);
            assert!(
                (code.storage_overhead() - want).abs() < 1e-12,
                "{family:?} ({k},{r},{g},{h})"
            );
        }
    }
}

#[test]
fn table3_single_write_costs_match_measured_update_patterns() {
    // APPR.RS and APPR.LRC formulas are exact; the XOR families carry
    // small adjuster overheads on their global slopes, so they are
    // bounded rather than exact.
    for (r, g, h) in [(1usize, 2usize, 4usize), (2, 1, 4), (1, 2, 6)] {
        let rs = ApproxCode::build_named(BaseFamily::Rs, 6, r, g, h, Structure::Even).unwrap();
        let want = writecost::appr_rs_single_write(r, g, h);
        assert!((rs.update_pattern().node_writes - want).abs() < 1e-9);
    }
    for h in [4usize, 6] {
        let lrc =
            ApproxCode::build_named(BaseFamily::Lrc, 6, 1, 2, h, Structure::Even).unwrap();
        let want = writecost::appr_lrc_single_write(2, h);
        assert!((lrc.update_pattern().node_writes - want).abs() < 1e-9);
        let tip =
            ApproxCode::build_named(BaseFamily::Tip, 5, 1, 2, h, Structure::Even).unwrap();
        let ideal = writecost::appr_tip_single_write(h);
        let got = tip.update_pattern().node_writes;
        assert!(got >= ideal - 1e-9 && got < ideal + 1.5, "APPR.TIP h={h}: {got}");
    }
    // APPR.STAR(k,2,1,h) — Table 3's formula is exact for k = p:
    for h in [4usize, 6] {
        let star =
            ApproxCode::build_named(BaseFamily::Star, 5, 2, 1, h, Structure::Even).unwrap();
        let want = writecost::appr_star_single_write(5, h);
        let got = star.update_pattern().node_writes;
        assert!((got - want).abs() < 1e-9, "APPR.STAR h={h}: {got} vs {want}");
    }
}

#[test]
fn paper_headline_savings_hold_at_evaluation_scale() {
    // Abstract: parities −55%, storage −20.8% at the evaluated k ≥ 5.
    assert!((overhead::parity_reduction(1, 2, 6) - 0.5556).abs() < 1e-3);
    let best = (5..=17)
        .map(|k| overhead::appr_rs_improvement(k, 1, 2, 6))
        .fold(0.0f64, f64::max);
    assert!((best - 0.208).abs() < 5e-3, "best saving {best}");
}

#[test]
fn update_pattern_proxies_encode_cost_ranking() {
    // The paper's encoding-time ranking (APPR < base codes) should be
    // visible in the parity-write volume per data element.
    let k = 5;
    let appr = ApproxCode::build_named(BaseFamily::Rs, k, 1, 2, 4, Structure::Even)
        .unwrap()
        .update_pattern()
        .parity_writes;
    let rs = ReedSolomon::vandermonde(k, 3).unwrap().update_pattern().parity_writes;
    let star_cost = star(5, 5).unwrap().update_pattern().parity_writes;
    assert!(appr < rs);
    assert!(appr < star_cost);
}
