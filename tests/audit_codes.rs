//! Tier-1 gate: the static construction auditor must certify every
//! shipped code, and must demonstrably fail on a corrupted one.
//!
//! This is the workspace's defence against silent algebra bugs: a wrong
//! generator coefficient or a dropped parity-support term survives
//! random round-trip tests with high probability, but cannot survive an
//! exhaustive rank sweep over the theoretical decodable set.

use approximate_code::audit::{self, AuditTarget, SabotagedCode};
use approximate_code::ec::ErasureCode;
use approximate_code::rs::{MatrixKind, ReedSolomon};

#[test]
fn auditor_certifies_every_shipped_code() {
    let report = audit::audit_all();
    assert!(report.passed(), "audit failures:\n{}", report.render());

    // The roster must actually cover the families the paper evaluates.
    let names: Vec<String> = report.codes.iter().map(|r| r.code.clone()).collect();
    for family in ["RS(", "CRS(", "LRC(", "EVENODD", "RDP", "STAR", "TIP", "APPR."] {
        assert!(
            names.iter().any(|n| n.contains(family)),
            "roster is missing a {family} code: {names:?}"
        );
    }
    // And every report must have done real work.
    for r in &report.codes {
        assert!(r.patterns_checked > 0, "{} checked no patterns", r.code);
    }
}

#[test]
fn auditor_rejects_a_corrupted_generator() {
    // Zeroing a parity shard keeps the encoder linear — only the rank
    // sweep can notice the lost row. If this ever passes, the auditor
    // has stopped auditing.
    let sabotaged = SabotagedCode::new(Box::new(
        ReedSolomon::new(4, 2, MatrixKind::Vandermonde).expect("valid RS(4,2)"),
    ));
    let report = audit::audit_target(&AuditTarget::Mds {
        r: 2,
        code: Box::new(sabotaged),
    });
    assert!(!report.passed(), "corrupted generator was certified");
    assert!(
        report.failures.iter().any(|f| f.contains("MDS violation")),
        "unexpected failure shape: {:?}",
        report.failures
    );
}

#[test]
fn probe_matches_published_rs_generator() {
    // The probed matrix is not merely internally consistent — for RS it
    // must equal the generator the code itself exposes.
    let code = ReedSolomon::new(5, 3, MatrixKind::Cauchy).expect("valid CRS(5,3)");
    let probed = audit::probe(&code).expect("CRS probes cleanly");
    let real = code.generator();
    for node in 0..code.total_nodes() {
        for col in 0..code.data_nodes() {
            assert_eq!(
                probed.row(node, 0)[col],
                real.get(node, col),
                "generator mismatch at ({node},{col})"
            );
        }
    }
}
