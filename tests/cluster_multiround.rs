//! Property test: the cluster store survives **repeated** failure/repair
//! cycles on the same object.
//!
//! The single-round guarantees (degraded reads are byte-identical, repair
//! rebuilds exactly the missing blocks) are covered elsewhere; this test
//! checks that they *compose*: after a repair migrates shards onto spare
//! nodes, the updated placement is what the next round's failures hit, and
//! no round may corrupt a byte or leak unaccounted I/O. Victims are
//! revived (empty — a node failure loses its disks) after each round, so
//! later rounds can re-hit earlier victims through the spare pool.

use std::collections::HashMap;

use approximate_code::cluster::Cluster;
use approximate_code::ec::ErasureCode;
use approximate_code::rs::ReedSolomon;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn repeated_failure_repair_cycles_preserve_data_and_account_io(
        data in proptest::collection::vec(any::<u8>(), 64..4096),
        object in 0u64..64,
        rounds in proptest::collection::vec(
            (
                any::<proptest::sample::Index>(),
                any::<proptest::sample::Index>(),
                any::<bool>(),
            ),
            2..6,
        ),
    ) {
        let code = ReedSolomon::vandermonde(4, 2).expect("RS(4,2)");
        let (width, k) = (code.total_nodes(), code.data_nodes());
        let nodes = 12;
        let shard_len = 64usize;
        let mut cluster = Cluster::new(nodes);
        let mut meta = cluster
            .store_object(&code, object, &data, shard_len)
            .expect("store");
        let stripes = meta.stripes as usize;

        for (round, (first, second, double)) in rounds.iter().enumerate() {
            // Kill one or two placement nodes. Every placement node is
            // alive here: ingest requires it, and each earlier round ends
            // fully repaired.
            let mut victims = vec![meta.placement[first.index(width)]];
            if *double {
                let other = meta.placement[second.index(width)];
                if other != victims[0] {
                    victims.push(other);
                }
            }
            for &v in &victims {
                cluster.kill_node(v).expect("kill");
            }

            // Degraded read: byte-identical, touches no dead node, and
            // fetches at least a decodable amount but never more than the
            // survivors hold.
            cluster.stats().reset();
            let degraded = cluster.read_object(&code, &meta).expect("degraded read");
            prop_assert_eq!(&degraded, &data, "round {}: degraded read diverged", round);
            let per_node = cluster.stats().snapshot();
            for &v in &victims {
                prop_assert_eq!(per_node[v].read_bytes, 0, "round {}: read touched dead node {}", round, v);
            }
            let read_bytes = cluster.stats().totals().read_bytes;
            prop_assert!(
                read_bytes >= (stripes * k * shard_len) as u64,
                "round {}: {} read bytes cannot decode {} stripes",
                round, read_bytes, stripes
            );
            prop_assert!(
                read_bytes <= (stripes * (width - victims.len()) * shard_len) as u64,
                "round {}: read more than the survivors hold",
                round
            );

            // Repair onto spare nodes outside the current placement. Each
            // victim held exactly one shard position per stripe (width <=
            // node count), so the rebuilt count and the write traffic are
            // both exact.
            let spares: Vec<usize> = (0..nodes)
                .filter(|nd| cluster.is_alive(*nd) && !meta.placement.contains(nd))
                .collect();
            prop_assert!(spares.len() >= victims.len(), "round {}: spare pool exhausted", round);
            let replacement: HashMap<usize, usize> =
                victims.iter().copied().zip(spares.iter().copied()).collect();
            cluster.stats().reset();
            let rebuilt = cluster
                .repair_object(&code, &mut meta, &replacement)
                .expect("repair");
            prop_assert_eq!(rebuilt, victims.len() * stripes, "round {}: rebuilt count", round);
            let totals = cluster.stats().totals();
            prop_assert_eq!(
                totals.write_bytes,
                (rebuilt * shard_len) as u64,
                "round {}: repair write traffic must be exactly the rebuilt blocks",
                round
            );
            for (&from, &to) in &replacement {
                prop_assert!(!meta.placement.contains(&from), "round {}: victim still placed", round);
                prop_assert!(meta.placement.contains(&to), "round {}: spare not placed", round);
            }

            // Fully repaired: a healthy read is byte-identical again.
            let healthy = cluster.read_object(&code, &meta).expect("healthy read");
            prop_assert_eq!(&healthy, &data, "round {}: post-repair read diverged", round);

            // The victims come back empty-disked, rejoining the spare pool
            // so later rounds can reuse (and re-kill) them.
            for &v in &victims {
                cluster.revive_node(v).expect("revive");
            }
        }
    }
}
