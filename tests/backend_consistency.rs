//! Forced-backend codec equivalence: every code family must produce
//! byte-identical parity no matter which GF kernel backend is active.
//!
//! This is the integration-level counterpart of the per-kernel proptests
//! in `apec-gf`: those prove `xor/mul/mul_xor` agree byte-for-byte; this
//! proves nothing above the kernels (matrix apply blocking, schedule
//! execution, parallel segmentation) lets a backend difference leak into
//! codec output.
//!
//! The whole sweep runs inside a single `#[test]` because
//! `set_backend` mutates process-global state and the libtest harness
//! runs tests concurrently.

use approximate_code::audit::shipped_codes;
use approximate_code::ec::parallel::encode_segmented;
use approximate_code::gf::{set_backend, GfBackend};
use approximate_code::prelude::*;
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

fn all_codes() -> Vec<Box<dyn ErasureCode>> {
    vec![
        Box::new(ReedSolomon::vandermonde(5, 3).unwrap()),
        Box::new(ReedSolomon::cauchy(5, 3).unwrap()),
        Box::new(Lrc::new(6, 3, 2).unwrap()),
        Box::new(evenodd(5, 5).unwrap()),
        Box::new(rdp(7, 6).unwrap()),
        Box::new(star(5, 5).unwrap()),
        Box::new(ApproxCode::build_named(BaseFamily::Rs, 4, 1, 2, 3, Structure::Even).unwrap()),
    ]
}

fn random_data(code: &dyn ErasureCode, per_align: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = code.shard_alignment() * per_align;
    (0..code.data_nodes())
        .map(|_| {
            let mut v = vec![0u8; len];
            rng.fill(v.as_mut_slice());
            v
        })
        .collect()
}

/// Backends supported on the current machine: Scalar and Portable always
/// work; Simd only when the CPU has SSSE3/NEON (set_backend clamps it
/// down otherwise, which we detect and skip rather than mis-test).
fn supported_backends() -> Vec<GfBackend> {
    GfBackend::ALL
        .iter()
        .copied()
        .filter(|&b| set_backend(b) == b)
        .collect()
}

#[test]
fn codecs_are_byte_identical_across_backends() {
    let backends = supported_backends();
    assert!(backends.contains(&GfBackend::Scalar));
    assert!(backends.contains(&GfBackend::Portable));

    for (ci, code) in all_codes().iter().enumerate() {
        // Long enough that the blocked matrix apply crosses a chunk
        // boundary for at least the RS/LRC codes (shard_alignment 1).
        let data = random_data(code.as_ref(), 17 * 1024 + 3, 0xC0DE + ci as u64);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();

        set_backend(GfBackend::Scalar);
        let baseline = code.encode(&refs).unwrap();

        for &b in &backends {
            set_backend(b);
            let parity = code.encode(&refs).unwrap();
            assert_eq!(parity, baseline, "{}: backend {b} changed parity", code.name());

            // The segmented pipeline reuses gather buffers per worker;
            // it must stay byte-identical too.
            let seg = encode_segmented(code.as_ref(), &refs, 4096, 2).unwrap();
            assert_eq!(seg, baseline, "{}: segmented encode under {b} differs", code.name());

            // And a reconstruct round-trip must return the exact data.
            let mut stripe: Vec<Option<Vec<u8>>> =
                data.iter().cloned().map(Some).chain(baseline.iter().cloned().map(Some)).collect();
            stripe[0] = None;
            code.reconstruct(&mut stripe).unwrap();
            assert_eq!(
                stripe[0].as_deref(),
                Some(&data[0][..]),
                "{}: reconstruct under {b} corrupted shard 0",
                code.name()
            );
        }
        set_backend(approximate_code::gf::best_backend());
    }

    // `encode_into` and session-reuse equivalence for every shipped code
    // construction, under every supported backend. One session carries
    // across differently-shaped consecutive stripes (and a `reset()`)
    // to prove the lazily reshaped arena never leaks stale bytes.
    for (ci, target) in shipped_codes().iter().enumerate() {
        let code = target.as_code();
        let mut sess = EncodeSession::new();
        for &b in &backends {
            set_backend(b);
            for (round, per_align) in [4usize, 9, 4].into_iter().enumerate() {
                let data = random_data(code, per_align, 0xE0 + ci as u64 * 31 + round as u64);
                let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
                let expect = code.encode(&refs).unwrap();

                // Caller-owned dirty buffers: encode_into must overwrite
                // every byte, not accumulate into them.
                let len = refs[0].len();
                let mut bufs = vec![vec![0xA5u8; len]; code.parity_nodes()];
                let mut views: Vec<&mut [u8]> =
                    bufs.iter_mut().map(|v| v.as_mut_slice()).collect();
                code.encode_into(&refs, &mut views).unwrap();
                assert_eq!(
                    bufs,
                    expect,
                    "{}: encode_into under {b} differs from encode",
                    code.name()
                );

                assert_eq!(
                    sess.encode(code, &refs).unwrap(),
                    expect.as_slice(),
                    "{}: session encode under {b} differs (round {round})",
                    code.name()
                );
            }
            sess.reset();
        }
    }
    set_backend(approximate_code::gf::best_backend());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Session reuse across a random sequence of stripe shapes is
    /// byte-identical to fresh `encode()` calls for every shipped code.
    /// (Backend selection is process-global, so this test leaves it
    /// alone and runs under whatever backend is active.)
    #[test]
    fn session_reuse_matches_encode_across_shapes(
        seed in any::<u64>(),
        per_aligns in proptest::collection::vec(1usize..24, 1..4),
    ) {
        for target in shipped_codes() {
            let code = target.as_code();
            let mut sess = EncodeSession::new();
            for (i, &per_align) in per_aligns.iter().enumerate() {
                let data = random_data(code, per_align, seed ^ (i as u64) << 8);
                let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
                let expect = code.encode(&refs).unwrap();
                prop_assert_eq!(
                    sess.encode(code, &refs).unwrap(),
                    expect.as_slice(),
                    "{}: shape {} (x{} alignment)",
                    code.name(),
                    i,
                    per_align
                );
            }
        }
    }
}
