//! Forced-backend codec equivalence: every code family must produce
//! byte-identical parity no matter which GF kernel backend is active.
//!
//! This is the integration-level counterpart of the per-kernel proptests
//! in `apec-gf`: those prove `xor/mul/mul_xor` agree byte-for-byte; this
//! proves nothing above the kernels (matrix apply blocking, schedule
//! execution, parallel segmentation) lets a backend difference leak into
//! codec output.
//!
//! The whole sweep runs inside a single `#[test]` because
//! `set_backend` mutates process-global state and the libtest harness
//! runs tests concurrently.

use approximate_code::ec::parallel::encode_segmented;
use approximate_code::gf::{set_backend, GfBackend};
use approximate_code::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

fn all_codes() -> Vec<Box<dyn ErasureCode>> {
    vec![
        Box::new(ReedSolomon::vandermonde(5, 3).unwrap()),
        Box::new(ReedSolomon::cauchy(5, 3).unwrap()),
        Box::new(Lrc::new(6, 3, 2).unwrap()),
        Box::new(evenodd(5, 5).unwrap()),
        Box::new(rdp(7, 6).unwrap()),
        Box::new(star(5, 5).unwrap()),
        Box::new(ApproxCode::build_named(BaseFamily::Rs, 4, 1, 2, 3, Structure::Even).unwrap()),
    ]
}

fn random_data(code: &dyn ErasureCode, per_align: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = code.shard_alignment() * per_align;
    (0..code.data_nodes())
        .map(|_| {
            let mut v = vec![0u8; len];
            rng.fill(v.as_mut_slice());
            v
        })
        .collect()
}

/// Backends supported on the current machine: Scalar and Portable always
/// work; Simd only when the CPU has SSSE3/NEON (set_backend clamps it
/// down otherwise, which we detect and skip rather than mis-test).
fn supported_backends() -> Vec<GfBackend> {
    GfBackend::ALL
        .iter()
        .copied()
        .filter(|&b| set_backend(b) == b)
        .collect()
}

#[test]
fn codecs_are_byte_identical_across_backends() {
    let backends = supported_backends();
    assert!(backends.contains(&GfBackend::Scalar));
    assert!(backends.contains(&GfBackend::Portable));

    for (ci, code) in all_codes().iter().enumerate() {
        // Long enough that the blocked matrix apply crosses a chunk
        // boundary for at least the RS/LRC codes (shard_alignment 1).
        let data = random_data(code.as_ref(), 17 * 1024 + 3, 0xC0DE + ci as u64);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();

        set_backend(GfBackend::Scalar);
        let baseline = code.encode(&refs).unwrap();

        for &b in &backends {
            set_backend(b);
            let parity = code.encode(&refs).unwrap();
            assert_eq!(parity, baseline, "{}: backend {b} changed parity", code.name());

            // The segmented pipeline reuses gather buffers per worker;
            // it must stay byte-identical too.
            let seg = encode_segmented(code.as_ref(), &refs, 4096, 2).unwrap();
            assert_eq!(seg, baseline, "{}: segmented encode under {b} differs", code.name());

            // And a reconstruct round-trip must return the exact data.
            let mut stripe: Vec<Option<Vec<u8>>> =
                data.iter().cloned().map(Some).chain(baseline.iter().cloned().map(Some)).collect();
            stripe[0] = None;
            code.reconstruct(&mut stripe).unwrap();
            assert_eq!(
                stripe[0].as_deref(),
                Some(&data[0][..]),
                "{}: reconstruct under {b} corrupted shard 0",
                code.name()
            );
        }
        set_backend(approximate_code::gf::best_backend());
    }
}
