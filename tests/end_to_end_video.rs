//! End-to-end pipeline tests: video → tiers → Approximate-Code stripes →
//! failures → tiered repair → container parse → decode → interpolation.

use approximate_code::approx::tiered;
use approximate_code::prelude::*;
use approximate_code::video::{
    decode_stream, encode_stream, parse_container, psnr_db, serialize_container, VideoContainer,
};

struct PipelineResult {
    damaged_frames: usize,
    interpolated: usize,
    mean_psnr: f64,
    min_psnr: f64,
}

/// Runs the full pipeline for one code and failure pattern.
fn run_pipeline(
    code: &ApproxCode,
    victims: &[usize],
    frames_count: usize,
    seed: u64,
) -> PipelineResult {
    let (w, h) = (64, 48);
    let video = SyntheticVideo::new(w, h, 60.0, seed, 3);
    let frames = video.frames(frames_count);
    let gop = GopConfig::default();
    let container = VideoContainer {
        width: w,
        height: h,
        fps: 60,
        gop,
        frames: encode_stream(&frames, &gop),
    };
    let tiers = serialize_container(&container);

    let shard_len = code.shard_alignment() * 128;
    let packed = tiered::pack(code, &tiers.important, &tiers.unimportant, shard_len).unwrap();

    let mut repaired_stripes = Vec::new();
    for shards in &packed.stripes {
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut stripe: Vec<Option<Vec<u8>>> =
            shards.iter().cloned().chain(parity).map(Some).collect();
        for &v in victims {
            stripe[v] = None;
        }
        let report = code.reconstruct_tiered(&mut stripe).unwrap();
        assert!(
            report.important_recovered,
            "{}: important data must survive {victims:?}",
            code.name()
        );
        repaired_stripes.push(
            stripe
                .into_iter()
                .take(code.data_nodes())
                .map(Option::unwrap)
                .collect::<Vec<_>>(),
        );
    }

    let (imp, unimp) = tiered::unpack(
        code,
        &repaired_stripes,
        packed.important_len,
        packed.unimportant_len,
    );
    assert_eq!(imp, tiers.important, "important tier must be byte-exact");

    let parsed = parse_container(&imp, &unimp).expect("important tier intact");
    let damaged_frames = parsed.frames.iter().filter(|f| f.is_none()).count();
    let mut decoded = decode_stream(&parsed.frames, parsed.width, parsed.height, &parsed.gop);
    let report = recover_lost_frames(&mut decoded, Interpolator::Linear);

    let recovered: Vec<usize> = report
        .interpolated
        .iter()
        .chain(&report.extrapolated)
        .copied()
        .collect();
    let mut mean = 0.0;
    let mut min = f64::INFINITY;
    for &i in &recovered {
        let p = psnr_db(&frames[i], decoded.frames[i].as_ref().unwrap());
        mean += p;
        min = min.min(p);
    }
    if !recovered.is_empty() {
        mean /= recovered.len() as f64;
    }
    PipelineResult {
        damaged_frames,
        interpolated: recovered.len(),
        mean_psnr: mean,
        min_psnr: min,
    }
}

#[test]
fn within_tolerance_failures_are_lossless_for_every_family() {
    for family in [BaseFamily::Rs, BaseFamily::Lrc, BaseFamily::Star, BaseFamily::Tip] {
        for structure in [Structure::Even, Structure::Uneven] {
            let code = ApproxCode::build_named(family, 4, 1, 2, 3, structure).unwrap();
            // One failure anywhere: fully lossless pipeline.
            let result = run_pipeline(&code, &[2], 36, 7);
            assert_eq!(
                result.damaged_frames, 0,
                "{}: no frame should be damaged",
                code.name()
            );
            assert_eq!(result.interpolated, 0);
        }
    }
}

#[test]
fn beyond_tolerance_keeps_video_above_35db() {
    // Double failure in one unimportant stripe: P/B frames there are
    // lost, I-frames survive, interpolation clears the paper's 35 dB bar.
    for family in [BaseFamily::Rs, BaseFamily::Star] {
        let code = ApproxCode::build_named(family, 4, 1, 2, 3, Structure::Uneven).unwrap();
        let p = *code.params();
        let victims = [p.data_node(1, 0), p.data_node(1, 2)];
        let result = run_pipeline(&code, &victims, 48, 11);
        assert!(
            result.damaged_frames > 0,
            "{}: scenario should damage frames",
            code.name()
        );
        assert!(result.interpolated > 0);
        assert!(
            result.mean_psnr > 35.0,
            "{}: mean PSNR {:.1} below the paper's bar",
            code.name(),
            result.mean_psnr
        );
        assert!(
            result.min_psnr > 30.0,
            "{}: worst frame {:.1} dB",
            code.name(),
            result.min_psnr
        );
    }
}

#[test]
fn triple_failure_on_important_stripe_is_lossless() {
    // r+g = 3 failures hitting the important stripe and globals: the
    // important tier *and* all unimportant stripes are untouched.
    let code = ApproxCode::build_named(BaseFamily::Tip, 4, 1, 2, 4, Structure::Uneven).unwrap();
    let p = *code.params();
    let victims = [p.data_node(0, 0), p.data_node(0, 1), p.global_node(0)];
    let result = run_pipeline(&code, &victims, 36, 13);
    assert_eq!(result.damaged_frames, 0);
}

#[test]
fn one_percent_frame_loss_experiment() {
    // The paper's §5.1 setup: 1% loss on unimportant frames, PSNR ≥ 35 dB.
    use approximate_code::video::FrameType;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    let (w, h) = (64, 48);
    let video = SyntheticVideo::new(w, h, 60.0, 21, 4);
    let frames = video.frames(300);
    let gop = GopConfig::default();
    let encoded = encode_stream(&frames, &gop);

    let mut rng = StdRng::seed_from_u64(5);
    let mut boxed: Vec<Option<_>> = encoded.into_iter().map(Some).collect();
    let unimportant: Vec<usize> = boxed
        .iter()
        .enumerate()
        .filter(|(_, f)| f.as_ref().is_some_and(|f| f.frame_type != FrameType::I))
        .map(|(i, _)| i)
        .collect();
    let losses = (unimportant.len() / 100).max(1);
    for &i in unimportant.choose_multiple(&mut rng, losses) {
        boxed[i] = None;
    }

    let mut decoded = decode_stream(&boxed, w, h, &gop);
    let report = recover_lost_frames(
        &mut decoded,
        Interpolator::MotionCompensated { search_radius: 2 },
    );
    let recovered: Vec<usize> = report
        .interpolated
        .iter()
        .chain(&report.extrapolated)
        .copied()
        .collect();
    assert!(!recovered.is_empty());
    let mean: f64 = recovered
        .iter()
        .map(|&i| psnr_db(&frames[i], decoded.frames[i].as_ref().unwrap()))
        .sum::<f64>()
        / recovered.len() as f64;
    assert!(mean > 35.0, "mean recovered PSNR {mean:.1} dB");
}
