//! Property test: degraded reads through the cluster store are
//! byte-identical to the stored object for **every shipped code** under
//! **every** erasure pattern within its fault tolerance.
//!
//! This is the end-to-end guarantee behind the partial-decode path: the
//! store only fetches the survivor blocks named by the code's repair plan
//! and only materializes the missing data shards, and none of that pruning
//! may change a single byte of what the client reads back.

use approximate_code::audit::policy::for_each_pattern;
use approximate_code::audit::shipped_codes;
use approximate_code::cluster::Cluster;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn degraded_reads_are_byte_identical_for_every_shipped_code(
        data in proptest::collection::vec(any::<u8>(), 1..400),
        object in 0u64..32,
        mult in 1usize..3,
    ) {
        for target in shipped_codes() {
            let code = target.as_code();
            let n = code.total_nodes();
            let shard_len = code.shard_alignment() * mult;
            for size in 1..=code.fault_tolerance() {
                for_each_pattern(n, size, |pattern| {
                    // Fresh cluster per pattern: killing a node drops its
                    // blocks for good, exactly like a disk failure.
                    let mut cluster = Cluster::new(n);
                    let meta = cluster
                        .store_object(code, object, &data, shard_len)
                        .expect("store");
                    for &shard in pattern {
                        cluster.kill_node(meta.placement[shard]).expect("kill");
                    }
                    let read = cluster.read_object(code, &meta).unwrap_or_else(|e| {
                        panic!(
                            "{}: degraded read failed with shards {pattern:?} down: {e}",
                            code.name()
                        )
                    });
                    assert_eq!(
                        read,
                        data,
                        "{}: degraded read corrupted bytes with shards {pattern:?} down",
                        code.name()
                    );
                });
            }
        }
    }
}

#[test]
fn healthy_reads_round_trip_every_shipped_code() {
    let data: Vec<u8> = (0..257u16).map(|i| (i * 31 % 251) as u8).collect();
    for target in shipped_codes() {
        let code = target.as_code();
        let mut cluster = Cluster::new(code.total_nodes());
        let meta = cluster
            .store_object(code, 7, &data, code.shard_alignment() * 2)
            .expect("store");
        assert_eq!(cluster.read_object(code, &meta).expect("read"), data, "{}", code.name());
    }
}
