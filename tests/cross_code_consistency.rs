//! Cross-crate consistency: every codec behaves identically through the
//! shared trait, the parallel pipeline, and the cluster store.

use approximate_code::cluster::Cluster;
use approximate_code::ec::parallel::{encode_segmented, reconstruct_segmented};
use approximate_code::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashMap;

/// Builds one instance of every code family at comparable geometry.
fn all_codes() -> Vec<Box<dyn ErasureCode>> {
    vec![
        Box::new(ReedSolomon::vandermonde(5, 3).unwrap()),
        Box::new(ReedSolomon::cauchy(5, 3).unwrap()),
        Box::new(Lrc::new(6, 3, 2).unwrap()),
        Box::new(evenodd(5, 5).unwrap()),
        Box::new(rdp(7, 6).unwrap()),
        Box::new(star(5, 5).unwrap()),
        Box::new(tip_like(7, 5).unwrap()),
        Box::new(
            ApproxCode::build_named(BaseFamily::Rs, 4, 1, 2, 3, Structure::Even).unwrap(),
        ),
        Box::new(
            ApproxCode::build_named(BaseFamily::Star, 4, 2, 1, 3, Structure::Uneven).unwrap(),
        ),
    ]
}

fn random_data(code: &dyn ErasureCode, per_align: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = code.shard_alignment() * per_align;
    (0..code.data_nodes())
        .map(|_| {
            let mut v = vec![0u8; len];
            rng.fill(v.as_mut_slice());
            v
        })
        .collect()
}

#[test]
fn every_code_round_trips_random_tolerated_failures() {
    let mut rng = StdRng::seed_from_u64(42);
    for code in all_codes() {
        let data = random_data(code.as_ref(), 24, 1);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let full: Vec<Option<Vec<u8>>> =
            data.iter().cloned().chain(parity).map(Some).collect();
        for _ in 0..10 {
            let f = rng.random_range(1..=code.fault_tolerance());
            let mut nodes: Vec<usize> = (0..code.total_nodes()).collect();
            nodes.shuffle(&mut rng);
            let mut stripe = full.clone();
            for &v in &nodes[..f] {
                stripe[v] = None;
            }
            code.reconstruct(&mut stripe)
                .unwrap_or_else(|e| panic!("{} failed {:?}: {e}", code.name(), &nodes[..f]));
            assert_eq!(stripe, full, "{} corrupted bytes", code.name());
        }
    }
}

#[test]
fn segmented_parallel_paths_match_serial_for_every_code() {
    for code in all_codes() {
        let data = random_data(code.as_ref(), 64, 2);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = code.encode(&refs).unwrap();
        let parallel =
            encode_segmented(code.as_ref(), &refs, code.shard_alignment() * 8, 4).unwrap();
        assert_eq!(serial, parallel, "{} parallel encode differs", code.name());

        let full: Vec<Option<Vec<u8>>> =
            data.iter().cloned().chain(serial).map(Some).collect();
        let mut stripe = full.clone();
        stripe[0] = None;
        reconstruct_segmented(code.as_ref(), &mut stripe, code.shard_alignment() * 8, 4)
            .unwrap();
        assert_eq!(stripe, full, "{} parallel reconstruct differs", code.name());
    }
}

#[test]
fn cluster_store_read_repair_for_every_code() {
    for code in all_codes() {
        let mut cluster = Cluster::new(code.total_nodes() + 3);
        let object: Vec<u8> = (0..40_000).map(|i| (i * 7 % 253) as u8).collect();
        let shard_len = code.shard_alignment() * 32;
        let mut meta = cluster
            .store_object(code.as_ref(), 9, &object, shard_len)
            .unwrap();

        // Kill as many nodes as the code tolerates.
        let f = code.fault_tolerance();
        let victims: Vec<usize> = meta.placement[..f].to_vec();
        for &v in &victims {
            cluster.kill_node(v).unwrap();
        }
        assert_eq!(
            cluster.read_object(code.as_ref(), &meta).unwrap(),
            object,
            "{} degraded read failed",
            code.name()
        );

        // Repair onto spares and verify.
        let spares: Vec<usize> = (0..cluster.node_count())
            .filter(|n| !meta.placement.contains(n) && cluster.is_alive(*n))
            .take(f)
            .collect();
        let mapping: HashMap<usize, usize> =
            victims.into_iter().zip(spares).collect();
        cluster
            .repair_object(code.as_ref(), &mut meta, &mapping)
            .unwrap_or_else(|e| panic!("{} repair failed: {e}", code.name()));
        assert_eq!(
            cluster.read_object(code.as_ref(), &meta).unwrap(),
            object,
            "{} post-repair read failed",
            code.name()
        );
    }
}

#[test]
fn declared_tolerance_is_exhaustively_true_for_3dft_codes() {
    // Every 3DFT code must decode *all* C(n,3) patterns at small scale.
    let codes: Vec<Box<dyn ErasureCode>> = vec![
        Box::new(ReedSolomon::vandermonde(4, 3).unwrap()),
        Box::new(star(5, 4).unwrap()),
        Box::new(tip_like(5, 4).unwrap()),
        Box::new(Lrc::new(6, 2, 2).unwrap()),
    ];
    for code in codes {
        let data = random_data(code.as_ref(), 4, 3);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let full: Vec<Option<Vec<u8>>> =
            data.iter().cloned().chain(parity).map(Some).collect();
        let n = code.total_nodes();
        for a in 0..n {
            for b in a + 1..n {
                for c in b + 1..n {
                    let mut stripe = full.clone();
                    stripe[a] = None;
                    stripe[b] = None;
                    stripe[c] = None;
                    code.reconstruct(&mut stripe)
                        .unwrap_or_else(|e| panic!("{} failed ({a},{b},{c}): {e}", code.name()));
                    assert_eq!(stripe, full, "{} pattern ({a},{b},{c})", code.name());
                }
            }
        }
    }
}
