//! Adversarial decode inputs must yield typed errors, never panics.
//!
//! Every shipped code is driven through the same battery of malformed
//! stripes: wrong shard counts, truncated and over-long shards,
//! misaligned lengths, zero-length stripes, and erasure patterns beyond
//! tolerance. The contract under test is the `ErasureCode` trait's:
//! validation happens up front and reports `EcError`, so no adversarial
//! *shape* can reach the algebra and panic — data loss is reported, not
//! thrown.

use approximate_code::audit::shipped_codes;
use approximate_code::ec::{EcError, ErasureCode};

/// A valid stripe for `code`: encoded parity appended to patterned data.
fn valid_stripe(code: &dyn ErasureCode, blocks: usize) -> Vec<Option<Vec<u8>>> {
    let len = code.shard_alignment() * blocks;
    let data: Vec<Vec<u8>> = (0..code.data_nodes())
        .map(|d| (0..len).map(|i| (d * 31 + i * 7) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = code.encode(&refs).expect("valid stripe encodes");
    data.into_iter().chain(parity).map(Some).collect()
}

#[test]
fn encode_rejects_wrong_shard_count() {
    for target in shipped_codes() {
        let code = target.as_code();
        let len = code.shard_alignment();
        let shard = vec![0u8; len];
        for count in [0, code.data_nodes() - 1, code.data_nodes() + 1] {
            let data: Vec<&[u8]> = (0..count).map(|_| shard.as_slice()).collect();
            assert!(
                matches!(code.encode(&data), Err(EcError::WrongShardCount { .. })),
                "{}: encode accepted {count} shards (want {})",
                code.name(),
                code.data_nodes()
            );
        }
    }
}

#[test]
fn encode_rejects_truncated_and_oversized_shards() {
    for target in shipped_codes() {
        let code = target.as_code();
        let len = code.shard_alignment() * 2;
        let good = vec![0u8; len];
        for bad_len in [len - 1, len + 1, 0] {
            let bad = vec![0u8; bad_len];
            let mut data: Vec<&[u8]> = (0..code.data_nodes()).map(|_| good.as_slice()).collect();
            *data.last_mut().expect("at least one data shard") = bad.as_slice();
            let err = code.encode(&data);
            assert!(
                err.is_err(),
                "{}: encode accepted a shard of {bad_len} bytes among {len}-byte shards",
                code.name()
            );
        }
    }
}

#[test]
fn encode_rejects_misaligned_shards() {
    for target in shipped_codes() {
        let code = target.as_code();
        let align = code.shard_alignment();
        if align == 1 {
            continue; // every length is aligned
        }
        let bad = vec![0u8; align + 1];
        let data: Vec<&[u8]> = (0..code.data_nodes()).map(|_| bad.as_slice()).collect();
        assert!(
            matches!(code.encode(&data), Err(EcError::MisalignedShard { .. })),
            "{}: encode accepted misaligned {}-byte shards (alignment {align})",
            code.name(),
            align + 1
        );
    }
}

#[test]
fn reconstruct_rejects_wrong_stripe_width() {
    for target in shipped_codes() {
        let code = target.as_code();
        for width in [0, code.total_nodes() - 1, code.total_nodes() + 1] {
            let mut stripe: Vec<Option<Vec<u8>>> =
                vec![Some(vec![0u8; code.shard_alignment()]); width];
            assert!(
                code.reconstruct(&mut stripe).is_err(),
                "{}: reconstruct accepted a {width}-shard stripe (want {})",
                code.name(),
                code.total_nodes()
            );
        }
    }
}

#[test]
fn reconstruct_rejects_inconsistent_shard_lengths() {
    for target in shipped_codes() {
        let code = target.as_code();
        let mut stripe = valid_stripe(code, 2);
        // Truncate one surviving shard: lengths now disagree.
        let last = stripe.len() - 1;
        stripe[last].as_mut().expect("present").pop();
        stripe[0] = None;
        assert!(
            code.reconstruct(&mut stripe).is_err(),
            "{}: reconstruct accepted a truncated shard",
            code.name()
        );
    }
}

#[test]
fn reconstruct_rejects_all_erased_and_beyond_tolerance() {
    for target in shipped_codes() {
        let code = target.as_code();

        // Everything erased: nothing to rebuild from.
        let mut all_gone: Vec<Option<Vec<u8>>> = vec![None; code.total_nodes()];
        assert!(
            code.reconstruct(&mut all_gone).is_err(),
            "{}: reconstruct accepted a fully erased stripe",
            code.name()
        );

        // One past the advertised tolerance, erasing parity-heavy
        // suffixes first so LRC-style codes cannot decode locally.
        let t = code.fault_tolerance();
        if t + 1 <= code.total_nodes() {
            let mut stripe = valid_stripe(code, 1);
            let n = stripe.len();
            for i in 0..t + 1 {
                stripe[n - 1 - i] = None;
            }
            match code.reconstruct(&mut stripe) {
                Ok(()) => {} // legal: tolerance is a guarantee, not a cap
                Err(
                    EcError::TooManyErasures { .. } | EcError::UnrecoverablePattern { .. },
                ) => {}
                Err(other) => panic!(
                    "{}: beyond-tolerance erasure yielded the wrong error: {other}",
                    code.name()
                ),
            }
        }
    }
}

#[test]
fn solvers_reject_duplicate_and_out_of_range_erasures() {
    // Element-level solver (array codes): duplicates are deduplicated,
    // out-of-range indices are a typed error — neither may panic.
    let star = approximate_code::xor::star(5, 5).expect("valid STAR(5,3)");
    let spec = star.spec();
    spec.recovery_plan(&[0, 0, 0])
        .expect("duplicate erasures of one recoverable element");
    let total = spec.total_elements();
    assert!(
        spec.recovery_plan(&[total + 5]).is_err(),
        "out-of-range element accepted"
    );
    assert!(
        spec.partial_recovery_plan(&[total]).is_err(),
        "off-by-one element index accepted"
    );

    // Node-level planner (Approximate Code): same contract.
    let appr = approximate_code::approx::ApproxCode::build_named(
        approximate_code::approx::BaseFamily::Rs,
        3,
        1,
        1,
        2,
        approximate_code::approx::Structure::Uneven,
    )
    .expect("valid APPR.RS");
    let dup = appr
        .plan_for(&[0, 0])
        .expect("duplicate node erasure within tolerance");
    assert!(dup.recovers_all());
    assert!(
        appr.plan_for(&[appr.total_nodes() + 5]).is_err(),
        "out-of-range node accepted"
    );
}

#[test]
fn reconstruct_is_a_no_op_on_intact_stripes() {
    for target in shipped_codes() {
        let code = target.as_code();
        let mut stripe = valid_stripe(code, 1);
        let before = stripe.clone();
        code.reconstruct(&mut stripe)
            .unwrap_or_else(|e| panic!("{}: intact stripe rejected: {e}", code.name()));
        assert_eq!(stripe, before, "{}: intact stripe was modified", code.name());
    }
}

#[test]
fn reconstruct_handles_zero_length_shards_without_panicking() {
    // A stripe of zero-length shards is shape-consistent but carries no
    // elements. Codes may treat it as a degenerate no-op (RS: zero bytes
    // to rebuild) or reject it, but either way the result must be a typed
    // one — no division by a zero element count may reach the algebra.
    for target in shipped_codes() {
        let code = target.as_code();
        let mut stripe: Vec<Option<Vec<u8>>> = vec![Some(Vec::new()); code.total_nodes()];
        stripe[0] = None;
        match code.reconstruct(&mut stripe) {
            Ok(()) => assert_eq!(
                stripe[0].as_deref(),
                Some(&[][..]),
                "{}: accepted zero-length stripe but left the erased shard empty",
                code.name()
            ),
            Err(_) => {} // typed rejection is equally sound
        }
    }
}

#[test]
fn encode_handles_zero_length_shards_without_panicking() {
    for target in shipped_codes() {
        let code = target.as_code();
        let empty: Vec<u8> = Vec::new();
        let data: Vec<&[u8]> = (0..code.data_nodes()).map(|_| empty.as_slice()).collect();
        match code.encode(&data) {
            Ok(parity) => {
                assert_eq!(
                    parity.len(),
                    code.total_nodes() - code.data_nodes(),
                    "{}: degenerate encode returned the wrong parity count",
                    code.name()
                );
                assert!(
                    parity.iter().all(|p| p.is_empty()),
                    "{}: zero-length data produced non-empty parity",
                    code.name()
                );
            }
            Err(_) => {} // typed rejection is equally sound
        }
    }
}

#[test]
fn reconstruct_rejects_misaligned_shard_lengths() {
    // All shards share one length, but that length is not a multiple of
    // the code's alignment — the element grid cannot be laid over it.
    for target in shipped_codes() {
        let code = target.as_code();
        let align = code.shard_alignment();
        if align == 1 {
            continue; // every length is aligned
        }
        let mut stripe: Vec<Option<Vec<u8>>> =
            vec![Some(vec![0u8; align + 1]); code.total_nodes()];
        stripe[0] = None;
        assert!(
            code.reconstruct(&mut stripe).is_err(),
            "{}: reconstruct accepted misaligned {}-byte shards (alignment {align})",
            code.name(),
            align + 1
        );
    }
}

#[test]
fn io_stats_saturate_instead_of_wrapping() {
    // PR 5: byte counters on the accounting path saturate at u64::MAX.
    // A wrapped counter would silently corrupt the paper's cost model;
    // a pinned one is visibly wrong and caught by io_delta's saturating
    // subtraction downstream.
    use approximate_code::ec::iostats::IoStats;

    let stats = IoStats::new(2);
    stats.record_read(0, u64::MAX - 10);
    stats.record_read(0, 100); // would wrap; must pin at MAX
    stats.record_write(1, u64::MAX);
    stats.record_write(1, 1);
    let snap = stats.snapshot();
    assert_eq!(snap[0].read_bytes, u64::MAX);
    assert_eq!(snap[0].read_ops, 2);
    assert_eq!(snap[1].write_bytes, u64::MAX);

    // The totals fold saturates too: two pinned nodes don't overflow the sum.
    stats.record_read(1, u64::MAX);
    let totals = stats.totals();
    assert_eq!(totals.read_bytes, u64::MAX);
    assert_eq!(totals.write_bytes, u64::MAX);
    assert_eq!(stats.total_ops(), totals.read_ops + totals.write_ops);
}

#[test]
fn io_stats_usize_max_adjacent_lengths_accumulate() {
    // Shard lengths arrive as usize; recording lengths near usize::MAX
    // must neither panic on the usize→u64 conversion nor wrap the counter.
    use approximate_code::ec::iostats::IoStats;

    let stats = IoStats::new(1);
    let huge = usize::MAX as u64;
    stats.record_read(0, huge);
    stats.record_read(0, huge);
    let snap = stats.snapshot();
    // On 64-bit targets the second add saturates; on smaller targets the
    // sum is exact. Either way the counter is monotone and finite.
    assert!(snap[0].read_bytes >= huge);
    assert_eq!(snap[0].read_ops, 2);
}

#[test]
fn within_tolerance_erasures_round_trip() {
    // The positive control for the battery above: worst-case erasure
    // patterns inside the tolerance must rebuild the exact bytes.
    for target in shipped_codes() {
        let code = target.as_code();
        let t = code.fault_tolerance();
        let reference = valid_stripe(code, 2);
        // Erase the *data* prefix — parities alone must carry it.
        let mut stripe = reference.clone();
        for shard in stripe.iter_mut().take(t) {
            *shard = None;
        }
        code.reconstruct(&mut stripe)
            .unwrap_or_else(|e| panic!("{}: tolerance-{t} erasure failed: {e}", code.name()));
        assert_eq!(stripe, reference, "{}: rebuilt bytes differ", code.name());
    }
}
