//! Dense matrices over GF(2^8) and the generator-matrix constructors used
//! by the Reed-Solomon and LRC codes.

use crate::scalar::Gf8;
use crate::slice::mul_slice_xor;
use std::fmt;

/// Errors from matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Shape of the left operand (rows, cols).
        left: (usize, usize),
        /// Shape of the right operand (rows, cols).
        right: (usize, usize),
    },
    /// The matrix is singular and cannot be inverted.
    Singular,
    /// Inversion requires a square matrix.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// A constructor was given parameters outside the field's capacity.
    TooLarge {
        /// What was requested.
        requested: usize,
        /// The maximum the field supports.
        max: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { left, right } => write!(
                f,
                "matrix dimension mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MatrixError::Singular => write!(f, "matrix is singular"),
            MatrixError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
            MatrixError::TooLarge { requested, max } => {
                write!(f, "requested size {requested} exceeds field capacity {max}")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

/// Chunk size for the cache-blocked [`GfMatrix::apply`], in bytes.
///
/// Chosen so one source chunk plus a handful of parity-row chunks
/// (typically r ≤ 4) stay resident in a 128–256 KiB L2 while every output
/// row is accumulated: 16 KiB × (r + 1) ≲ 80 KiB. Must be a multiple of
/// the widest SIMD lane (32 bytes) so only the final chunk has a tail.
pub const APPLY_BLOCK_BYTES: usize = 16 * 1024;

/// A dense row-major matrix over GF(2^8).
///
/// Elements are stored as raw bytes; [`Gf8`] semantics apply to all
/// arithmetic. Matrices in erasure coding are tiny (tens of rows), so the
/// implementation favours clarity over blocking: the expensive work is the
/// block-level [`GfMatrix::apply`] which delegates to the slice kernels.
#[derive(Clone, PartialEq, Eq)]
pub struct GfMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl fmt::Debug for GfMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "GfMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:02x} ", self.get(r, c).value())?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl GfMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zero(rows: usize, cols: usize) -> Self {
        GfMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Builds a matrix from a row-major byte vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<u8>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "row-major data length must equal rows*cols"
        );
        GfMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Gf8 {
        Gf8(self.data[r * self.cols + c])
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Gf8) {
        self.data[r * self.cols + c] = v.value();
    }

    /// Borrow one row as a byte slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Matrix product `self * rhs`.
    pub fn mul(&self, rhs: &GfMatrix) -> Result<GfMatrix, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = GfMatrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a.is_zero() {
                    continue;
                }
                for c in 0..rhs.cols {
                    let cur = out.get(r, c);
                    out.set(r, c, cur + a * rhs.get(k, c));
                }
            }
        }
        Ok(out)
    }

    /// Multiplies this matrix by a set of equal-length data blocks:
    /// `out[r] = Σ_c self[r][c] * blocks[c]`.
    ///
    /// This is the block-level workhorse of systematic encoding and of
    /// matrix-based decoding. `out` must contain `rows()` buffers of the
    /// same length as the inputs.
    ///
    /// The walk is cache-blocked and fused: instead of streaming each full
    /// source block once per output row (which evicts it from cache between
    /// rows whenever blocks exceed L1/L2), the stripe is cut into
    /// [`APPLY_BLOCK_BYTES`]-sized chunks and *all* output rows are
    /// accumulated for a chunk while its source bytes are cache-resident.
    /// XOR accumulation is bytewise-commutative, so the result is
    /// byte-identical to the unblocked order.
    pub fn apply(&self, blocks: &[&[u8]], out: &mut [Vec<u8>]) -> Result<(), MatrixError> {
        // alloc-ok: borrow-repack only (Vec of slice views); apply_into is the data path
        let mut views: Vec<&mut [u8]> = out.iter_mut().map(|v| v.as_mut_slice()).collect();
        self.apply_into(blocks, &mut views)
    }

    /// [`GfMatrix::apply`] writing straight into caller-owned mutable
    /// slices instead of `Vec`s — the zero-copy entry point used by
    /// `encode_into` implementations and encode sessions. The slices are
    /// zero-filled and then accumulated with the same cache-blocked fused
    /// walk, so output is byte-identical to [`GfMatrix::apply`].
    pub fn apply_into(&self, blocks: &[&[u8]], out: &mut [&mut [u8]]) -> Result<(), MatrixError> {
        if blocks.len() != self.cols || out.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (out.len(), blocks.len()),
            });
        }
        if self.cols == 0 {
            // Degenerate product: every output row is the empty sum.
            for dst in out.iter_mut() {
                dst.fill(0);
            }
            return Ok(());
        }
        let len = blocks[0].len();
        for src in blocks {
            if src.len() != len {
                return Err(MatrixError::DimensionMismatch {
                    left: (self.rows, self.cols),
                    right: (len, src.len()),
                });
            }
        }
        for dst in out.iter_mut() {
            if dst.len() != len {
                return Err(MatrixError::DimensionMismatch {
                    left: (self.rows, self.cols),
                    right: (len, dst.len()),
                });
            }
            dst.fill(0);
        }
        let mut start = 0;
        while start < len {
            let end = (start + APPLY_BLOCK_BYTES).min(len);
            for (r, dst) in out.iter_mut().enumerate() {
                let chunk = &mut dst[start..end];
                for (c, src) in blocks.iter().enumerate() {
                    let coeff = self.get(r, c).value();
                    mul_slice_xor(coeff, &src[start..end], chunk)
                        // panic-ok: both slices are the same start..end range
                        .expect("chunk lengths match by construction");
                }
            }
            start = end;
        }
        Ok(())
    }

    /// Returns a new matrix made of the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> GfMatrix {
        let mut out = GfMatrix::zero(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.data[i * self.cols..(i + 1) * self.cols].copy_from_slice(self.row(r));
        }
        out
    }

    /// Gauss-Jordan inversion.
    pub fn invert(&self) -> Result<GfMatrix, MatrixError> {
        if self.rows != self.cols {
            return Err(MatrixError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = identity(n);

        for col in 0..n {
            // Find a pivot at or below the diagonal.
            let pivot = (col..n)
                .find(|&r| !work.get(r, col).is_zero())
                .ok_or(MatrixError::Singular)?;
            if pivot != col {
                work.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalise the pivot row.
            let p = work.get(col, col);
            let pinv = p.inverse().expect("pivot is nonzero by construction"); // panic-ok: singular pivots already returned MatrixError::Singular
            work.scale_row(col, pinv);
            inv.scale_row(col, pinv);
            debug_assert_eq!(
                work.get(col, col),
                Gf8::ONE,
                "pivot row normalisation failed at column {col}"
            );
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = work.get(r, col);
                if f.is_zero() {
                    continue;
                }
                work.add_scaled_row(col, r, f);
                inv.add_scaled_row(col, r, f);
            }
        }
        Ok(inv)
    }

    /// Rank via Gaussian elimination (does not modify `self`).
    pub fn rank(&self) -> usize {
        let mut work = self.clone();
        let mut rank = 0;
        for col in 0..work.cols {
            if rank == work.rows {
                break;
            }
            let Some(pivot) = (rank..work.rows).find(|&r| !work.get(r, col).is_zero()) else {
                continue;
            };
            work.swap_rows(pivot, rank);
            let pinv = work
                .get(rank, col)
                .inverse()
                // panic-ok: `find` selected a row with a nonzero entry
                .expect("pivot is nonzero: `find` selected a row with a nonzero entry");
            work.scale_row(rank, pinv);
            for r in 0..work.rows {
                if r != rank {
                    let f = work.get(r, col);
                    if !f.is_zero() {
                        work.add_scaled_row(rank, r, f);
                    }
                }
            }
            rank += 1;
        }
        rank
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        debug_assert!(
            a < self.rows && b < self.rows,
            "swap_rows({a}, {b}) out of bounds for {} rows",
            self.rows
        );
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (top, bottom) = self.data.split_at_mut(b * self.cols);
        top[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut bottom[..self.cols]);
    }

    /// Multiplies every entry of row `r` by `f`.
    pub fn scale_row(&mut self, r: usize, f: Gf8) {
        for c in 0..self.cols {
            let v = self.get(r, c);
            self.set(r, c, v * f);
        }
    }

    /// `row[dst] += f * row[src]`.
    pub fn add_scaled_row(&mut self, src: usize, dst: usize, f: Gf8) {
        debug_assert!(
            src < self.rows && dst < self.rows,
            "add_scaled_row({src}, {dst}) out of bounds for {} rows",
            self.rows
        );
        for c in 0..self.cols {
            let v = self.get(dst, c) + f * self.get(src, c);
            self.set(dst, c, v);
        }
    }
}

/// The n×n identity matrix.
pub fn identity(n: usize) -> GfMatrix {
    let mut m = GfMatrix::zero(n, n);
    for i in 0..n {
        m.set(i, i, Gf8::ONE);
    }
    m
}

/// The `rows`×`cols` Vandermonde matrix `V[r][c] = (r+1)^c` evaluated at
/// distinct nonzero points (so every square submatrix of the first `cols`
/// rows is invertible only for the *extended* construction — use
/// [`systematic_vandermonde`] for codes).
pub fn vandermonde(rows: usize, cols: usize) -> Result<GfMatrix, MatrixError> {
    if rows > 255 {
        return Err(MatrixError::TooLarge {
            requested: rows,
            max: 255,
        });
    }
    let mut m = GfMatrix::zero(rows, cols);
    for r in 0..rows {
        let x = Gf8((r + 1) as u8);
        for c in 0..cols {
            m.set(r, c, x.pow(c as u32));
        }
    }
    Ok(m)
}

/// Systematic generator matrix for an (k+r, k) MDS code, derived from an
/// extended Vandermonde matrix: the top k×k block is the identity and any
/// k of the k+r rows are linearly independent.
pub fn systematic_vandermonde(k: usize, r: usize) -> Result<GfMatrix, MatrixError> {
    if k + r > 255 {
        return Err(MatrixError::TooLarge {
            requested: k + r,
            max: 255,
        });
    }
    let v = vandermonde(k + r, k)?;
    let top = v.select_rows(&(0..k).collect::<Vec<_>>());
    let top_inv = top.invert()?;
    // v * top_inv has identity on top and keeps the any-k-rows-invertible
    // property (right-multiplication by an invertible matrix preserves the
    // rank of every row subset).
    v.mul(&top_inv)
}

/// Cauchy parity matrix: `rows`×`cols` with `M[i][j] = 1 / (x_i + y_j)`
/// where `x_i = i + cols` and `y_j = j` are disjoint sets of field elements.
/// Every square submatrix of a Cauchy matrix is invertible, which makes the
/// stacked `[I; cauchy]` generator MDS by construction.
pub fn cauchy(rows: usize, cols: usize) -> Result<GfMatrix, MatrixError> {
    if rows + cols > 256 {
        return Err(MatrixError::TooLarge {
            requested: rows + cols,
            max: 256,
        });
    }
    let mut m = GfMatrix::zero(rows, cols);
    for i in 0..rows {
        let x = Gf8((i + cols) as u8);
        for j in 0..cols {
            let y = Gf8(j as u8);
            // panic-ok: x_i >= cols > y_j, so x+y != 0 and the inverse exists
            let denom = (x + y).inverse().expect("x_i and y_j sets are disjoint");
            m.set(i, j, denom);
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_invertible(n: usize, rng: &mut StdRng) -> GfMatrix {
        loop {
            let data: Vec<u8> = (0..n * n).map(|_| rng.random()).collect();
            let m = GfMatrix::from_rows(n, n, data);
            if m.rank() == n {
                return m;
            }
        }
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = random_invertible(5, &mut rng);
        let i = identity(5);
        assert_eq!(m.mul(&i).unwrap(), m);
        assert_eq!(i.mul(&m).unwrap(), m);
    }

    #[test]
    fn invert_round_trip() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in 1..=12 {
            let m = random_invertible(n, &mut rng);
            let inv = m.invert().unwrap();
            assert_eq!(m.mul(&inv).unwrap(), identity(n), "m * m^-1 != I at n={n}");
            assert_eq!(inv.mul(&m).unwrap(), identity(n), "m^-1 * m != I at n={n}");
        }
    }

    #[test]
    fn singular_matrix_is_rejected() {
        // Two identical rows.
        let m = GfMatrix::from_rows(2, 2, vec![1, 2, 1, 2]);
        assert_eq!(m.invert().unwrap_err(), MatrixError::Singular);
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn non_square_inversion_is_rejected() {
        let m = GfMatrix::zero(2, 3);
        assert!(matches!(
            m.invert(),
            Err(MatrixError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn zero_matrix_rank_is_zero() {
        assert_eq!(GfMatrix::zero(4, 4).rank(), 0);
    }

    #[test]
    fn systematic_vandermonde_has_identity_top() {
        for (k, r) in [(1, 1), (4, 3), (10, 4), (17, 3)] {
            let g = systematic_vandermonde(k, r).unwrap();
            assert_eq!(g.rows(), k + r);
            assert_eq!(g.cols(), k);
            for i in 0..k {
                for j in 0..k {
                    let expect = if i == j { Gf8::ONE } else { Gf8::ZERO };
                    assert_eq!(g.get(i, j), expect, "not systematic at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn systematic_vandermonde_is_mds() {
        // Every k-subset of rows must be invertible. Exhaustive for small
        // parameters.
        let (k, r) = (4, 3);
        let g = systematic_vandermonde(k, r).unwrap();
        let n = k + r;
        // Enumerate all C(7,4) = 35 row subsets.
        let mut subset = vec![0usize; k];
        fn rec(
            g: &GfMatrix,
            n: usize,
            k: usize,
            start: usize,
            depth: usize,
            subset: &mut Vec<usize>,
        ) {
            if depth == k {
                let sub = g.select_rows(subset);
                assert_eq!(sub.rank(), k, "row subset {subset:?} is singular");
                return;
            }
            for i in start..n {
                subset[depth] = i;
                rec(g, n, k, i + 1, depth + 1, subset);
            }
        }
        rec(&g, n, k, 0, 0, &mut subset);
    }

    #[test]
    fn cauchy_every_square_submatrix_invertible() {
        let m = cauchy(3, 5).unwrap();
        // All 1x1, plus a sample of 2x2 and the 3x3s.
        for i in 0..3 {
            for j in 0..5 {
                assert!(!m.get(i, j).is_zero());
            }
        }
        for c0 in 0..5 {
            for c1 in (c0 + 1)..5 {
                for c2 in (c1 + 1)..5 {
                    let mut sub = GfMatrix::zero(3, 3);
                    for r in 0..3 {
                        for (ci, &c) in [c0, c1, c2].iter().enumerate() {
                            sub.set(r, ci, m.get(r, c));
                        }
                    }
                    assert_eq!(sub.rank(), 3);
                }
            }
        }
    }

    #[test]
    fn vandermonde_too_large_is_rejected() {
        assert!(matches!(
            vandermonde(300, 4),
            Err(MatrixError::TooLarge { .. })
        ));
        assert!(matches!(
            systematic_vandermonde(250, 20),
            Err(MatrixError::TooLarge { .. })
        ));
        assert!(matches!(cauchy(200, 100), Err(MatrixError::TooLarge { .. })));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // indexing three parallel structures
    fn apply_matches_scalar_mul() {
        let g = systematic_vandermonde(3, 2).unwrap();
        let blocks: Vec<Vec<u8>> = vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8], vec![9, 10, 11, 12]];
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let mut out = vec![vec![0u8; 4]; 5];
        g.apply(&refs, &mut out).unwrap();
        for r in 0..5 {
            for byte in 0..4 {
                let mut expect = Gf8::ZERO;
                for c in 0..3 {
                    expect += g.get(r, c) * Gf8(blocks[c][byte]);
                }
                assert_eq!(Gf8(out[r][byte]), expect, "row {r} byte {byte}");
            }
        }
    }

    #[test]
    fn blocked_apply_matches_unblocked_reference() {
        // Length straddles several chunks plus a ragged tail, so the
        // blocking loop and the final partial chunk are both exercised.
        let len = APPLY_BLOCK_BYTES * 2 + 37;
        let mut rng = StdRng::seed_from_u64(99);
        let g = systematic_vandermonde(4, 3).unwrap();
        let par = g.select_rows(&[4, 5, 6]);
        let blocks: Vec<Vec<u8>> = (0..4)
            .map(|_| {
                let mut v = vec![0u8; len];
                rng.fill(v.as_mut_slice());
                v
            })
            .collect();
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let mut blocked = vec![vec![0u8; len]; 3];
        par.apply(&refs, &mut blocked).unwrap();

        // Unblocked reference: one full pass per (row, col) pair.
        let mut reference = vec![vec![0u8; len]; 3];
        for (r, dst) in reference.iter_mut().enumerate() {
            for (c, src) in refs.iter().enumerate() {
                mul_slice_xor(par.get(r, c).value(), src, dst).unwrap();
            }
        }
        assert_eq!(blocked, reference);
    }

    #[test]
    fn apply_into_matches_apply() {
        let len = APPLY_BLOCK_BYTES + 11;
        let mut rng = StdRng::seed_from_u64(123);
        let g = systematic_vandermonde(5, 3).unwrap();
        let par = g.select_rows(&[5, 6, 7]);
        let blocks: Vec<Vec<u8>> = (0..5)
            .map(|_| {
                let mut v = vec![0u8; len];
                rng.fill(v.as_mut_slice());
                v
            })
            .collect();
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let mut via_vecs = vec![vec![0u8; len]; 3];
        par.apply(&refs, &mut via_vecs).unwrap();

        // Dirty the target slices: apply_into must zero-fill before
        // accumulating, not trust the caller.
        let mut arena = vec![vec![0xA5u8; len]; 3];
        let mut views: Vec<&mut [u8]> = arena.iter_mut().map(|v| v.as_mut_slice()).collect();
        par.apply_into(&refs, &mut views).unwrap();
        assert_eq!(arena, via_vecs);
    }

    #[test]
    fn apply_with_zero_cols_zeroes_output() {
        let g = GfMatrix::zero(2, 0);
        let mut out = vec![vec![7u8; 5], vec![9u8; 3]];
        g.apply(&[], &mut out).unwrap();
        assert!(out.iter().all(|r| r.iter().all(|&b| b == 0)));
    }

    #[test]
    fn apply_shape_mismatch_is_rejected() {
        let g = identity(3);
        let blocks: Vec<Vec<u8>> = vec![vec![0u8; 4]; 2];
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let mut out = vec![vec![0u8; 4]; 3];
        assert!(g.apply(&refs, &mut out).is_err());
    }

    // Skipped under Miri: the proptest runner is far too slow there; the
    // unit tests above cover the same elimination code paths.
    #[cfg(not(miri))]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        #[test]
        fn matrix_multiplication_is_associative(seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 4;
            let a = GfMatrix::from_rows(n, n, (0..n*n).map(|_| rng.random()).collect());
            let b = GfMatrix::from_rows(n, n, (0..n*n).map(|_| rng.random()).collect());
            let c = GfMatrix::from_rows(n, n, (0..n*n).map(|_| rng.random()).collect());
            let ab_c = a.mul(&b).unwrap().mul(&c).unwrap();
            let a_bc = a.mul(&b.mul(&c).unwrap()).unwrap();
            prop_assert_eq!(ab_c, a_bc);
        }

        #[test]
        fn rank_of_product_bounded(seed in 0u64..200) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = GfMatrix::from_rows(3, 5, (0..15).map(|_| rng.random()).collect());
            let b = GfMatrix::from_rows(5, 4, (0..20).map(|_| rng.random()).collect());
            let p = a.mul(&b).unwrap();
            prop_assert!(p.rank() <= a.rank().min(b.rank()));
        }
        }
    }
}
