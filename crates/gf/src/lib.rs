//! GF(2^8) arithmetic for erasure coding.
//!
//! This crate is the arithmetic substrate for every Reed-Solomon-style code
//! in the workspace. It provides:
//!
//! * [`Gf8`] — a scalar element of GF(2^8) with the usual field operations,
//! * bulk slice kernels ([`mul_slice`], [`mul_slice_xor`], [`xor_slice`])
//!   written so the compiler can auto-vectorise them,
//! * [`GfMatrix`] — dense matrices over GF(2^8) with Gauss-Jordan inversion,
//!   plus the [`vandermonde`]/[`cauchy`]/[`systematic_vandermonde`]
//!   generator-matrix constructors used by the RS and LRC crates.
//!
//! The field is the conventional one used by storage systems: polynomial
//! basis with the primitive polynomial `x^8 + x^4 + x^3 + x^2 + 1` (0x11d)
//! and generator element 2. All tables are computed at compile time by
//! `const fn`, so there is no runtime initialisation and no `lazy_static`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
mod scalar;
mod slice;
mod tables;

pub use matrix::{cauchy, identity, systematic_vandermonde, vandermonde, GfMatrix, MatrixError};
pub use scalar::Gf8;
pub use slice::{mul_slice, mul_slice_xor, xor_slice, SliceLenMismatch};
pub use tables::{EXP_TABLE, FIELD_ORDER, GENERATOR, LOG_TABLE, PRIMITIVE_POLY};
