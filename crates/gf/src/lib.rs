//! GF(2^8) arithmetic for erasure coding.
//!
//! This crate is the arithmetic substrate for every Reed-Solomon-style code
//! in the workspace. It provides:
//!
//! * [`Gf8`] — a scalar element of GF(2^8) with the usual field operations,
//! * bulk slice kernels ([`mul_slice`], [`mul_slice_xor`], [`xor_slice`])
//!   written so the compiler can auto-vectorise them,
//! * [`GfMatrix`] — dense matrices over GF(2^8) with Gauss-Jordan inversion,
//!   plus the [`vandermonde`]/[`cauchy`]/[`systematic_vandermonde`]
//!   generator-matrix constructors used by the RS and LRC crates.
//!
//! The field is the conventional one used by storage systems: polynomial
//! basis with the primitive polynomial `x^8 + x^4 + x^3 + x^2 + 1` (0x11d)
//! and generator element 2. All tables are computed at compile time by
//! `const fn`, so there is no runtime initialisation and no `lazy_static`.
//!
//! The slice kernels dispatch to one of three backends — scalar reference
//! loops, portable wide words, or architecture SIMD (SSSE3/AVX2 on x86_64,
//! NEON on aarch64) — chosen at startup by CPU feature detection and
//! overridable via the `APEC_GF_BACKEND` environment variable or
//! [`set_backend`]. See `kernels/mod.rs` for the split-table construction. `unsafe` is denied crate-wide and allowed only inside the
//! two architecture kernel modules, where it is confined to feature-gated
//! intrinsic calls over in-bounds pointers.

#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod kernels;
mod matrix;
mod scalar;
mod slice;
mod tables;

pub use kernels::{active_backend, best_backend, set_backend, GfBackend};
pub use matrix::{
    cauchy, identity, systematic_vandermonde, vandermonde, GfMatrix, MatrixError,
    APPLY_BLOCK_BYTES,
};
pub use scalar::Gf8;
pub use slice::{
    mul_slice, mul_slice_with, mul_slice_xor, mul_slice_xor_with, xor_slice, xor_slice_with,
    SliceLenMismatch,
};
pub use tables::{EXP_TABLE, FIELD_ORDER, GENERATOR, LOG_TABLE, PRIMITIVE_POLY};
