//! Scalar GF(2^8) element type.

use crate::tables::{EXP_TABLE, LOG_TABLE, MUL_TABLE};
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An element of GF(2^8).
///
/// Addition and subtraction are both XOR (the field has characteristic 2),
/// multiplication and division go through the compile-time log/exp tables.
/// The type is a transparent wrapper over `u8`, so slices of `Gf8` can be
/// reinterpreted as byte buffers by the caller when convenient.
///
/// ```
/// use apec_gf::Gf8;
/// let a = Gf8::new(0x53);
/// let b = Gf8::new(0xca);
/// assert_eq!(a + a, Gf8::ZERO);          // characteristic 2
/// assert_eq!((a * b) / b, a);            // division inverts multiplication
/// assert_eq!(a * a.inverse().unwrap(), Gf8::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Gf8(pub u8);

impl Gf8 {
    /// The additive identity.
    pub const ZERO: Gf8 = Gf8(0);
    /// The multiplicative identity.
    pub const ONE: Gf8 = Gf8(1);

    /// Wraps a raw byte as a field element.
    #[inline]
    pub const fn new(v: u8) -> Self {
        Gf8(v)
    }

    /// Returns the raw byte value.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// `true` when this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The multiplicative inverse.
    ///
    /// Returns `None` for zero, which has no inverse.
    #[inline]
    pub fn inverse(self) -> Option<Gf8> {
        if self.0 == 0 {
            None
        } else {
            Some(Gf8(EXP_TABLE[255 - LOG_TABLE[self.0 as usize] as usize]))
        }
    }

    /// Raises the element to an integer power (`0^0 == 1` by convention).
    pub fn pow(self, mut e: u32) -> Gf8 {
        if e == 0 {
            return Gf8::ONE;
        }
        if self.0 == 0 {
            return Gf8::ZERO;
        }
        e %= 255;
        if e == 0 {
            return Gf8::ONE;
        }
        let l = LOG_TABLE[self.0 as usize] as u32;
        Gf8(EXP_TABLE[((l * e) % 255) as usize])
    }

    /// `GENERATOR^i`, the canonical enumeration of nonzero field elements.
    #[inline]
    pub fn exp(i: usize) -> Gf8 {
        Gf8(EXP_TABLE[i % 255])
    }

    /// Discrete logarithm base `GENERATOR`. `None` for zero.
    #[inline]
    pub fn log(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(LOG_TABLE[self.0 as usize])
        }
    }
}

impl fmt::Debug for Gf8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf8(0x{:02x})", self.0)
    }
}

impl fmt::Display for Gf8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl From<u8> for Gf8 {
    #[inline]
    fn from(v: u8) -> Self {
        Gf8(v)
    }
}

impl From<Gf8> for u8 {
    #[inline]
    fn from(v: Gf8) -> Self {
        v.0
    }
}

#[allow(clippy::suspicious_arithmetic_impl)] // characteristic-2 field: +/- are XOR, / is inverse-multiply
impl Add for Gf8 {
    type Output = Gf8;
    #[inline]
    fn add(self, rhs: Gf8) -> Gf8 {
        Gf8(self.0 ^ rhs.0)
    }
}

#[allow(clippy::suspicious_op_assign_impl)] // characteristic-2 field: += is XOR
impl AddAssign for Gf8 {
    #[inline]
    fn add_assign(&mut self, rhs: Gf8) {
        self.0 ^= rhs.0;
    }
}

#[allow(clippy::suspicious_arithmetic_impl)] // characteristic-2 field: +/- are XOR, / is inverse-multiply
impl Sub for Gf8 {
    type Output = Gf8;
    #[inline]
    fn sub(self, rhs: Gf8) -> Gf8 {
        // Characteristic 2: subtraction is addition.
        Gf8(self.0 ^ rhs.0)
    }
}

#[allow(clippy::suspicious_op_assign_impl)] // characteristic-2 field: -= is XOR
impl SubAssign for Gf8 {
    #[inline]
    fn sub_assign(&mut self, rhs: Gf8) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf8 {
    type Output = Gf8;
    #[inline]
    fn neg(self) -> Gf8 {
        self
    }
}

impl Mul for Gf8 {
    type Output = Gf8;
    #[inline]
    fn mul(self, rhs: Gf8) -> Gf8 {
        Gf8(MUL_TABLE[self.0 as usize][rhs.0 as usize])
    }
}

impl MulAssign for Gf8 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf8) {
        *self = *self * rhs;
    }
}

#[allow(clippy::suspicious_arithmetic_impl)] // characteristic-2 field: +/- are XOR, / is inverse-multiply
impl Div for Gf8 {
    type Output = Gf8;

    /// Field division.
    ///
    /// # Panics
    /// Panics on division by zero, mirroring integer division semantics.
    #[inline]
    fn div(self, rhs: Gf8) -> Gf8 {
        let inv = rhs.inverse().expect("division by zero in GF(2^8)");
        self * inv
    }
}

impl DivAssign for Gf8 {
    #[inline]
    fn div_assign(&mut self, rhs: Gf8) {
        *self = *self / rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        for v in 0..=255u8 {
            let x = Gf8(v);
            assert_eq!(x + Gf8::ZERO, x);
            assert_eq!(x * Gf8::ONE, x);
            assert_eq!(x * Gf8::ZERO, Gf8::ZERO);
            assert_eq!(x - x, Gf8::ZERO);
        }
    }

    #[test]
    fn inverse_round_trip() {
        for v in 1..=255u8 {
            let x = Gf8(v);
            let inv = x.inverse().unwrap();
            assert_eq!(x * inv, Gf8::ONE, "inverse failed for {v}");
        }
        assert_eq!(Gf8::ZERO.inverse(), None);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for v in [0u8, 1, 2, 3, 5, 87, 255] {
            let x = Gf8(v);
            let mut acc = Gf8::ONE;
            for e in 0..520u32 {
                assert_eq!(x.pow(e), acc, "pow mismatch at base {v} exp {e}");
                acc *= x;
            }
        }
    }

    #[test]
    fn pow_zero_conventions() {
        assert_eq!(Gf8::ZERO.pow(0), Gf8::ONE);
        assert_eq!(Gf8::ZERO.pow(7), Gf8::ZERO);
        // exponent that is a multiple of the group order
        assert_eq!(Gf8(2).pow(255), Gf8::ONE);
        assert_eq!(Gf8(2).pow(510), Gf8::ONE);
    }

    #[test]
    fn division_by_zero_panics() {
        let r = std::panic::catch_unwind(|| Gf8(5) / Gf8::ZERO);
        assert!(r.is_err());
    }

    #[test]
    fn exp_log_round_trip() {
        for i in 0..255usize {
            let x = Gf8::exp(i);
            assert_eq!(x.log(), Some(i as u8));
        }
        assert_eq!(Gf8::ZERO.log(), None);
    }

    // Skipped under Miri: the proptest runner is far too slow there; the
    // exhaustive unit tests above already cover all 256 field elements.
    #[cfg(not(miri))]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        #[test]
        fn addition_is_commutative_associative(a: u8, b: u8, c: u8) {
            let (a, b, c) = (Gf8(a), Gf8(b), Gf8(c));
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn multiplication_is_commutative_associative(a: u8, b: u8, c: u8) {
            let (a, b, c) = (Gf8(a), Gf8(b), Gf8(c));
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn distributive_law(a: u8, b: u8, c: u8) {
            let (a, b, c) = (Gf8(a), Gf8(b), Gf8(c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn division_inverts_multiplication(a: u8, b in 1u8..) {
            let (a, b) = (Gf8(a), Gf8(b));
            prop_assert_eq!((a * b) / b, a);
            prop_assert_eq!((a / b) * b, a);
        }

        #[test]
        fn product_zero_iff_factor_zero(a: u8, b: u8) {
            let prod = Gf8(a) * Gf8(b);
            prop_assert_eq!(prod.is_zero(), a == 0 || b == 0);
        }
        }
    }
}
