//! aarch64 NEON kernels: 16-byte XOR lanes and `vqtbl1q_u8` split-table
//! multiply.
//!
//! Identical structure to the x86 module: the 256-entry product row is
//! compressed into two 16-entry nibble tables, and `vqtbl1q_u8` performs
//! 16 parallel lookups per instruction. NEON is mandatory on AArch64 in
//! practice but is still confirmed via `is_aarch64_feature_detected!`
//! before dispatch reaches this module.
//!
//! Safety: same containment as `x86.rs` — feature-gated inner functions,
//! unaligned in-bounds loads/stores only.
#![allow(unsafe_code)]

use core::arch::aarch64::*;

use super::split_tables;
use crate::tables::MUL_TABLE;

/// `dst ^= src` in 16-byte lanes.
pub(crate) fn xor_neon(src: &[u8], dst: &mut [u8]) {
    // SAFETY: only called when simd_level() == Neon.
    unsafe { xor_neon_inner(src, dst) }
}

#[target_feature(enable = "neon")]
unsafe fn xor_neon_inner(src: &[u8], dst: &mut [u8]) {
    let n = src.len().min(dst.len());
    let mut i = 0;
    // SAFETY: NEON is available per this function's contract (dispatch
    // checked `simd_level() == Neon`); `i + 16 <= n` keeps every 16-byte
    // unaligned access in bounds.
    unsafe {
        while i + 16 <= n {
            let s = vld1q_u8(src.as_ptr().add(i));
            let d = vld1q_u8(dst.as_ptr().add(i));
            vst1q_u8(dst.as_mut_ptr().add(i), veorq_u8(d, s));
            i += 16;
        }
    }
    for (d, s) in dst[i..n].iter_mut().zip(&src[i..n]) {
        *d ^= *s;
    }
}

/// `dst = c * src` via NEON table lookups.
pub(crate) fn mul_neon(c: u8, src: &[u8], dst: &mut [u8]) {
    // SAFETY: only called when simd_level() == Neon.
    unsafe { mul_neon_inner(c, src, dst) }
}

#[target_feature(enable = "neon")]
unsafe fn mul_neon_inner(c: u8, src: &[u8], dst: &mut [u8]) {
    let (lo, hi) = split_tables(c);
    let n = src.len().min(dst.len());
    let mut i = 0;
    // SAFETY: NEON guaranteed by the caller; the nibble tables are 16 bytes
    // by construction and `i + 16 <= n` bounds every unaligned access.
    unsafe {
        let tlo = vld1q_u8(lo.as_ptr());
        let thi = vld1q_u8(hi.as_ptr());
        let mask = vdupq_n_u8(0x0f);
        while i + 16 <= n {
            let s = vld1q_u8(src.as_ptr().add(i));
            let lo_n = vandq_u8(s, mask);
            let hi_n = vshrq_n_u8(s, 4);
            let prod = veorq_u8(vqtbl1q_u8(tlo, lo_n), vqtbl1q_u8(thi, hi_n));
            vst1q_u8(dst.as_mut_ptr().add(i), prod);
            i += 16;
        }
    }
    let row = &MUL_TABLE[c as usize];
    for (d, s) in dst[i..n].iter_mut().zip(&src[i..n]) {
        *d = row[*s as usize];
    }
}

/// `dst ^= c * src` via NEON table lookups.
pub(crate) fn mul_xor_neon(c: u8, src: &[u8], dst: &mut [u8]) {
    // SAFETY: only called when simd_level() == Neon.
    unsafe { mul_xor_neon_inner(c, src, dst) }
}

#[target_feature(enable = "neon")]
unsafe fn mul_xor_neon_inner(c: u8, src: &[u8], dst: &mut [u8]) {
    let (lo, hi) = split_tables(c);
    let n = src.len().min(dst.len());
    let mut i = 0;
    // SAFETY: as in `mul_neon_inner` — feature guaranteed by the caller,
    // all accesses bounded by `i + 16 <= n`.
    unsafe {
        let tlo = vld1q_u8(lo.as_ptr());
        let thi = vld1q_u8(hi.as_ptr());
        let mask = vdupq_n_u8(0x0f);
        while i + 16 <= n {
            let s = vld1q_u8(src.as_ptr().add(i));
            let d = vld1q_u8(dst.as_ptr().add(i));
            let lo_n = vandq_u8(s, mask);
            let hi_n = vshrq_n_u8(s, 4);
            let prod = veorq_u8(vqtbl1q_u8(tlo, lo_n), vqtbl1q_u8(thi, hi_n));
            vst1q_u8(dst.as_mut_ptr().add(i), veorq_u8(d, prod));
            i += 16;
        }
    }
    let row = &MUL_TABLE[c as usize];
    for (d, s) in dst[i..n].iter_mut().zip(&src[i..n]) {
        *d ^= row[*s as usize];
    }
}
