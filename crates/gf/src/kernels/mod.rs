//! Pluggable backends for the bulk slice kernels.
//!
//! Every GF-based code bottoms out in [`mul_slice_xor`](crate::mul_slice_xor)
//! and every XOR code in [`xor_slice`](crate::xor_slice), so these three
//! operations get dedicated backends:
//!
//! * **Scalar** — the byte-at-a-time reference loops. Always available; the
//!   oracle every other backend is property-tested against.
//! * **Portable** — wide-word (`u64`) lanes with a scalar tail. Pure safe
//!   Rust, available on every target, typically 2–4× the scalar XOR speed.
//! * **Simd** — architecture shuffles: the lo/hi-nibble split-table trick
//!   with `PSHUFB`/`VPSHUFB` on x86_64 (SSSE3/AVX2) and `vqtbl1q_u8` on
//!   aarch64 (NEON). For a coefficient `c` the 256-entry product row
//!   `MUL_TABLE[c]` is compressed into two 16-entry tables
//!   `lo[i] = c·i` and `hi[i] = c·(i<<4)`; then `c·b = lo[b & 15] ^
//!   hi[b >> 4]` for 16/32 bytes per shuffle pair.
//!
//! The active backend is resolved once (per process) from the
//! `APEC_GF_BACKEND` environment variable (`scalar` / `portable` / `simd`)
//! or, absent that, from runtime CPU feature detection, and cached in an
//! atomic so the per-call overhead is a single relaxed load. Benchmarks and
//! ablations can bypass the global with the `*_slice_with` entry points or
//! repoint it with [`set_backend`].

pub(crate) mod portable;
pub(crate) mod scalar;

#[cfg(target_arch = "aarch64")]
pub(crate) mod neon;
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

use std::sync::atomic::{AtomicU8, Ordering};

/// Selects which implementation services the bulk slice kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GfBackend {
    /// Byte-at-a-time reference loops (the correctness oracle).
    Scalar,
    /// Wide-word `u64` lanes with a scalar tail; portable safe Rust.
    Portable,
    /// Architecture SIMD: SSSE3/AVX2 split-table shuffles on x86_64,
    /// NEON table lookups on aarch64. Falls back to `Portable` where the
    /// required CPU features are missing.
    Simd,
}

impl GfBackend {
    /// All backends, in increasing order of sophistication.
    pub const ALL: [GfBackend; 3] = [GfBackend::Scalar, GfBackend::Portable, GfBackend::Simd];

    fn from_u8(v: u8) -> Option<GfBackend> {
        match v {
            1 => Some(GfBackend::Scalar),
            2 => Some(GfBackend::Portable),
            3 => Some(GfBackend::Simd),
            _ => None,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            GfBackend::Scalar => 1,
            GfBackend::Portable => 2,
            GfBackend::Simd => 3,
        }
    }
}

impl std::str::FromStr for GfBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(GfBackend::Scalar),
            "portable" | "wide" => Ok(GfBackend::Portable),
            "simd" => Ok(GfBackend::Simd),
            other => Err(format!(
                "unknown GF backend {other:?} (expected scalar|portable|simd)"
            )),
        }
    }
}

impl std::fmt::Display for GfBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GfBackend::Scalar => "scalar",
            GfBackend::Portable => "portable",
            GfBackend::Simd => "simd",
        };
        f.write_str(s)
    }
}

/// SIMD capability level, detected once. Distinguishes the x86_64 vector
/// widths so dispatch picks 32-byte AVX2 loops when available and 16-byte
/// SSSE3 loops otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SimdLevel {
    /// No usable SIMD shuffle unit; `Simd` degrades to `Portable`.
    None,
    /// x86_64 with SSSE3 (`PSHUFB`, 16 bytes per step).
    #[cfg(target_arch = "x86_64")]
    Ssse3,
    /// x86_64 with AVX2 (`VPSHUFB`, 32 bytes per step).
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// aarch64 with NEON (`vqtbl1q_u8`, 16 bytes per step).
    #[cfg(target_arch = "aarch64")]
    Neon,
}

fn detect_simd_level() -> SimdLevel {
    // Under Miri there is no real CPU to probe and the vendor intrinsics are
    // unsupported; report no SIMD so every kernel dispatch resolves to the
    // scalar/portable safe-Rust paths and the whole suite stays Miri-clean.
    #[cfg(miri)]
    {
        return SimdLevel::None;
    }
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("ssse3") {
            return SimdLevel::Ssse3;
        }
        SimdLevel::None
    }
    #[cfg(all(target_arch = "aarch64", not(miri)))]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return SimdLevel::Neon;
        }
        SimdLevel::None
    }
    #[cfg(not(any(miri, target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::None
    }
}

// Encoded SimdLevel cache: 0 = undetected, 1 = None, 2 = Ssse3, 3 = Avx2,
// 4 = Neon.
static SIMD_LEVEL: AtomicU8 = AtomicU8::new(0);

pub(crate) fn simd_level() -> SimdLevel {
    let cached = SIMD_LEVEL.load(Ordering::Relaxed);
    let decode = |v: u8| match v {
        1 => Some(SimdLevel::None),
        #[cfg(target_arch = "x86_64")]
        2 => Some(SimdLevel::Ssse3),
        #[cfg(target_arch = "x86_64")]
        3 => Some(SimdLevel::Avx2),
        #[cfg(target_arch = "aarch64")]
        4 => Some(SimdLevel::Neon),
        _ => None,
    };
    if let Some(level) = decode(cached) {
        return level;
    }
    let level = detect_simd_level();
    let encoded = match level {
        SimdLevel::None => 1,
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Ssse3 => 2,
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => 3,
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => 4,
    };
    SIMD_LEVEL.store(encoded, Ordering::Relaxed);
    level
}

/// The fastest backend this CPU supports.
pub fn best_backend() -> GfBackend {
    if simd_level() == SimdLevel::None {
        GfBackend::Portable
    } else {
        GfBackend::Simd
    }
}

// Active backend cache: 0 = unresolved, otherwise GfBackend::as_u8.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn resolve_initial() -> GfBackend {
    let requested = std::env::var("APEC_GF_BACKEND")
        .ok()
        .and_then(|v| v.parse::<GfBackend>().ok());
    clamp_supported(requested.unwrap_or_else(best_backend))
}

/// Degrades `Simd` to `Portable` on CPUs without the required features so a
/// forced backend can never execute an illegal instruction.
fn clamp_supported(b: GfBackend) -> GfBackend {
    match b {
        GfBackend::Simd if simd_level() == SimdLevel::None => GfBackend::Portable,
        other => other,
    }
}

/// The backend currently servicing [`xor_slice`](crate::xor_slice),
/// [`mul_slice`](crate::mul_slice) and [`mul_slice_xor`](crate::mul_slice_xor).
pub fn active_backend() -> GfBackend {
    if let Some(b) = GfBackend::from_u8(ACTIVE.load(Ordering::Relaxed)) {
        return b;
    }
    let resolved = resolve_initial();
    // A concurrent first call resolves to the same value, so a plain store
    // is fine; the global only changes through set_backend.
    ACTIVE.store(resolved.as_u8(), Ordering::Relaxed);
    resolved
}

/// Forces the process-wide backend, returning the backend actually
/// installed (`Simd` is clamped to `Portable` on CPUs without SSSE3/NEON).
///
/// Intended for ablation benchmarks and equivalence tests; production code
/// should rely on auto-detection or the `APEC_GF_BACKEND` variable.
pub fn set_backend(requested: GfBackend) -> GfBackend {
    let effective = clamp_supported(requested);
    ACTIVE.store(effective.as_u8(), Ordering::Relaxed);
    effective
}

/// `dst ^= src` with the given backend. Lengths must already match.
#[inline]
pub(crate) fn xor(backend: GfBackend, src: &[u8], dst: &mut [u8]) {
    match clamp_supported(backend) {
        GfBackend::Scalar => scalar::xor(src, dst),
        GfBackend::Portable => portable::xor(src, dst),
        GfBackend::Simd => simd_xor(src, dst),
    }
}

/// `dst = c * src` with the given backend (`c >= 2` — callers shortcut 0/1).
#[inline]
pub(crate) fn mul(backend: GfBackend, c: u8, src: &[u8], dst: &mut [u8]) {
    match clamp_supported(backend) {
        GfBackend::Scalar => scalar::mul(c, src, dst),
        GfBackend::Portable => portable::mul(c, src, dst),
        GfBackend::Simd => simd_mul(c, src, dst),
    }
}

/// `dst ^= c * src` with the given backend (`c >= 2` — callers shortcut 0/1).
#[inline]
pub(crate) fn mul_xor(backend: GfBackend, c: u8, src: &[u8], dst: &mut [u8]) {
    match clamp_supported(backend) {
        GfBackend::Scalar => scalar::mul_xor(c, src, dst),
        GfBackend::Portable => portable::mul_xor(c, src, dst),
        GfBackend::Simd => simd_mul_xor(c, src, dst),
    }
}

#[inline]
fn simd_xor(src: &[u8], dst: &mut [u8]) {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => x86::xor_avx2(src, dst),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Ssse3 => x86::xor_sse2(src, dst),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => neon::xor_neon(src, dst),
        SimdLevel::None => portable::xor(src, dst),
    }
}

#[inline]
fn simd_mul(c: u8, src: &[u8], dst: &mut [u8]) {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => x86::mul_avx2(c, src, dst),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Ssse3 => x86::mul_ssse3(c, src, dst),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => neon::mul_neon(c, src, dst),
        SimdLevel::None => portable::mul(c, src, dst),
    }
}

#[inline]
fn simd_mul_xor(c: u8, src: &[u8], dst: &mut [u8]) {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => x86::mul_xor_avx2(c, src, dst),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Ssse3 => x86::mul_xor_ssse3(c, src, dst),
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => neon::mul_xor_neon(c, src, dst),
        SimdLevel::None => portable::mul_xor(c, src, dst),
    }
}

/// The two 16-entry nibble product tables for coefficient `c`:
/// `lo[i] = c·i`, `hi[i] = c·(i << 4)`, so `c·b = lo[b & 15] ^ hi[b >> 4]`.
///
/// Shared by the x86 and aarch64 shuffle kernels and by tests.
#[allow(dead_code)] // unused on targets with neither SIMD module compiled in
pub(crate) fn split_tables(c: u8) -> ([u8; 16], [u8; 16]) {
    let row = &crate::tables::MUL_TABLE[c as usize];
    let mut lo = [0u8; 16];
    let mut hi = [0u8; 16];
    for i in 0..16 {
        lo[i] = row[i];
        hi[i] = row[i << 4];
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::MUL_TABLE;

    #[test]
    fn split_tables_reconstruct_full_row() {
        for c in [0u8, 1, 2, 0x1d, 0x53, 0xA7, 0xFF] {
            let (lo, hi) = split_tables(c);
            for b in 0..=255u8 {
                let via_split = lo[(b & 0x0f) as usize] ^ hi[(b >> 4) as usize];
                assert_eq!(via_split, MUL_TABLE[c as usize][b as usize], "c={c} b={b}");
            }
        }
    }

    #[test]
    fn backend_parsing_round_trips() {
        for b in GfBackend::ALL {
            assert_eq!(b.to_string().parse::<GfBackend>().unwrap(), b);
        }
        assert!("haswell".parse::<GfBackend>().is_err());
    }

    #[test]
    fn set_backend_installs_and_reports() {
        let prev = active_backend();
        let eff = set_backend(GfBackend::Scalar);
        assert_eq!(eff, GfBackend::Scalar);
        assert_eq!(active_backend(), GfBackend::Scalar);
        // Simd either sticks or clamps to Portable, never anything else.
        let eff = set_backend(GfBackend::Simd);
        assert!(matches!(eff, GfBackend::Simd | GfBackend::Portable));
        assert_eq!(active_backend(), eff);
        set_backend(prev);
    }

    #[test]
    fn best_backend_is_never_scalar() {
        assert_ne!(best_backend(), GfBackend::Scalar);
    }
}
