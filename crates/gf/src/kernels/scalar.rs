//! Byte-at-a-time reference kernels.
//!
//! These are the loops every other backend is property-tested against.
//! They are deliberately the simplest possible formulation; callers have
//! already validated lengths and peeled off the `c == 0` / `c == 1`
//! shortcuts.

use crate::tables::MUL_TABLE;

/// `dst ^= src`, one byte at a time.
pub(crate) fn xor(src: &[u8], dst: &mut [u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}

/// `dst = c * src` via one 256-byte product row.
pub(crate) fn mul(c: u8, src: &[u8], dst: &mut [u8]) {
    let row = &MUL_TABLE[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        *d = row[*s as usize];
    }
}

/// `dst ^= c * src` via one 256-byte product row.
pub(crate) fn mul_xor(c: u8, src: &[u8], dst: &mut [u8]) {
    let row = &MUL_TABLE[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= row[*s as usize];
    }
}
