//! x86_64 SIMD kernels: SSE2 wide XOR and SSSE3/AVX2 split-table multiply.
//!
//! The multiply kernels use the classic ISA-L / Jerasure-with-SSE trick:
//! the 256-entry product row of a coefficient is compressed into two
//! 16-entry nibble tables (see [`super::split_tables`]) that fit in one
//! vector register each, and `PSHUFB`/`VPSHUFB` performs 16/32 parallel
//! table lookups per instruction:
//!
//! ```text
//! product = lo_table[src & 0x0f] ^ hi_table[src >> 4]
//! ```
//!
//! Safety: every function in this module is a safe wrapper that dispatches
//! to a `#[target_feature]` inner function. Callers never reach the AVX2 /
//! SSSE3 paths unless `kernels::simd_level()` detected the feature at
//! runtime, and all loads/stores are unaligned (`loadu`/`storeu`) within
//! bounds established by the loop conditions, so the `unsafe` here is
//! confined to (a) the feature-gated call and (b) in-bounds raw pointer
//! I/O.
#![allow(unsafe_code)]

use core::arch::x86_64::*;

use super::split_tables;
use crate::tables::MUL_TABLE;

/// `dst ^= src` in 16-byte lanes. SSE2 is baseline on x86_64, so this
/// needs no feature detection.
pub(crate) fn xor_sse2(src: &[u8], dst: &mut [u8]) {
    let n = src.len().min(dst.len());
    let mut i = 0;
    // SAFETY: i + 16 <= n keeps every 16-byte unaligned access in bounds.
    unsafe {
        while i + 16 <= n {
            let s = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let d = _mm_loadu_si128(dst.as_ptr().add(i) as *const __m128i);
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, _mm_xor_si128(d, s));
            i += 16;
        }
    }
    for (d, s) in dst[i..n].iter_mut().zip(&src[i..n]) {
        *d ^= *s;
    }
}

/// `dst ^= src` in 32-byte lanes (AVX2).
pub(crate) fn xor_avx2(src: &[u8], dst: &mut [u8]) {
    // SAFETY: only called when simd_level() == Avx2.
    unsafe { xor_avx2_inner(src, dst) }
}

#[target_feature(enable = "avx2")]
unsafe fn xor_avx2_inner(src: &[u8], dst: &mut [u8]) {
    let n = src.len().min(dst.len());
    let mut i = 0;
    // SAFETY: the loop guards keep every 32-byte unaligned access inside
    // `src[..n]` / `dst[..n]`, and AVX2 is available per this function's
    // contract (dispatch checked `simd_level() == Avx2`).
    unsafe {
        // 4x unrolled: a single 32-byte op per iteration leaves the loop
        // issue-bound rather than bandwidth-bound, and then plain scalar code
        // (which LLVM auto-vectorizes *and* unrolls) wins. 128 B/iteration
        // keeps four independent load/xor/store chains in flight.
        while i + 128 <= n {
            let sp = src.as_ptr().add(i);
            let dp = dst.as_mut_ptr().add(i);
            let s0 = _mm256_loadu_si256(sp as *const __m256i);
            let s1 = _mm256_loadu_si256(sp.add(32) as *const __m256i);
            let s2 = _mm256_loadu_si256(sp.add(64) as *const __m256i);
            let s3 = _mm256_loadu_si256(sp.add(96) as *const __m256i);
            let d0 = _mm256_loadu_si256(dp as *const __m256i);
            let d1 = _mm256_loadu_si256(dp.add(32) as *const __m256i);
            let d2 = _mm256_loadu_si256(dp.add(64) as *const __m256i);
            let d3 = _mm256_loadu_si256(dp.add(96) as *const __m256i);
            _mm256_storeu_si256(dp as *mut __m256i, _mm256_xor_si256(d0, s0));
            _mm256_storeu_si256(dp.add(32) as *mut __m256i, _mm256_xor_si256(d1, s1));
            _mm256_storeu_si256(dp.add(64) as *mut __m256i, _mm256_xor_si256(d2, s2));
            _mm256_storeu_si256(dp.add(96) as *mut __m256i, _mm256_xor_si256(d3, s3));
            i += 128;
        }
        while i + 32 <= n {
            let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                dst.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_xor_si256(d, s),
            );
            i += 32;
        }
    }
    xor_sse2(&src[i..n], &mut dst[i..n]);
}

/// `dst = c * src` via SSSE3 `PSHUFB` split tables.
pub(crate) fn mul_ssse3(c: u8, src: &[u8], dst: &mut [u8]) {
    // SAFETY: only called when simd_level() >= Ssse3.
    unsafe { mul_ssse3_inner(c, src, dst) }
}

/// `dst ^= c * src` via SSSE3 `PSHUFB` split tables.
pub(crate) fn mul_xor_ssse3(c: u8, src: &[u8], dst: &mut [u8]) {
    // SAFETY: only called when simd_level() >= Ssse3.
    unsafe { mul_xor_ssse3_inner(c, src, dst) }
}

/// `dst = c * src` via AVX2 `VPSHUFB` split tables.
pub(crate) fn mul_avx2(c: u8, src: &[u8], dst: &mut [u8]) {
    // SAFETY: only called when simd_level() == Avx2.
    unsafe { mul_avx2_inner(c, src, dst) }
}

/// `dst ^= c * src` via AVX2 `VPSHUFB` split tables.
pub(crate) fn mul_xor_avx2(c: u8, src: &[u8], dst: &mut [u8]) {
    // SAFETY: only called when simd_level() == Avx2.
    unsafe { mul_xor_avx2_inner(c, src, dst) }
}

#[target_feature(enable = "ssse3")]
unsafe fn mul_ssse3_inner(c: u8, src: &[u8], dst: &mut [u8]) {
    let (lo, hi) = split_tables(c);
    let n = src.len().min(dst.len());
    let mut i = 0;
    // SAFETY: SSSE3 is available per this function's contract (dispatch
    // checked `simd_level() >= Ssse3`); the nibble tables are 16 bytes by
    // construction, and `i + 16 <= n` keeps every unaligned access in
    // bounds.
    unsafe {
        let tlo = _mm_loadu_si128(lo.as_ptr() as *const __m128i);
        let thi = _mm_loadu_si128(hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0f);
        while i + 16 <= n {
            let s = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let lo_n = _mm_and_si128(s, mask);
            let hi_n = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
            let prod = _mm_xor_si128(_mm_shuffle_epi8(tlo, lo_n), _mm_shuffle_epi8(thi, hi_n));
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, prod);
            i += 16;
        }
    }
    scalar_mul_tail(c, &src[i..n], &mut dst[i..n], false);
}

#[target_feature(enable = "ssse3")]
unsafe fn mul_xor_ssse3_inner(c: u8, src: &[u8], dst: &mut [u8]) {
    let (lo, hi) = split_tables(c);
    let n = src.len().min(dst.len());
    let mut i = 0;
    // SAFETY: as in `mul_ssse3_inner` — feature guaranteed by the caller,
    // all accesses bounded by `i + 16 <= n`.
    unsafe {
        let tlo = _mm_loadu_si128(lo.as_ptr() as *const __m128i);
        let thi = _mm_loadu_si128(hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0f);
        while i + 16 <= n {
            let s = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let d = _mm_loadu_si128(dst.as_ptr().add(i) as *const __m128i);
            let lo_n = _mm_and_si128(s, mask);
            let hi_n = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
            let prod = _mm_xor_si128(_mm_shuffle_epi8(tlo, lo_n), _mm_shuffle_epi8(thi, hi_n));
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, _mm_xor_si128(d, prod));
            i += 16;
        }
    }
    scalar_mul_tail(c, &src[i..n], &mut dst[i..n], true);
}

#[target_feature(enable = "avx2")]
unsafe fn mul_avx2_inner(c: u8, src: &[u8], dst: &mut [u8]) {
    let (lo, hi) = split_tables(c);
    let n = src.len().min(dst.len());
    let mut i = 0;
    // SAFETY: AVX2 (hence SSSE3) is available per this function's contract
    // (dispatch checked `simd_level() == Avx2`); all unaligned accesses are
    // bounded by `i + 32 <= n`, and the SSSE3 tail call inherits the same
    // feature guarantee.
    unsafe {
        let tlo = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr() as *const __m128i));
        let thi = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0f);
        while i + 32 <= n {
            let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let lo_n = _mm256_and_si256(s, mask);
            let hi_n = _mm256_and_si256(_mm256_srli_epi64(s, 4), mask);
            let prod = _mm256_xor_si256(
                _mm256_shuffle_epi8(tlo, lo_n),
                _mm256_shuffle_epi8(thi, hi_n),
            );
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, prod);
            i += 32;
        }
        mul_ssse3_inner(c, &src[i..n], &mut dst[i..n]);
    }
}

#[target_feature(enable = "avx2")]
unsafe fn mul_xor_avx2_inner(c: u8, src: &[u8], dst: &mut [u8]) {
    let (lo, hi) = split_tables(c);
    let n = src.len().min(dst.len());
    let mut i = 0;
    // SAFETY: as in `mul_avx2_inner` — AVX2 guaranteed by the caller, all
    // unaligned accesses bounded by the loop guards (`i + 64 <= n`,
    // `i + 32 <= n`), SSSE3 tail call covered by the same feature set.
    unsafe {
        let tlo = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr() as *const __m128i));
        let thi = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0f);
        // 2x unrolled (64 B/iteration): two independent shuffle/xor chains
        // hide the VPSHUFB latency; this kernel dominates encode time.
        while i + 64 <= n {
            let sp = src.as_ptr().add(i);
            let dp = dst.as_mut_ptr().add(i);
            let s0 = _mm256_loadu_si256(sp as *const __m256i);
            let s1 = _mm256_loadu_si256(sp.add(32) as *const __m256i);
            let d0 = _mm256_loadu_si256(dp as *const __m256i);
            let d1 = _mm256_loadu_si256(dp.add(32) as *const __m256i);
            let p0 = _mm256_xor_si256(
                _mm256_shuffle_epi8(tlo, _mm256_and_si256(s0, mask)),
                _mm256_shuffle_epi8(thi, _mm256_and_si256(_mm256_srli_epi64(s0, 4), mask)),
            );
            let p1 = _mm256_xor_si256(
                _mm256_shuffle_epi8(tlo, _mm256_and_si256(s1, mask)),
                _mm256_shuffle_epi8(thi, _mm256_and_si256(_mm256_srli_epi64(s1, 4), mask)),
            );
            _mm256_storeu_si256(dp as *mut __m256i, _mm256_xor_si256(d0, p0));
            _mm256_storeu_si256(dp.add(32) as *mut __m256i, _mm256_xor_si256(d1, p1));
            i += 64;
        }
        while i + 32 <= n {
            let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
            let lo_n = _mm256_and_si256(s, mask);
            let hi_n = _mm256_and_si256(_mm256_srli_epi64(s, 4), mask);
            let prod = _mm256_xor_si256(
                _mm256_shuffle_epi8(tlo, lo_n),
                _mm256_shuffle_epi8(thi, hi_n),
            );
            _mm256_storeu_si256(
                dst.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_xor_si256(d, prod),
            );
            i += 32;
        }
        mul_xor_ssse3_inner(c, &src[i..n], &mut dst[i..n]);
    }
}

/// Scalar cleanup for the final sub-vector bytes.
fn scalar_mul_tail(c: u8, src: &[u8], dst: &mut [u8], accumulate: bool) {
    let row = &MUL_TABLE[c as usize];
    if accumulate {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= row[*s as usize];
        }
    } else {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = row[*s as usize];
        }
    }
}
