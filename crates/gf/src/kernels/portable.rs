//! Wide-word portable kernels: `u64` lanes with a scalar tail.
//!
//! Pure safe Rust that works on every target. The XOR kernel moves eight
//! bytes per operation (and LLVM usually widens it further); the multiply
//! kernels still look bytes up in the 256-byte product row but batch loads
//! and stores through `u64` words, which roughly halves the memory traffic
//! of the scalar loop and removes per-byte bounds checks.

use crate::tables::MUL_TABLE;

const LANE: usize = std::mem::size_of::<u64>();

/// `dst ^= src` in `u64` lanes.
pub(crate) fn xor(src: &[u8], dst: &mut [u8]) {
    let mut s = src.chunks_exact(LANE);
    let mut d = dst.chunks_exact_mut(LANE);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let v = u64::from_ne_bytes(dc.try_into().expect("exact chunk"))
            ^ u64::from_ne_bytes(sc.try_into().expect("exact chunk"));
        dc.copy_from_slice(&v.to_ne_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= *sb;
    }
}

/// `dst = c * src`: per-byte table lookups, `u64`-batched stores.
pub(crate) fn mul(c: u8, src: &[u8], dst: &mut [u8]) {
    let row = &MUL_TABLE[c as usize];
    let mut s = src.chunks_exact(LANE);
    let mut d = dst.chunks_exact_mut(LANE);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let mut prod = [0u8; LANE];
        for (p, b) in prod.iter_mut().zip(sc) {
            *p = row[*b as usize];
        }
        dc.copy_from_slice(&prod);
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db = row[*sb as usize];
    }
}

/// `dst ^= c * src`: per-byte table lookups, `u64`-batched load/xor/store.
pub(crate) fn mul_xor(c: u8, src: &[u8], dst: &mut [u8]) {
    let row = &MUL_TABLE[c as usize];
    let mut s = src.chunks_exact(LANE);
    let mut d = dst.chunks_exact_mut(LANE);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let mut prod = [0u8; LANE];
        for (p, b) in prod.iter_mut().zip(sc) {
            *p = row[*b as usize];
        }
        let v = u64::from_ne_bytes(dc.try_into().expect("exact chunk"))
            ^ u64::from_ne_bytes(prod);
        dc.copy_from_slice(&v.to_ne_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= row[*sb as usize];
    }
}
