//! Wide-word portable kernels: `u64` lanes with a scalar tail.
//!
//! Pure safe Rust that works on every target. The XOR kernel moves eight
//! bytes per operation (and LLVM usually widens it further); the multiply
//! kernels still look bytes up in the 256-byte product row but batch loads
//! and stores through `u64` words, which roughly halves the memory traffic
//! of the scalar loop and removes per-byte bounds checks.

use crate::tables::MUL_TABLE;

const LANE: usize = std::mem::size_of::<u64>();

/// `dst ^= src` in `u64` lanes.
pub(crate) fn xor(src: &[u8], dst: &mut [u8]) {
    let (sc, sr) = src.as_chunks::<LANE>();
    let (dc, dr) = dst.as_chunks_mut::<LANE>();
    for (d, s) in dc.iter_mut().zip(sc) {
        *d = (u64::from_ne_bytes(*d) ^ u64::from_ne_bytes(*s)).to_ne_bytes();
    }
    for (db, sb) in dr.iter_mut().zip(sr) {
        *db ^= *sb;
    }
}

/// `dst = c * src`: per-byte table lookups, `u64`-batched stores.
pub(crate) fn mul(c: u8, src: &[u8], dst: &mut [u8]) {
    let row = &MUL_TABLE[c as usize];
    let (sc, sr) = src.as_chunks::<LANE>();
    let (dc, dr) = dst.as_chunks_mut::<LANE>();
    for (d, s) in dc.iter_mut().zip(sc) {
        let mut prod = [0u8; LANE];
        for (p, b) in prod.iter_mut().zip(s) {
            *p = row[*b as usize];
        }
        *d = prod;
    }
    for (db, sb) in dr.iter_mut().zip(sr) {
        *db = row[*sb as usize];
    }
}

/// `dst ^= c * src`: per-byte table lookups, `u64`-batched load/xor/store.
pub(crate) fn mul_xor(c: u8, src: &[u8], dst: &mut [u8]) {
    let row = &MUL_TABLE[c as usize];
    let (sc, sr) = src.as_chunks::<LANE>();
    let (dc, dr) = dst.as_chunks_mut::<LANE>();
    for (d, s) in dc.iter_mut().zip(sc) {
        let mut prod = [0u8; LANE];
        for (p, b) in prod.iter_mut().zip(s) {
            *p = row[*b as usize];
        }
        *d = (u64::from_ne_bytes(*d) ^ u64::from_ne_bytes(prod)).to_ne_bytes();
    }
    for (db, sb) in dr.iter_mut().zip(sr) {
        *db ^= row[*sb as usize];
    }
}
