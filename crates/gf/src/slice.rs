//! Bulk kernels over byte slices.
//!
//! These three routines are the inner loops of every GF-based encoder and
//! decoder in the workspace, so they are written to auto-vectorise:
//! `xor_slice` works on plain bytes (LLVM turns it into wide XORs), and the
//! multiply kernels stream a single 256-byte table row, which stays resident
//! in L1 for the whole pass.

use crate::tables::MUL_TABLE;
use std::fmt;

/// Error returned when kernel operands have different lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceLenMismatch {
    /// Length of the source operand.
    pub src: usize,
    /// Length of the destination operand.
    pub dst: usize,
}

impl fmt::Display for SliceLenMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slice length mismatch: src has {} bytes, dst has {}",
            self.src, self.dst
        )
    }
}

impl std::error::Error for SliceLenMismatch {}

/// `dst ^= src`, element-wise.
///
/// This is both GF(2^8) addition of whole blocks and the inner loop of all
/// XOR-based codes (EVENODD, RDP, STAR, TIP).
#[inline]
pub fn xor_slice(src: &[u8], dst: &mut [u8]) -> Result<(), SliceLenMismatch> {
    if src.len() != dst.len() {
        return Err(SliceLenMismatch {
            src: src.len(),
            dst: dst.len(),
        });
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
    Ok(())
}

/// `dst = c * src`, element-wise in GF(2^8).
#[inline]
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) -> Result<(), SliceLenMismatch> {
    if src.len() != dst.len() {
        return Err(SliceLenMismatch {
            src: src.len(),
            dst: dst.len(),
        });
    }
    match c {
        0 => dst.fill(0),
        1 => dst.copy_from_slice(src),
        _ => {
            let row = &MUL_TABLE[c as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                *d = row[*s as usize];
            }
        }
    }
    Ok(())
}

/// `dst ^= c * src`, element-wise in GF(2^8).
///
/// This fused multiply-accumulate is the dominant operation of RS/LRC
/// encoding: one call per (coefficient, data block) pair.
#[inline]
pub fn mul_slice_xor(c: u8, src: &[u8], dst: &mut [u8]) -> Result<(), SliceLenMismatch> {
    if src.len() != dst.len() {
        return Err(SliceLenMismatch {
            src: src.len(),
            dst: dst.len(),
        });
    }
    match c {
        0 => {}
        1 => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= *s;
            }
        }
        _ => {
            let row = &MUL_TABLE[c as usize];
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= row[*s as usize];
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gf8;
    use proptest::prelude::*;

    #[test]
    fn xor_slice_basic() {
        let src = [1u8, 2, 3, 4];
        let mut dst = [4u8, 3, 2, 1];
        xor_slice(&src, &mut dst).unwrap();
        assert_eq!(dst, [5, 1, 1, 5]);
        xor_slice(&src, &mut dst).unwrap();
        assert_eq!(dst, [4, 3, 2, 1], "xor is an involution");
    }

    #[test]
    fn length_mismatch_is_reported() {
        let src = [0u8; 3];
        let mut dst = [0u8; 4];
        let err = xor_slice(&src, &mut dst).unwrap_err();
        assert_eq!(err, SliceLenMismatch { src: 3, dst: 4 });
        assert!(mul_slice(7, &src, &mut dst).is_err());
        assert!(mul_slice_xor(7, &src, &mut dst).is_err());
    }

    #[test]
    fn mul_slice_special_coefficients() {
        let src = [9u8, 8, 7];
        let mut dst = [1u8, 1, 1];
        mul_slice(0, &src, &mut dst).unwrap();
        assert_eq!(dst, [0, 0, 0]);
        mul_slice(1, &src, &mut dst).unwrap();
        assert_eq!(dst, src);
    }

    #[test]
    fn empty_slices_are_fine() {
        let src: [u8; 0] = [];
        let mut dst: [u8; 0] = [];
        xor_slice(&src, &mut dst).unwrap();
        mul_slice(3, &src, &mut dst).unwrap();
        mul_slice_xor(3, &src, &mut dst).unwrap();
    }

    proptest! {
        #[test]
        fn mul_slice_matches_scalar(c: u8, data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut out = vec![0u8; data.len()];
            mul_slice(c, &data, &mut out).unwrap();
            for (i, &b) in data.iter().enumerate() {
                prop_assert_eq!(Gf8(out[i]), Gf8(c) * Gf8(b));
            }
        }

        #[test]
        fn mul_slice_xor_is_fused(c: u8, data in proptest::collection::vec(any::<u8>(), 0..64), acc in proptest::collection::vec(any::<u8>(), 0..64)) {
            let n = data.len().min(acc.len());
            let data = &data[..n];
            let mut fused = acc[..n].to_vec();
            mul_slice_xor(c, data, &mut fused).unwrap();

            let mut staged = vec![0u8; n];
            mul_slice(c, data, &mut staged).unwrap();
            let mut expect = acc[..n].to_vec();
            xor_slice(&staged, &mut expect).unwrap();
            prop_assert_eq!(fused, expect);
        }

        #[test]
        fn mul_by_inverse_round_trips(c in 1u8.., data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let inv = Gf8(c).inverse().unwrap().value();
            let mut tmp = vec![0u8; data.len()];
            mul_slice(c, &data, &mut tmp).unwrap();
            let mut back = vec![0u8; data.len()];
            mul_slice(inv, &tmp, &mut back).unwrap();
            prop_assert_eq!(back, data);
        }
    }
}
