//! Bulk kernels over byte slices.
//!
//! These three routines are the inner loops of every GF-based encoder and
//! decoder in the workspace. They validate operand lengths, peel off the
//! trivial coefficients (`c == 0` clears/skips, `c == 1` degenerates to
//! copy/XOR so it always takes the fastest XOR path), and hand the bulk
//! work to the active [`kernels`](crate::kernels) backend — scalar
//! reference loops, portable wide words, or SSSE3/AVX2/NEON split-table
//! shuffles, selected once per process (see [`GfBackend`]).

use crate::kernels::{self, GfBackend};
use std::fmt;

/// Error returned when kernel operands have different lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceLenMismatch {
    /// Length of the source operand.
    pub src: usize,
    /// Length of the destination operand.
    pub dst: usize,
}

impl fmt::Display for SliceLenMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slice length mismatch: src has {} bytes, dst has {}",
            self.src, self.dst
        )
    }
}

impl std::error::Error for SliceLenMismatch {}

#[inline]
fn check_len(src: &[u8], dst: &[u8]) -> Result<(), SliceLenMismatch> {
    if src.len() != dst.len() {
        return Err(SliceLenMismatch {
            src: src.len(),
            dst: dst.len(),
        });
    }
    Ok(())
}

/// `dst ^= src`, element-wise.
///
/// This is both GF(2^8) addition of whole blocks and the inner loop of all
/// XOR-based codes (EVENODD, RDP, STAR, TIP).
#[inline]
pub fn xor_slice(src: &[u8], dst: &mut [u8]) -> Result<(), SliceLenMismatch> {
    xor_slice_with(kernels::active_backend(), src, dst)
}

/// `dst = c * src`, element-wise in GF(2^8).
#[inline]
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) -> Result<(), SliceLenMismatch> {
    mul_slice_with(kernels::active_backend(), c, src, dst)
}

/// `dst ^= c * src`, element-wise in GF(2^8).
///
/// This fused multiply-accumulate is the dominant operation of RS/LRC
/// encoding: one call per (coefficient, data block) pair.
#[inline]
pub fn mul_slice_xor(c: u8, src: &[u8], dst: &mut [u8]) -> Result<(), SliceLenMismatch> {
    mul_slice_xor_with(kernels::active_backend(), c, src, dst)
}

/// [`xor_slice`] on an explicitly chosen backend (ablation/test entry
/// point; unsupported backends degrade to the best supported one).
#[inline]
pub fn xor_slice_with(
    backend: GfBackend,
    src: &[u8],
    dst: &mut [u8],
) -> Result<(), SliceLenMismatch> {
    check_len(src, dst)?;
    kernels::xor(backend, src, dst);
    Ok(())
}

/// [`mul_slice`] on an explicitly chosen backend.
#[inline]
pub fn mul_slice_with(
    backend: GfBackend,
    c: u8,
    src: &[u8],
    dst: &mut [u8],
) -> Result<(), SliceLenMismatch> {
    check_len(src, dst)?;
    match c {
        0 => dst.fill(0),
        1 => dst.copy_from_slice(src),
        _ => kernels::mul(backend, c, src, dst),
    }
    Ok(())
}

/// [`mul_slice_xor`] on an explicitly chosen backend.
#[inline]
pub fn mul_slice_xor_with(
    backend: GfBackend,
    c: u8,
    src: &[u8],
    dst: &mut [u8],
) -> Result<(), SliceLenMismatch> {
    check_len(src, dst)?;
    match c {
        0 => {}
        // c == 1 is plain XOR; route it through the same fast path as
        // xor_slice instead of a private scalar loop.
        1 => kernels::xor(backend, src, dst),
        _ => kernels::mul_xor(backend, c, src, dst),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gf8;

    #[test]
    fn xor_slice_basic() {
        let src = [1u8, 2, 3, 4];
        let mut dst = [4u8, 3, 2, 1];
        xor_slice(&src, &mut dst).unwrap();
        assert_eq!(dst, [5, 1, 1, 5]);
        xor_slice(&src, &mut dst).unwrap();
        assert_eq!(dst, [4, 3, 2, 1], "xor is an involution");
    }

    #[test]
    fn length_mismatch_is_reported() {
        let src = [0u8; 3];
        let mut dst = [0u8; 4];
        let err = xor_slice(&src, &mut dst).unwrap_err();
        assert_eq!(err, SliceLenMismatch { src: 3, dst: 4 });
        assert!(mul_slice(7, &src, &mut dst).is_err());
        assert!(mul_slice_xor(7, &src, &mut dst).is_err());
        for backend in GfBackend::ALL {
            assert!(xor_slice_with(backend, &src, &mut dst).is_err());
            assert!(mul_slice_with(backend, 7, &src, &mut dst).is_err());
            assert!(mul_slice_xor_with(backend, 7, &src, &mut dst).is_err());
        }
    }

    #[test]
    fn mul_slice_special_coefficients() {
        let src = [9u8, 8, 7];
        let mut dst = [1u8, 1, 1];
        mul_slice(0, &src, &mut dst).unwrap();
        assert_eq!(dst, [0, 0, 0]);
        mul_slice(1, &src, &mut dst).unwrap();
        assert_eq!(dst, src);
    }

    #[test]
    fn empty_slices_are_fine() {
        let src: [u8; 0] = [];
        let mut dst: [u8; 0] = [];
        for backend in GfBackend::ALL {
            xor_slice_with(backend, &src, &mut dst).unwrap();
            mul_slice_with(backend, 3, &src, &mut dst).unwrap();
            mul_slice_xor_with(backend, 3, &src, &mut dst).unwrap();
        }
    }

    // Skipped under Miri: the proptest runner is far too slow there, and the
    // SIMD backends these properties compare are gated off under Miri anyway
    // (`simd_level()` reports None, so Simd degrades to Portable).
    #[cfg(not(miri))]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        #[test]
        fn mul_slice_matches_scalar(c: u8, data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut out = vec![0u8; data.len()];
            mul_slice(c, &data, &mut out).unwrap();
            for (i, &b) in data.iter().enumerate() {
                prop_assert_eq!(Gf8(out[i]), Gf8(c) * Gf8(b));
            }
        }

        #[test]
        fn mul_slice_xor_is_fused(c: u8, data in proptest::collection::vec(any::<u8>(), 0..64), acc in proptest::collection::vec(any::<u8>(), 0..64)) {
            let n = data.len().min(acc.len());
            let data = &data[..n];
            let mut fused = acc[..n].to_vec();
            mul_slice_xor(c, data, &mut fused).unwrap();

            let mut staged = vec![0u8; n];
            mul_slice(c, data, &mut staged).unwrap();
            let mut expect = acc[..n].to_vec();
            xor_slice(&staged, &mut expect).unwrap();
            prop_assert_eq!(fused, expect);
        }

        #[test]
        fn mul_by_inverse_round_trips(c in 1u8.., data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let inv = Gf8(c).inverse().unwrap().value();
            let mut tmp = vec![0u8; data.len()];
            mul_slice(c, &data, &mut tmp).unwrap();
            let mut back = vec![0u8; data.len()];
            mul_slice(inv, &tmp, &mut back).unwrap();
            prop_assert_eq!(back, data);
        }

        /// Every backend must produce byte-identical results to the scalar
        /// reference, for all three kernels, across lengths spanning several
        /// SIMD widths (0..300) *and* misaligned slice starts (the `off`
        /// prefix shifts the data away from any allocation alignment).
        #[test]
        fn backends_match_scalar_reference(
            c: u8,
            off in 0usize..16,
            data in proptest::collection::vec(any::<u8>(), 0..300),
            acc in proptest::collection::vec(any::<u8>(), 316),
        ) {
            let n = data.len();
            let src = &data[..n];
            let dst0 = &acc[off..off + n];

            for backend in [GfBackend::Portable, GfBackend::Simd] {
                // xor_slice
                let mut want = dst0.to_vec();
                xor_slice_with(GfBackend::Scalar, src, &mut want).unwrap();
                let mut got = dst0.to_vec();
                xor_slice_with(backend, src, &mut got).unwrap();
                prop_assert_eq!(&got, &want, "xor mismatch on {:?}", backend);

                // mul_slice
                let mut want = dst0.to_vec();
                mul_slice_with(GfBackend::Scalar, c, src, &mut want).unwrap();
                let mut got = dst0.to_vec();
                mul_slice_with(backend, c, src, &mut got).unwrap();
                prop_assert_eq!(&got, &want, "mul mismatch on {:?} c={}", backend, c);

                // mul_slice_xor
                let mut want = dst0.to_vec();
                mul_slice_xor_with(GfBackend::Scalar, c, src, &mut want).unwrap();
                let mut got = dst0.to_vec();
                mul_slice_xor_with(backend, c, src, &mut got).unwrap();
                prop_assert_eq!(&got, &want, "mul_xor mismatch on {:?} c={}", backend, c);
            }
        }

        /// Unaligned *source* starts as well: both operands offset into a
        /// larger buffer by independent amounts.
        #[test]
        fn backends_match_on_doubly_unaligned_slices(
            c in 2u8..,
            soff in 0usize..32,
            doff in 0usize..32,
            len in 0usize..280,
            seed: u64,
        ) {
            use rand::prelude::*;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut srcbuf = vec![0u8; soff + len];
            let mut dstbuf = vec![0u8; doff + len];
            rng.fill(srcbuf.as_mut_slice());
            rng.fill(dstbuf.as_mut_slice());
            let src = &srcbuf[soff..];
            let base = &dstbuf[doff..];

            let mut want = base.to_vec();
            mul_slice_xor_with(GfBackend::Scalar, c, src, &mut want).unwrap();
            for backend in [GfBackend::Portable, GfBackend::Simd] {
                let mut got = base.to_vec();
                mul_slice_xor_with(backend, c, src, &mut got).unwrap();
                prop_assert_eq!(&got, &want, "backend {:?} c={} len={}", backend, c, len);
            }
        }
        }
    }
}
