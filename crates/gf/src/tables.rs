//! Compile-time generated log/exp/multiplication tables for GF(2^8).

/// The primitive polynomial defining the field: `x^8 + x^4 + x^3 + x^2 + 1`.
///
/// This is the same polynomial used by Jerasure, ISA-L and most storage
/// stacks, so generator matrices are bit-compatible with those systems.
pub const PRIMITIVE_POLY: u16 = 0x11d;

/// The multiplicative generator of the field (the element `x`, i.e. 2).
pub const GENERATOR: u8 = 2;

/// Number of elements in the field.
pub const FIELD_ORDER: usize = 256;

const fn build_exp() -> [u8; 512] {
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        // Multiply x by the generator (2) modulo the primitive polynomial.
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    // Duplicate the cycle so `exp[a + b]` works without a modulo for
    // a, b < 255, and keep `exp[510] == exp[0]` for the degenerate cases.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    exp
}

const fn build_log(exp: &[u8; 512]) -> [u8; 256] {
    let mut log = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        log[exp[i] as usize] = i as u8;
        i += 1;
    }
    // log[0] is undefined mathematically; it stays 0 and callers must
    // special-case zero before indexing (all of them do).
    log
}

const fn build_mul(exp: &[u8; 512], log: &[u8; 256]) -> [[u8; 256]; 256] {
    let mut mul = [[0u8; 256]; 256];
    let mut a = 1;
    while a < 256 {
        let mut b = 1;
        let la = log[a] as usize;
        while b < 256 {
            mul[a][b] = exp[la + log[b] as usize];
            b += 1;
        }
        a += 1;
    }
    mul
}

/// `EXP_TABLE[i] == GENERATOR^i` with the 255-cycle repeated twice so that
/// `EXP_TABLE[log(a) + log(b)]` never needs a modulo reduction.
pub static EXP_TABLE: [u8; 512] = build_exp();

/// `LOG_TABLE[a] == log2(a)` for `a != 0`. `LOG_TABLE[0]` is a sentinel 0.
pub static LOG_TABLE: [u8; 256] = build_log(&EXP_TABLE);

/// Full 64 KiB product table: `MUL_TABLE[a][b] == a * b` in GF(2^8).
///
/// The bulk slice kernels take one row of this table (`&MUL_TABLE[c]`) and
/// stream over the data, which is both branch-free and cache-friendly: a
/// single row is 256 bytes, i.e. four cache lines.
pub static MUL_TABLE: [[u8; 256]; 256] = build_mul(&EXP_TABLE, &LOG_TABLE);

#[cfg(test)]
mod tests {
    use super::*;

    /// Slow bit-by-bit ("Russian peasant") multiplication used as the oracle.
    fn mul_slow(mut a: u8, mut b: u8) -> u8 {
        let mut acc = 0u8;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            let carry = a & 0x80 != 0;
            a <<= 1;
            if carry {
                a ^= (PRIMITIVE_POLY & 0xff) as u8;
            }
            b >>= 1;
        }
        acc
    }

    #[test]
    fn exp_table_cycle_length_is_255() {
        // The generator must have full multiplicative order, otherwise the
        // polynomial would not be primitive.
        assert_eq!(EXP_TABLE[0], 1);
        for (i, &v) in EXP_TABLE.iter().enumerate().take(255).skip(1) {
            assert_ne!(v, 1, "generator order divides {i}");
        }
        assert_eq!(EXP_TABLE[255], 1, "generator order is not 255");
    }

    #[test]
    fn exp_table_second_half_repeats_first() {
        for i in 0..255 {
            assert_eq!(EXP_TABLE[i], EXP_TABLE[i + 255]);
        }
    }

    #[test]
    fn log_is_inverse_of_exp() {
        for i in 0..255u16 {
            assert_eq!(LOG_TABLE[EXP_TABLE[i as usize] as usize], i as u8);
        }
    }

    #[test]
    fn exp_covers_all_nonzero_elements() {
        let mut seen = [false; 256];
        for i in 0..255 {
            seen[EXP_TABLE[i] as usize] = true;
        }
        assert!(!seen[0]);
        for (v, &hit) in seen.iter().enumerate().skip(1) {
            assert!(hit, "element {v} never generated");
        }
    }

    #[test]
    fn mul_table_matches_bitwise_oracle() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(
                    MUL_TABLE[a as usize][b as usize],
                    mul_slow(a, b),
                    "mismatch at {a} * {b}"
                );
            }
        }
    }

    #[test]
    fn mul_table_zero_row_and_column() {
        for v in 0..=255u8 {
            assert_eq!(MUL_TABLE[0][v as usize], 0);
            assert_eq!(MUL_TABLE[v as usize][0], 0);
        }
    }
}
