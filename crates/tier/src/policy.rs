//! Demotion policies: when a hot object becomes cold.
//!
//! The paper's premise is that video popularity decays fast (§1: "most
//! videos are barely watched weeks after upload"), so data written hot
//! under a 3DFT code should migrate to the cheaper Approximate Code once
//! its access rate drops. The engine asks a [`DemotionPolicy`] at every
//! tick boundary; the policy answers from the object's [`AccessStats`]
//! alone, so policies stay pure and the engine stays deterministic.

use serde::Serialize;

/// Per-object access bookkeeping the engine maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AccessStats {
    /// Tick the object was ingested.
    pub ingested_at: usize,
    /// Tick of the most recent read (`ingested_at` if never read).
    pub last_read: usize,
    /// Reads observed in the current observation window.
    pub reads_in_window: u64,
    /// Tick the current observation window opened.
    pub window_start: usize,
    /// Lifetime read count.
    pub total_reads: u64,
}

impl AccessStats {
    /// Fresh stats for an object ingested `now`.
    pub fn new(now: usize) -> Self {
        AccessStats {
            ingested_at: now,
            last_read: now,
            reads_in_window: 0,
            window_start: now,
            total_reads: 0,
        }
    }

    /// Records one read at tick `now`.
    pub fn record_read(&mut self, now: usize) {
        self.last_read = now;
        self.reads_in_window += 1;
        self.total_reads += 1;
    }
}

/// When to demote a hot object to the cold (Approximate Code) tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DemotionPolicy {
    /// Demote when a full observation window passes with fewer than
    /// `threshold` reads. Windows with enough traffic roll over and the
    /// count restarts, so a steadily-popular object stays hot forever.
    AccessCount {
        /// Minimum reads per window to stay hot.
        threshold: u64,
        /// Window length in ticks.
        window: usize,
    },
    /// Demote unconditionally once the object is `min_age` ticks old —
    /// the age-based tiering rule most archival stores ship with.
    Age {
        /// Minimum age in ticks before demotion.
        min_age: usize,
    },
    /// Never demote (the all-hot baseline the paper compares against).
    Never,
}

impl DemotionPolicy {
    /// Decides whether to demote at tick `now`, updating window state.
    ///
    /// Takes `stats` mutably because [`DemotionPolicy::AccessCount`] rolls
    /// its observation window when the object met the threshold; the
    /// other policies never write.
    pub fn evaluate(&self, stats: &mut AccessStats, now: usize) -> bool {
        match *self {
            DemotionPolicy::AccessCount { threshold, window } => {
                if now < stats.window_start + window.max(1) {
                    return false; // window still open
                }
                if stats.reads_in_window >= threshold {
                    stats.window_start = now;
                    stats.reads_in_window = 0;
                    return false; // busy enough — stay hot, new window
                }
                true
            }
            DemotionPolicy::Age { min_age } => now.saturating_sub(stats.ingested_at) >= min_age,
            DemotionPolicy::Never => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn age_policy_fires_at_min_age() {
        let p = DemotionPolicy::Age { min_age: 10 };
        let mut s = AccessStats::new(5);
        assert!(!p.evaluate(&mut s, 14));
        assert!(p.evaluate(&mut s, 15));
    }

    #[test]
    fn access_count_demotes_only_quiet_windows() {
        let p = DemotionPolicy::AccessCount {
            threshold: 2,
            window: 10,
        };
        let mut s = AccessStats::new(0);
        s.record_read(3);
        s.record_read(4);
        // Window [0, 10) saw 2 reads ≥ threshold: rolls over, stays hot.
        assert!(!p.evaluate(&mut s, 10));
        assert_eq!((s.window_start, s.reads_in_window), (10, 0));
        // Window [10, 20) saw 1 read < threshold: demote.
        s.record_read(12);
        assert!(!p.evaluate(&mut s, 19), "window not yet complete");
        assert!(p.evaluate(&mut s, 20));
    }

    #[test]
    fn never_policy_never_fires() {
        let mut s = AccessStats::new(0);
        assert!(!DemotionPolicy::Never.evaluate(&mut s, usize::MAX));
    }
}
