//! The tier state machine: objects live Hot (a conventional 3DFT code) or
//! Cold (Approximate Code), with re-encode-in-place demotion.
//!
//! Every object enters on the hot tier under a standard code (RS, Cauchy
//! RS, or LRC). At each tick boundary the configured
//! [`DemotionPolicy`] inspects the object's access history; when it
//! fires, the engine reads the object off the hot placement, repacks the
//! important/unimportant streams with `approx_code::tiered::pack`, and
//! re-stores it under the cold [`ApproxCode`] — charging every byte of
//! conversion traffic through the cluster's `IoStats`, exactly like the
//! paper's migration experiments (§4.5).
//!
//! Reads route by tier: hot reads use the cluster's plan-driven degraded
//! read path; cold reads decode around missing blocks with
//! [`ApproxCode::reconstruct_tiered`] *locally* (reads never write back)
//! and, when unimportant data is gone for good, hand the damaged frames
//! to `apec-recovery`'s interpolators and score the result with PSNR.
//! Node repair rebuilds hot objects via the cluster's repair executor and
//! cold objects via a tiered rebuild that writes back zero-filled
//! unsolved ranges — a *permanent* approximation the container layer
//! later surfaces as CRC-failed (lost) frames.

use crate::cost::{simulate_object_read, TierCosts};
use crate::policy::{AccessStats, DemotionPolicy};
use crate::report::{
    ConfigEcho, ConversionRecord, EventCounts, IoBreakdown, IoTotals, LatencyHistogram,
    OverheadCheck, PsnrHistogram, ReadCounts, TierCounts, TierReport, TimelinePoint,
};
use crate::workload::{EventKind, Trace, WorkloadConfig};
use apec_cluster::{BlockId, Cluster, ClusterConfig, ClusterError, ObjectMeta};
use apec_ec::iostats::NodeIo;
use apec_ec::{EcError, ErasureCode};
use apec_lrc::Lrc;
use apec_recovery::{recover_lost_frames, Interpolator};
use apec_rs::ReedSolomon;
use apec_video::{
    decode_stream, encode_stream, parse_container, psnr_db, serialize_container, GopConfig,
    SyntheticVideo, VideoContainer,
};
use approx_code::{tiered, ApproxCode, BaseFamily, Structure};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Errors from engine construction or event execution.
#[derive(Debug)]
pub enum TierError {
    /// A cluster operation failed.
    Cluster(ClusterError),
    /// A codec operation failed.
    Codec(EcError),
    /// The configuration is inconsistent.
    Config(String),
    /// An engine invariant failed (an object vanished mid-operation, a
    /// reconstruct did not fill a shard it reported rebuilding). These
    /// were panics before PR 5; the lifecycle engine now surfaces them as
    /// errors so a simulation run fails loudly instead of aborting.
    Internal(String),
}

impl fmt::Display for TierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TierError::Cluster(e) => write!(f, "cluster: {e}"),
            TierError::Codec(e) => write!(f, "codec: {e}"),
            TierError::Config(m) => write!(f, "config: {m}"),
            TierError::Internal(m) => write!(f, "engine invariant violated: {m}"),
        }
    }
}

impl std::error::Error for TierError {}

impl From<ClusterError> for TierError {
    fn from(e: ClusterError) -> Self {
        TierError::Cluster(e)
    }
}

impl From<EcError> for TierError {
    fn from(e: EcError) -> Self {
        TierError::Codec(e)
    }
}

/// The hot tier's conventional erasure code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotCode {
    /// Vandermonde Reed-Solomon RS(k, r).
    Rs {
        /// Data shards.
        k: usize,
        /// Parity shards.
        r: usize,
    },
    /// Cauchy Reed-Solomon CRS(k, r).
    Crs {
        /// Data shards.
        k: usize,
        /// Parity shards.
        r: usize,
    },
    /// Azure-style LRC(k, l, r).
    Lrc {
        /// Data shards.
        k: usize,
        /// Local groups.
        l: usize,
        /// Global parities.
        r: usize,
    },
}

impl HotCode {
    /// Builds the code behind the trait object the engine drives.
    pub fn build(&self) -> Result<Box<dyn ErasureCode>, EcError> {
        Ok(match *self {
            HotCode::Rs { k, r } => Box::new(ReedSolomon::vandermonde(k, r)?),
            HotCode::Crs { k, r } => Box::new(ReedSolomon::cauchy(k, r)?),
            HotCode::Lrc { k, l, r } => Box::new(Lrc::new(k, l, r)?),
        })
    }

    /// Expected shard writes for a one-block update
    /// (`analysis::writecost`, the paper's Table 3 metric).
    pub fn single_write_cost(&self) -> f64 {
        match *self {
            HotCode::Rs { r, .. } | HotCode::Crs { r, .. } => {
                apec_analysis::writecost::rs_single_write(r)
            }
            HotCode::Lrc { r, .. } => apec_analysis::writecost::lrc_single_write(r),
        }
    }
}

/// The cold tier's Approximate Code, in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColdCodeSpec {
    /// Base family (RS, LRC, STAR, TIP).
    pub family: BaseFamily,
    /// Data nodes per local stripe.
    pub k: usize,
    /// Local parities per stripe.
    pub r: usize,
    /// Global parities over the important data.
    pub g: usize,
    /// Number of local stripes (the importance ratio is `1/h`).
    pub h: usize,
    /// Even or Uneven importance placement.
    pub structure: Structure,
}

impl ColdCodeSpec {
    /// Builds the [`ApproxCode`].
    pub fn build(&self) -> Result<ApproxCode, EcError> {
        ApproxCode::build_named(self.family, self.k, self.r, self.g, self.h, self.structure)
    }

    /// Expected shard writes for a one-block update
    /// (`analysis::writecost`, the paper's Table 3 metric).
    pub fn single_write_cost(&self) -> f64 {
        use apec_analysis::writecost;
        match self.family {
            BaseFamily::Rs => writecost::appr_rs_single_write(self.r, self.g, self.h),
            BaseFamily::Lrc => writecost::appr_lrc_single_write(self.g, self.h),
            BaseFamily::Star => writecost::appr_star_single_write(self.k, self.h),
            BaseFamily::Tip => writecost::appr_tip_single_write(self.h),
        }
    }
}

/// Shape of the synthetic videos the workload ingests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct VideoProfile {
    /// Frame width, pixels.
    pub width: usize,
    /// Frame height, pixels.
    pub height: usize,
    /// Frame rate.
    pub fps: f64,
    /// GOP length (frames per I-frame).
    pub gop_len: usize,
    /// Codec quantisation deadzone.
    pub quant: u8,
    /// Minimum frames per video.
    pub min_frames: usize,
    /// Maximum frames per video (inclusive).
    pub max_frames: usize,
    /// Moving blobs in the synthetic scene.
    pub blobs: usize,
}

impl Default for VideoProfile {
    fn default() -> Self {
        VideoProfile {
            width: 48,
            height: 32,
            fps: 60.0,
            gop_len: 12,
            quant: 2,
            min_frames: 24,
            max_frames: 48,
            blobs: 3,
        }
    }
}

/// Full engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct TierConfig {
    /// Cluster node count (must fit the wider of the two codes).
    pub nodes: usize,
    /// Hot-tier code.
    pub hot: HotCode,
    /// Cold-tier Approximate Code.
    pub cold: ColdCodeSpec,
    /// Hot-tier shard length, bytes.
    pub hot_shard_len: usize,
    /// Cold-tier shard length, bytes (must respect the code's alignment).
    pub cold_shard_len: usize,
    /// When hot objects demote.
    pub policy: DemotionPolicy,
    /// Interpolator for approximate reads.
    pub interpolator: Interpolator,
    /// Resource model for read latencies.
    pub timing: ClusterConfig,
    /// Synthetic video shape.
    pub video: VideoProfile,
    /// Timeline sampling period, ticks.
    pub sample_every: usize,
    /// Master seed for video content (the workload carries its own).
    pub seed: u64,
}

impl TierConfig {
    /// A small, self-consistent configuration mirroring the paper's
    /// comparison: hot RS(5,3) (the 3DFT baseline, overhead 1.6×) vs
    /// cold APPR.RS(5,1,2,3,Uneven) (20 nodes over 15 data nodes,
    /// overhead 1.33×, still 3DFT on important data) on a 20-node
    /// cluster — the default for tests, the CI smoke lane and
    /// `apec tier`. `h = 3` matches the synthetic container's measured
    /// important fraction (~0.3), and the small cold shard keeps
    /// per-object rounding slack from eating the overhead gap.
    pub fn demo(seed: u64) -> Self {
        let cold = ColdCodeSpec {
            family: BaseFamily::Rs,
            k: 5,
            r: 1,
            g: 2,
            h: 3,
            structure: Structure::Uneven,
        };
        let align = cold
            .build()
            .expect("demo cold code is valid") // panic-ok: constant audited spec, covered by tier unit tests
            .shard_alignment();
        TierConfig {
            nodes: 20,
            hot: HotCode::Rs { k: 5, r: 3 },
            cold,
            hot_shard_len: 1024,
            cold_shard_len: align * 128,
            policy: DemotionPolicy::AccessCount {
                threshold: 2,
                window: 8,
            },
            interpolator: Interpolator::MotionCompensated { search_radius: 3 },
            timing: ClusterConfig::default(),
            video: VideoProfile::default(),
            sample_every: 5,
            seed,
        }
    }
}

/// Which tier an object currently lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Tier {
    /// Conventional 3DFT code, full fidelity.
    Hot,
    /// Approximate Code, reduced redundancy.
    Cold,
}

/// What one read returned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadOutcome {
    /// Tier the object was served from.
    pub tier: Tier,
    /// Whether the read had to decode around missing blocks.
    pub degraded: bool,
    /// Whether the read failed entirely (important data unrecoverable).
    pub unavailable: bool,
    /// Simulated latency from the timing model, ns.
    pub latency_ns: u64,
    /// Frames that had to be interpolated (cold reads only).
    pub lost_frames: usize,
    /// Mean PSNR over the interpolated frames, dB (when any were lost).
    pub psnr_db: Option<f64>,
}

struct ObjectRecord {
    tier: Tier,
    meta: ObjectMeta,
    video_seed: u64,
    frame_count: usize,
    important_len: usize,
    unimportant_len: usize,
    /// Physical footprint while hot, kept for the all-hot counterfactual.
    hot_nominal_bytes: u64,
    access: AccessStats,
}

fn nominal_bytes(meta: &ObjectMeta) -> u64 {
    u64::from(meta.stripes) * meta.placement.len() as u64 * meta.shard_len as u64
}

fn io_delta(before: &[NodeIo], after: &[NodeIo]) -> (IoTotals, Vec<u64>) {
    let mut t = IoTotals::default();
    let mut per_node_reads = vec![0u64; after.len()];
    // Deltas are saturating: counters only grow, but a saturated counter
    // (see IoStats) could otherwise make `after < before` and underflow.
    for (n, (b, a)) in before.iter().zip(after).enumerate() {
        per_node_reads[n] = a.read_bytes.saturating_sub(b.read_bytes);
        t.read_bytes = t.read_bytes.saturating_add(a.read_bytes.saturating_sub(b.read_bytes));
        t.write_bytes = t.write_bytes.saturating_add(a.write_bytes.saturating_sub(b.write_bytes));
    }
    (t, per_node_reads)
}

/// The deterministic trace-driven tier lifecycle engine.
pub struct TierEngine {
    cfg: TierConfig,
    cluster: Cluster,
    hot_code: Box<dyn ErasureCode>,
    cold_code: ApproxCode,
    objects: BTreeMap<u64, ObjectRecord>,
    now: usize,
    events: EventCounts,
    tiers: TierCounts,
    reads: ReadCounts,
    io: IoBreakdown,
    conversions: Vec<ConversionRecord>,
    latencies: Vec<u64>,
    psnr_samples: Vec<f64>,
    costs: TierCosts,
    timeline: Vec<TimelinePoint>,
}

impl TierEngine {
    /// Builds an engine, validating the configuration.
    pub fn new(cfg: TierConfig) -> Result<Self, TierError> {
        let hot_code = cfg.hot.build()?;
        let cold_code = cfg.cold.build()?;
        let widest = hot_code.total_nodes().max(cold_code.total_nodes());
        if cfg.nodes < widest {
            return Err(TierError::Config(format!(
                "{} nodes cannot host a {widest}-wide stripe",
                cfg.nodes
            )));
        }
        if cfg.hot_shard_len == 0 {
            return Err(TierError::Config("hot_shard_len must be positive".into()));
        }
        let align = cold_code.shard_alignment();
        if cfg.cold_shard_len == 0 || !cfg.cold_shard_len.is_multiple_of(align) {
            return Err(TierError::Config(format!(
                "cold_shard_len {} must be a positive multiple of the code alignment {align}",
                cfg.cold_shard_len
            )));
        }
        if cfg.video.min_frames == 0 || cfg.video.min_frames > cfg.video.max_frames {
            return Err(TierError::Config(format!(
                "frame range {}..={} is empty",
                cfg.video.min_frames, cfg.video.max_frames
            )));
        }
        Ok(TierEngine {
            cluster: Cluster::new(cfg.nodes),
            hot_code,
            cold_code,
            cfg,
            objects: BTreeMap::new(),
            now: 0,
            events: EventCounts::default(),
            tiers: TierCounts::default(),
            reads: ReadCounts::default(),
            io: IoBreakdown::default(),
            conversions: Vec::new(),
            latencies: Vec::new(),
            psnr_samples: Vec::new(),
            costs: TierCosts::default(),
            timeline: Vec::new(),
        })
    }

    /// Read-only view of the functional cluster (for tests and tools).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The cold-tier code.
    pub fn cold_code(&self) -> &ApproxCode {
        &self.cold_code
    }

    /// Which tier an object is on, if it exists.
    pub fn tier_of(&self, object: u64) -> Option<Tier> {
        self.objects.get(&object).map(|r| r.tier)
    }

    /// The cluster metadata of an object, if it exists.
    pub fn meta_of(&self, object: u64) -> Option<&ObjectMeta> {
        self.objects.get(&object).map(|r| &r.meta)
    }

    fn gop(&self) -> GopConfig {
        GopConfig {
            gop_len: self.cfg.video.gop_len,
            use_b_frames: true,
            quant: self.cfg.video.quant,
        }
    }

    /// Generates and runs the workload's trace, returning the report.
    pub fn run(&mut self, workload: &WorkloadConfig) -> Result<TierReport, TierError> {
        let trace = workload.generate(self.cfg.nodes);
        self.run_trace(&trace, workload)
    }

    /// Runs an explicit trace. `workload` is echoed into the report for
    /// provenance (pass the config that generated the trace).
    pub fn run_trace(
        &mut self,
        trace: &Trace,
        workload: &WorkloadConfig,
    ) -> Result<TierReport, TierError> {
        let mut idx = 0;
        for t in 0..trace.ticks {
            self.now = t;
            while idx < trace.events.len() && trace.events[idx].tick == t {
                let ev = trace.events[idx];
                idx += 1;
                match ev.kind {
                    EventKind::Ingest { video } => self.ingest(video)?,
                    EventKind::Read { video } => {
                        self.read_object(video)?;
                    }
                    EventKind::FailNode { node } => self.fail_node(node)?,
                    EventKind::RepairNode { node } => self.repair_node(node)?,
                }
            }
            self.end_of_tick(t + 1 == trace.ticks)?;
        }
        Ok(self.report(workload))
    }

    /// Ingests one synthetic video onto the hot tier.
    ///
    /// Content is derived from the engine seed and the video id alone, so
    /// the same `(seed, id)` always produces the same bytes — the PSNR
    /// scorer regenerates the ground truth from the same derivation.
    pub fn ingest(&mut self, video: u64) -> Result<(), TierError> {
        let v = self.cfg.video;
        let vseed = apec_ec::rng::derive(self.cfg.seed, &format!("video-{video}"));
        let span = v.max_frames - v.min_frames + 1;
        let frame_count = v.min_frames
            + (apec_ec::rng::derive(self.cfg.seed, &format!("video-len-{video}")) as usize) % span;
        let frames =
            SyntheticVideo::new(v.width, v.height, v.fps, vseed, v.blobs).frames(frame_count);
        let container = VideoContainer {
            width: v.width,
            height: v.height,
            fps: v.fps as u16,
            gop: self.gop(),
            frames: encode_stream(&frames, &self.gop()),
        };
        let tb = serialize_container(&container);
        let mut data = tb.important.clone();
        data.extend_from_slice(&tb.unimportant);

        let before = self.cluster.stats().snapshot();
        let stored =
            self.cluster
                .store_object(self.hot_code.as_ref(), video, &data, self.cfg.hot_shard_len);
        let (d, _) = io_delta(&before, &self.cluster.stats().snapshot());
        self.io.ingest += d;
        self.events.ingests += 1;
        let meta = match stored {
            Ok(m) => m,
            // A placement node is down mid-outage: the ingest is lost
            // (client retry is out of scope). Partial blocks stay charged.
            Err(ClusterError::Unavailable(_)) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let hot_nominal = nominal_bytes(&meta);
        self.objects.insert(
            video,
            ObjectRecord {
                tier: Tier::Hot,
                meta,
                video_seed: vseed,
                frame_count,
                important_len: tb.important.len(),
                unimportant_len: tb.unimportant.len(),
                hot_nominal_bytes: hot_nominal,
                access: AccessStats::new(self.now),
            },
        );
        Ok(())
    }

    /// Kills a node (blocks lost).
    pub fn fail_node(&mut self, node: usize) -> Result<(), TierError> {
        self.cluster.kill_node(node)?;
        self.events.failures += 1;
        Ok(())
    }

    /// Revives a node and rebuilds every object that lost blocks, as far
    /// as each object's placement is fully live again.
    ///
    /// Hot objects go through the cluster's plan-executing repair; cold
    /// objects rebuild with [`ApproxCode::reconstruct_tiered`], writing
    /// back zero-filled unsolved ranges — a permanent approximation that
    /// surfaces later as CRC-failed frames handed to interpolation.
    pub fn repair_node(&mut self, node: usize) -> Result<(), TierError> {
        self.cluster.revive_node(node)?;
        self.events.repairs += 1;
        let ids: Vec<u64> = self.objects.keys().copied().collect();
        for id in ids {
            let (tier, meta) = {
                let rec = &self.objects[&id];
                (rec.tier, rec.meta.clone())
            };
            if meta.placement.iter().any(|&n| !self.cluster.is_alive(n)) {
                continue; // another failure is still outstanding
            }
            let damaged = (0..meta.stripes).any(|s| {
                meta.placement.iter().enumerate().any(|(i, &n)| {
                    !self.cluster.block_present(
                        n,
                        BlockId {
                            object: id,
                            stripe: s,
                            shard: i as u32,
                        },
                    )
                })
            });
            if !damaged {
                continue;
            }
            let before = self.cluster.stats().snapshot();
            match tier {
                Tier::Hot => {
                    let mut m = meta.clone();
                    // Beyond-tolerance stripes stay damaged (the object
                    // will read as unavailable); that is data loss, not an
                    // engine error.
                    if self
                        .cluster
                        .repair_object(self.hot_code.as_ref(), &mut m, &HashMap::new())
                        .is_ok()
                    {
                        let rec = self.objects.get_mut(&id).ok_or_else(|| {
                            TierError::Internal(format!("object {id} vanished during repair"))
                        })?;
                        rec.meta = m;
                    }
                }
                Tier::Cold => self.repair_cold(id, &meta)?,
            }
            let (d, _) = io_delta(&before, &self.cluster.stats().snapshot());
            self.io.repair += d;
        }
        Ok(())
    }

    fn repair_cold(&mut self, object: u64, meta: &ObjectMeta) -> Result<(), TierError> {
        let width = self.cold_code.total_nodes();
        for s in 0..meta.stripes {
            let bid = |i: usize| BlockId {
                object,
                stripe: s,
                shard: i as u32,
            };
            let mut stripe: Vec<Option<Vec<u8>>> = (0..width)
                .map(|i| self.cluster.fetch_block(meta.placement[i], bid(i)))
                .collect();
            let missing: Vec<usize> = stripe
                .iter()
                .enumerate()
                .filter(|(_, shard)| shard.is_none())
                .map(|(i, _)| i)
                .collect();
            if missing.is_empty() {
                continue;
            }
            // Shape is valid by construction, so this cannot fail — it
            // rebuilds what it can and zero-fills the rest.
            self.cold_code.reconstruct_tiered(&mut stripe)?;
            for &i in &missing {
                let block = stripe.get_mut(i).and_then(Option::take).ok_or_else(|| {
                    TierError::Internal(format!(
                        "object {object} stripe {s} shard {i}: reconstruct_tiered left a \
                         reported-missing shard empty"
                    ))
                })?;
                self.cluster.store_block(meta.placement[i], bid(i), block)?;
            }
        }
        Ok(())
    }

    /// Serves one read, routed by the object's tier.
    pub fn read_object(&mut self, video: u64) -> Result<ReadOutcome, TierError> {
        self.reads.total += 1;
        let Some(rec) = self.objects.get(&video) else {
            // Ingest was lost to an outage; the read finds nothing.
            self.reads.unavailable += 1;
            return Ok(ReadOutcome {
                tier: Tier::Hot,
                degraded: false,
                unavailable: true,
                latency_ns: 0,
                lost_frames: 0,
                psnr_db: None,
            });
        };
        let outcome = match rec.tier {
            Tier::Hot => self.read_hot(video)?,
            Tier::Cold => self.read_cold(video)?,
        };
        if outcome.degraded {
            self.reads.degraded += 1;
        }
        if outcome.lost_frames > 0 {
            self.reads.approximate += 1;
        }
        if outcome.unavailable {
            self.reads.unavailable += 1;
        } else {
            self.latencies.push(outcome.latency_ns);
            let now = self.now;
            self.objects
                .get_mut(&video)
                .ok_or_else(|| {
                    TierError::Internal(format!("object {video} vanished during read"))
                })?
                .access
                .record_read(now);
        }
        Ok(outcome)
    }

    fn read_hot(&mut self, video: u64) -> Result<ReadOutcome, TierError> {
        self.reads.hot += 1;
        let meta = self.objects[&video].meta.clone();
        let degraded = (0..meta.stripes).any(|s| {
            meta.placement.iter().enumerate().any(|(i, &n)| {
                !self.cluster.block_present(
                    n,
                    BlockId {
                        object: video,
                        stripe: s,
                        shard: i as u32,
                    },
                )
            })
        });
        let before = self.cluster.stats().snapshot();
        let res = self.cluster.read_object(self.hot_code.as_ref(), &meta);
        let (d, per_node) = io_delta(&before, &self.cluster.stats().snapshot());
        self.io.read += d;
        match res {
            Ok(_bytes) => {
                let decode_bytes = if degraded { d.read_bytes } else { 0 };
                Ok(ReadOutcome {
                    tier: Tier::Hot,
                    degraded,
                    unavailable: false,
                    latency_ns: simulate_object_read(&self.cfg.timing, &per_node, decode_bytes),
                    lost_frames: 0,
                    psnr_db: None,
                })
            }
            Err(ClusterError::Unavailable(_)) => Ok(ReadOutcome {
                tier: Tier::Hot,
                degraded,
                unavailable: true,
                latency_ns: 0,
                lost_frames: 0,
                psnr_db: None,
            }),
            Err(e) => Err(e.into()),
        }
    }

    fn read_cold(&mut self, video: u64) -> Result<ReadOutcome, TierError> {
        self.reads.cold += 1;
        let (meta, important_len, unimportant_len, video_seed, frame_count) = {
            let r = &self.objects[&video];
            (
                r.meta.clone(),
                r.important_len,
                r.unimportant_len,
                r.video_seed,
                r.frame_count,
            )
        };
        let width = self.cold_code.total_nodes();
        let kd = self.cold_code.data_nodes();
        let before = self.cluster.stats().snapshot();
        let mut degraded = false;
        let mut data_stripes: Vec<Vec<Vec<u8>>> = Vec::with_capacity(meta.stripes as usize);
        for s in 0..meta.stripes {
            let bid = |i: usize| BlockId {
                object: video,
                stripe: s,
                shard: i as u32,
            };
            let data_live = (0..kd).all(|i| self.cluster.block_present(meta.placement[i], bid(i)));
            if data_live {
                data_stripes.push(
                    (0..kd)
                        .map(|i| {
                            self.cluster.fetch_block(meta.placement[i], bid(i)).ok_or_else(
                                || {
                                    TierError::Internal(format!(
                                        "stripe {s} shard {i}: block vanished between \
                                         presence check and fetch"
                                    ))
                                },
                            )
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                );
                continue;
            }
            // Decode around the damage on a local copy — approximate
            // reads never write back; unsolved ranges come back zeroed
            // and fail the container's frame CRCs.
            degraded = true;
            let mut stripe: Vec<Option<Vec<u8>>> = (0..width)
                .map(|i| self.cluster.fetch_block(meta.placement[i], bid(i)))
                .collect();
            self.cold_code.reconstruct_tiered(&mut stripe)?;
            data_stripes.push(
                (0..kd)
                    .map(|i| {
                        stripe.get_mut(i).and_then(Option::take).ok_or_else(|| {
                            TierError::Internal(format!(
                                "stripe {s} shard {i}: reconstruct_tiered left a data \
                                 shard empty"
                            ))
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            );
        }
        let (d, per_node) = io_delta(&before, &self.cluster.stats().snapshot());
        self.io.read += d;

        let (important, unimportant) =
            tiered::unpack(&self.cold_code, &data_stripes, important_len, unimportant_len);
        let Ok(parsed) = parse_container(&important, &unimportant) else {
            // Important data damaged beyond r+g tolerance: no approximate
            // answer exists. Reported, never a panic.
            return Ok(ReadOutcome {
                tier: Tier::Cold,
                degraded,
                unavailable: true,
                latency_ns: 0,
                lost_frames: 0,
                psnr_db: None,
            });
        };
        let mut stream = decode_stream(&parsed.frames, parsed.width, parsed.height, &parsed.gop);
        let lost = stream.lost_indices();
        let mut psnr = None;
        if !lost.is_empty() {
            recover_lost_frames(&mut stream, self.cfg.interpolator);
            let v = self.cfg.video;
            let truth =
                SyntheticVideo::new(v.width, v.height, v.fps, video_seed, v.blobs).frames(frame_count);
            let mut sum = 0.0;
            let mut n = 0usize;
            for &i in &lost {
                if let (Some(reference), Some(recon)) = (truth.get(i), stream.frames[i].as_ref()) {
                    let db = psnr_db(reference, recon);
                    self.psnr_samples.push(db);
                    sum += db;
                    n += 1;
                }
            }
            if n > 0 {
                psnr = Some(sum / n as f64);
            }
        }
        let decode_bytes = if degraded || !lost.is_empty() {
            d.read_bytes
        } else {
            0
        };
        Ok(ReadOutcome {
            tier: Tier::Cold,
            degraded,
            unavailable: false,
            latency_ns: simulate_object_read(&self.cfg.timing, &per_node, decode_bytes),
            lost_frames: lost.len(),
            psnr_db: psnr,
        })
    }

    /// Converts a hot object to the cold tier in place: read hot, repack
    /// important/unimportant streams under the Approximate Code, delete
    /// the hot copy, store the cold one. Every byte of conversion I/O is
    /// charged through the cluster's counters.
    ///
    /// Returns `false` (a *failed demotion*, not an error) when the hot
    /// copy cannot be read intact or the cold placement is not fully
    /// live — the object stays hot and the policy retries next tick.
    pub fn demote(&mut self, video: u64) -> Result<bool, TierError> {
        let (meta, important_len) = {
            let Some(rec) = self.objects.get(&video) else {
                return Ok(false);
            };
            if rec.tier == Tier::Cold {
                return Ok(false);
            }
            (rec.meta.clone(), rec.important_len)
        };
        // The cold placement must be fully live before the hot copy is
        // deleted, or the conversion would lose the object mid-flight.
        let cold_width = self.cold_code.total_nodes();
        let cold_placement_live = (0..cold_width)
            .all(|i| self.cluster.is_alive((i + video as usize) % self.cfg.nodes));
        if !cold_placement_live {
            self.tiers.failed_demotions += 1;
            return Ok(false);
        }
        let before = self.cluster.stats().snapshot();
        let bytes = match self.cluster.read_object(self.hot_code.as_ref(), &meta) {
            Ok(b) => b,
            Err(ClusterError::Unavailable(_)) => {
                let (d, _) = io_delta(&before, &self.cluster.stats().snapshot());
                self.io.conversion += d;
                self.tiers.failed_demotions += 1;
                return Ok(false);
            }
            Err(e) => return Err(e.into()),
        };
        let (important, unimportant) = bytes.split_at(important_len.min(bytes.len()));
        let packed = tiered::pack(
            &self.cold_code,
            important,
            unimportant,
            self.cfg.cold_shard_len,
        )?;
        self.cluster.delete_object(&meta);
        let new_meta =
            self.cluster
                .store_encoded(&self.cold_code, video, &packed.stripes, bytes.len())?;
        let (d, _) = io_delta(&before, &self.cluster.stats().snapshot());
        self.io.conversion += d;
        self.conversions.push(ConversionRecord {
            tick: self.now,
            object: video,
            bytes_read: d.read_bytes,
            bytes_written: d.write_bytes,
        });
        self.tiers.demotions += 1;
        let rec = self.objects.get_mut(&video).ok_or_else(|| {
            TierError::Internal(format!("object {video} vanished during demotion"))
        })?;
        rec.tier = Tier::Cold;
        rec.meta = new_meta;
        Ok(true)
    }

    fn end_of_tick(&mut self, last: bool) -> Result<(), TierError> {
        // Demotion scan in object-id order (BTreeMap keeps it stable).
        let ids: Vec<u64> = self.objects.keys().copied().collect();
        for id in ids {
            // Robust to future policies that delete objects mid-scan.
            let Some(rec) = self.objects.get_mut(&id) else {
                continue;
            };
            if rec.tier != Tier::Hot {
                continue;
            }
            if self.cfg.policy.evaluate(&mut rec.access, self.now) {
                self.demote(id)?;
            }
        }
        // Accrue byte-ticks and sample the timeline.
        let (mut hot, mut cold, mut logical, mut hot_only) = (0u64, 0u64, 0u64, 0u64);
        for rec in self.objects.values() {
            let phys = nominal_bytes(&rec.meta);
            match rec.tier {
                Tier::Hot => hot += phys,
                Tier::Cold => cold += phys,
            }
            logical += (rec.important_len + rec.unimportant_len) as u64;
            hot_only += rec.hot_nominal_bytes;
        }
        self.costs.hot_byte_ticks = self.costs.hot_byte_ticks.saturating_add(hot);
        self.costs.cold_byte_ticks = self.costs.cold_byte_ticks.saturating_add(cold);
        self.costs.logical_byte_ticks = self.costs.logical_byte_ticks.saturating_add(logical);
        self.costs.hot_only_byte_ticks = self.costs.hot_only_byte_ticks.saturating_add(hot_only);
        if last || self.now.is_multiple_of(self.cfg.sample_every.max(1)) {
            self.timeline.push(TimelinePoint {
                tick: self.now,
                hot_bytes: hot,
                cold_bytes: cold,
                logical_bytes: logical,
                overhead: if logical == 0 {
                    0.0
                } else {
                    (hot + cold) as f64 / logical as f64
                },
            });
        }
        Ok(())
    }

    fn report(&mut self, workload: &WorkloadConfig) -> TierReport {
        let mut tiers = self.tiers;
        for rec in self.objects.values() {
            match rec.tier {
                Tier::Hot => tiers.hot_objects += 1,
                Tier::Cold => tiers.cold_objects += 1,
            }
        }
        // Measured overheads: physical capacity over data capacity, from
        // the live object registry.
        let mut hot_phys = 0u64;
        let mut hot_data = 0u64;
        let mut cold_phys = 0u64;
        let mut cold_data = 0u64;
        for rec in self.objects.values() {
            let phys = nominal_bytes(&rec.meta);
            let (code_data, code_width): (u64, u64) = match rec.tier {
                Tier::Hot => (
                    self.hot_code.data_nodes() as u64,
                    self.hot_code.total_nodes() as u64,
                ),
                Tier::Cold => (
                    self.cold_code.data_nodes() as u64,
                    self.cold_code.total_nodes() as u64,
                ),
            };
            let data = phys * code_data / code_width;
            match rec.tier {
                Tier::Hot => {
                    hot_phys += phys;
                    hot_data += data;
                }
                Tier::Cold => {
                    cold_phys += phys;
                    cold_data += data;
                }
            }
        }
        let ratio = |p: u64, d: u64| if d == 0 { 0.0 } else { p as f64 / d as f64 };
        let c = self.cfg.cold;
        let overhead = OverheadCheck {
            expected_hot: self.hot_code.storage_overhead(),
            measured_hot: ratio(hot_phys, hot_data),
            expected_cold: apec_analysis::overhead::appr_overhead(c.k, c.r, c.g, c.h),
            measured_cold: ratio(cold_phys, cold_data),
            hot_single_write: self.cfg.hot.single_write_cost(),
            cold_single_write: c.single_write_cost(),
        };
        let totals = self.cluster.stats().totals();
        self.io.cluster_total = IoTotals {
            read_bytes: totals.read_bytes,
            write_bytes: totals.write_bytes,
        };
        self.events.reads = self.reads.total;
        TierReport {
            config: ConfigEcho {
                seed: self.cfg.seed,
                nodes: self.cfg.nodes,
                hot_code: self.hot_code.name(),
                cold_code: self.cold_code.name(),
                hot_shard_len: self.cfg.hot_shard_len,
                cold_shard_len: self.cfg.cold_shard_len,
                policy: self.cfg.policy,
                interpolator: format!("{:?}", self.cfg.interpolator),
                workload: *workload,
            },
            events: self.events,
            tiers,
            reads: self.reads,
            io: self.io,
            conversions: self.conversions.clone(),
            latency: LatencyHistogram::from_samples(self.latencies.clone()),
            psnr: PsnrHistogram::from_samples(&self.psnr_samples),
            overhead,
            timeline: self.timeline.clone(),
            costs: self.costs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placement(engine: &TierEngine, object: u64) -> Vec<usize> {
        engine.meta_of(object).expect("object exists").placement.clone()
    }

    #[test]
    fn config_validation_rejects_inconsistent_setups() {
        let mut cfg = TierConfig::demo(1);
        cfg.nodes = 4; // narrower than both codes
        assert!(matches!(TierEngine::new(cfg), Err(TierError::Config(_))));

        let mut cfg = TierConfig::demo(1);
        cfg.cold_shard_len = 0;
        assert!(matches!(TierEngine::new(cfg), Err(TierError::Config(_))));

        let mut cfg = TierConfig::demo(1);
        cfg.video.min_frames = 0;
        assert!(matches!(TierEngine::new(cfg), Err(TierError::Config(_))));
    }

    #[test]
    fn ingest_demote_read_roundtrip() {
        let mut e = TierEngine::new(TierConfig::demo(3)).unwrap();
        e.ingest(5).unwrap();
        assert_eq!(e.tier_of(5), Some(Tier::Hot));

        let hot = e.read_object(5).unwrap();
        assert_eq!(hot.tier, Tier::Hot);
        assert!(!hot.degraded && !hot.unavailable);
        assert!(hot.latency_ns > 0);

        assert!(e.demote(5).unwrap());
        assert_eq!(e.tier_of(5), Some(Tier::Cold));
        // Demoting twice is a no-op, not an error.
        assert!(!e.demote(5).unwrap());

        let cold = e.read_object(5).unwrap();
        assert_eq!(cold.tier, Tier::Cold);
        assert!(!cold.degraded && !cold.unavailable);
        assert_eq!(cold.lost_frames, 0, "healthy cold read loses nothing");

        // Cold footprint matches the Approximate Code's width/data ratio.
        let meta = e.meta_of(5).unwrap();
        let width = e.cold_code().total_nodes();
        let kd = e.cold_code().data_nodes();
        assert_eq!(meta.placement.len(), width);
        let phys = e.cluster().object_stored_bytes(meta);
        let data = u64::from(meta.stripes) * kd as u64 * meta.shard_len as u64;
        assert_eq!(phys, data * width as u64 / kd as u64);
    }

    #[test]
    fn demotion_aborts_safely_when_cold_placement_is_down() {
        let mut e = TierEngine::new(TierConfig::demo(9)).unwrap();
        e.ingest(0).unwrap();
        // Node 15 hosts cold shard position 15 of object 0 but no hot
        // shard (hot width is 8), so the hot copy stays fully readable.
        e.fail_node(15).unwrap();
        assert!(!e.demote(0).unwrap());
        assert_eq!(e.tier_of(0), Some(Tier::Hot));
        let read = e.read_object(0).unwrap();
        assert!(!read.unavailable && !read.degraded);

        e.repair_node(15).unwrap();
        assert!(e.demote(0).unwrap());
        assert_eq!(e.tier_of(0), Some(Tier::Cold));
    }

    #[test]
    fn unimportant_loss_becomes_an_approximate_read_with_psnr() {
        let mut e = TierEngine::new(TierConfig::demo(11)).unwrap();
        e.ingest(0).unwrap();
        assert!(e.demote(0).unwrap());
        // Cold positions 5 and 6 are data nodes of local stripe 1 —
        // unimportant data under the Uneven structure, covered only by
        // that stripe's single local parity. Killing both exceeds the
        // local tolerance, so the bytes are gone for good.
        let pl = placement(&e, 0);
        e.fail_node(pl[5]).unwrap();
        e.fail_node(pl[6]).unwrap();

        let read = e.read_object(0).unwrap();
        assert_eq!(read.tier, Tier::Cold);
        assert!(read.degraded && !read.unavailable);
        assert!(read.lost_frames > 0, "zeroed unimportant data must lose frames");
        let db = read.psnr_db.expect("interpolated frames are scored");
        assert!(db.is_finite() && db > 0.0, "psnr {db}");

        // Repair writes back zero-filled blocks: the loss is permanent,
        // and later reads are approximate without being degraded.
        e.repair_node(pl[5]).unwrap();
        e.repair_node(pl[6]).unwrap();
        let after = e.read_object(0).unwrap();
        assert!(!after.degraded && !after.unavailable);
        assert!(after.lost_frames > 0, "the approximation is permanent");
        assert!(after.psnr_db.is_some());
    }

    #[test]
    fn reads_of_unknown_objects_are_unavailable_not_errors() {
        let mut e = TierEngine::new(TierConfig::demo(2)).unwrap();
        let r = e.read_object(99).unwrap();
        assert!(r.unavailable);
        assert_eq!(e.report(&WorkloadConfig::small(2)).reads.unavailable, 1);
    }

    // PR 5 regressions: lifecycle invariant violations surface as
    // `TierError::Internal` (typed, Display-able), never as a panic, and the
    // IO accounting stays monotone even when a counter has saturated.

    #[test]
    fn demote_of_unknown_object_is_a_noop() {
        let mut e = TierEngine::new(TierConfig::demo(3)).unwrap();
        assert!(!e.demote(424242).unwrap());
    }

    #[test]
    fn internal_error_displays_its_invariant() {
        let err = TierError::Internal("object 7 vanished during demotion".into());
        let msg = err.to_string();
        assert!(msg.contains("engine invariant violated"));
        assert!(msg.contains("object 7"));
    }

    #[test]
    fn io_delta_survives_saturated_counters() {
        use apec_ec::iostats::NodeIo;
        // A node whose read counter pinned at u64::MAX between snapshots
        // must not underflow the delta (the counter "moved backwards"
        // relative to naive subtraction once it saturates).
        let before = vec![NodeIo { read_ops: 1, read_bytes: u64::MAX, write_ops: 0, write_bytes: 5 }];
        let after = vec![NodeIo { read_ops: 2, read_bytes: u64::MAX, write_ops: 0, write_bytes: 3 }];
        let (t, per_node) = io_delta(&before, &after);
        assert_eq!(t.read_bytes, 0);
        assert_eq!(t.write_bytes, 0); // 3 - 5 saturates to 0, not wraps
        assert_eq!(per_node, vec![0]);
    }
}
