//! Read-latency and long-horizon storage-cost models.
//!
//! Latency reuses the cluster's discrete-event engine
//! ([`apec_cluster::Simulation`]): a read becomes a chunked
//! disk → uplink → shared-downlink task DAG per contributing node, plus a
//! decode stage on the client CPU when the read was degraded. The makespan
//! is the read's latency — the same resource model
//! [`apec_cluster::timing`] uses for repair times, so hot/cold latency
//! differences come from the byte counts the functional cluster actually
//! measured, not from a separate hand-tuned model.
//!
//! Storage cost is integrated over time in **byte-ticks** (bytes occupied
//! × ticks held, the simulation's analogue of GB-months): the engine
//! accrues actual hot + cold footprints every tick next to the
//! counterfactual where nothing is ever demoted, and the ratio of the two
//! is the headline savings number the paper's Table 4 reports per object.

use apec_cluster::{ClusterConfig, Simulation};
use serde::Serialize;

/// Simulated wall-clock latency of one object read.
///
/// `per_node_bytes[n]` is what the read fetched from node `n` (taken from
/// the functional cluster's `IoStats` delta, so degraded reads price in
/// their extra survivor traffic automatically). `decode_bytes` > 0 adds a
/// client-side decode stage gated on the full transfer, as in
/// [`apec_cluster::timing::simulate_repair`].
pub fn simulate_object_read(
    cfg: &ClusterConfig,
    per_node_bytes: &[u64],
    decode_bytes: u64,
) -> u64 {
    let mut sim = Simulation::new();
    let downlink = sim.add_resource("client-downlink", cfg.net_bps, cfg.net_op_latency_ns);
    let chunk = cfg.chunk_bytes.max(1);
    let mut transfers = Vec::new();
    for (n, &bytes) in per_node_bytes.iter().enumerate() {
        if bytes == 0 {
            continue;
        }
        let disk = sim.add_resource(
            format!("disk-{n}"),
            cfg.disk_read_bps,
            cfg.disk_op_latency_ns,
        );
        let uplink = sim.add_resource(format!("uplink-{n}"), cfg.net_bps, cfg.net_op_latency_ns);
        let mut left = bytes;
        while left > 0 {
            let take = left.min(chunk);
            left -= take;
            let read = sim.add_task(disk, take, vec![]);
            let up = sim.add_task(uplink, take, vec![read]);
            transfers.push(sim.add_task(downlink, take, vec![up]));
        }
    }
    if transfers.is_empty() {
        return 0;
    }
    if decode_bytes > 0 {
        let cpu = sim.add_resource("client-cpu", cfg.compute_bps, 0);
        sim.add_task(cpu, decode_bytes, transfers);
    }
    sim.run().makespan_ns
}

/// Storage cost integrated over the run, with the all-hot counterfactual.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct TierCosts {
    /// Actual hot-tier footprint integrated over ticks (bytes × ticks).
    pub hot_byte_ticks: u64,
    /// Actual cold-tier footprint integrated over ticks.
    pub cold_byte_ticks: u64,
    /// Logical (pre-redundancy) data integrated over ticks.
    pub logical_byte_ticks: u64,
    /// Counterfactual footprint had every object stayed on the hot code.
    pub hot_only_byte_ticks: u64,
}

impl TierCosts {
    /// Fraction of the all-hot storage bill the tiering saved.
    pub fn savings_ratio(&self) -> f64 {
        if self.hot_only_byte_ticks == 0 {
            return 0.0;
        }
        // Summed in f64: u64 addition could overflow after ~2^63 byte-ticks.
        1.0 - (self.hot_byte_ticks as f64 + self.cold_byte_ticks as f64)
            / self.hot_only_byte_ticks as f64
    }

    /// Average physical-over-logical overhead across the whole run.
    pub fn mean_overhead(&self) -> f64 {
        if self.logical_byte_ticks == 0 {
            return 0.0;
        }
        (self.hot_byte_ticks as f64 + self.cold_byte_ticks as f64) / self.logical_byte_ticks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_latency_scales_with_bytes_and_degradation() {
        let cfg = ClusterConfig::default();
        let small = simulate_object_read(&cfg, &[1 << 20, 1 << 20], 0);
        let large = simulate_object_read(&cfg, &[8 << 20, 8 << 20], 0);
        assert!(large > small, "{large} vs {small}");
        let degraded = simulate_object_read(&cfg, &[8 << 20, 8 << 20], 16 << 20);
        assert!(degraded > large, "decode stage must add latency");
        assert_eq!(simulate_object_read(&cfg, &[0, 0], 0), 0);
    }

    #[test]
    fn parallel_nodes_beat_one_node_for_the_same_bytes() {
        let cfg = ClusterConfig::default();
        let spread = simulate_object_read(&cfg, &[4 << 20; 4], 0);
        let single = simulate_object_read(&cfg, &[16 << 20, 0, 0, 0], 0);
        assert!(spread < single, "{spread} vs {single}");
    }

    #[test]
    fn savings_ratio_matches_hand_numbers() {
        let c = TierCosts {
            hot_byte_ticks: 30,
            cold_byte_ticks: 20,
            logical_byte_ticks: 40,
            hot_only_byte_ticks: 100,
        };
        assert!((c.savings_ratio() - 0.5).abs() < 1e-12);
        assert!((c.mean_overhead() - 1.25).abs() < 1e-12);
        assert_eq!(TierCosts::default().savings_ratio(), 0.0);
        assert_eq!(TierCosts::default().mean_overhead(), 0.0);
    }
}
