//! Seeded workload generation: a Zipf-popular video catalog with
//! per-video popularity decay, emitting an ordered event trace.
//!
//! The paper's evaluation drives a Hadoop cluster with YouTube-8m videos
//! whose access frequency follows the usual long-tail pattern: most reads
//! concentrate on a few hot videos, and every video cools down as it ages.
//! This module reproduces that shape synthetically and deterministically —
//! the same seed yields the same trace byte-for-byte, which the CI smoke
//! lane and the reproducibility tests rely on.
//!
//! Popularity of video `v` at tick `t` is
//! `(rank(v) + 1)^-s · 0.5^((t - ingest(v)) / half_life)` — a Zipf law
//! over a seeded rank permutation (so video ids don't correlate with
//! popularity) times exponential decay from the video's ingest tick.
//! Node failures are injected on a fixed cadence with a repair scheduled a
//! configurable number of ticks later, mirroring a detection+re-replication
//! delay.

use serde::Serialize;

/// One scheduled action in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EventKind {
    /// A new video enters the system (stored on the hot tier).
    Ingest {
        /// Video / object identifier.
        video: u64,
    },
    /// A client reads a video end-to-end.
    Read {
        /// Video / object identifier.
        video: u64,
    },
    /// A storage node dies, losing its blocks.
    FailNode {
        /// Cluster node index.
        node: usize,
    },
    /// A failed node is replaced and lost blocks are re-replicated.
    RepairNode {
        /// Cluster node index.
        node: usize,
    },
}

/// An event pinned to its tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceEvent {
    /// Simulation tick the event fires at.
    pub tick: usize,
    /// What happens.
    pub kind: EventKind,
}

/// An ordered, reproducible event schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Trace {
    /// Number of ticks the simulation runs for.
    pub ticks: usize,
    /// Events sorted by tick; within a tick: repairs, failures, ingests,
    /// reads — so a repaired node is usable by the same tick's reads.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Events of one kind (for summaries and tests).
    pub fn count(&self, f: impl Fn(&EventKind) -> bool) -> usize {
        self.events.iter().filter(|e| f(&e.kind)).count()
    }
}

/// Parameters of the synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WorkloadConfig {
    /// Catalog size: videos ingested over the run.
    pub videos: usize,
    /// Simulation length in ticks.
    pub ticks: usize,
    /// Read events sampled per tick.
    pub reads_per_tick: usize,
    /// Zipf exponent `s` of the popularity law (≈ 1 for video catalogs).
    pub zipf_exponent: f64,
    /// Ticks for a video's popularity to halve.
    pub half_life: f64,
    /// Ingests are spread uniformly over the first `ingest_window` ticks.
    pub ingest_window: usize,
    /// A node failure every this many ticks (`0` disables failures).
    pub failure_every: usize,
    /// Ticks between a failure and its repair.
    pub repair_after: usize,
    /// Master seed; every stochastic choice forks from it by label.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A small preset that exercises every event kind in a few hundred
    /// events — the default for tests, CI smoke runs and the CLI.
    pub fn small(seed: u64) -> Self {
        WorkloadConfig {
            videos: 8,
            ticks: 60,
            reads_per_tick: 4,
            zipf_exponent: 1.1,
            half_life: 12.0,
            ingest_window: 16,
            failure_every: 20,
            repair_after: 3,
            seed,
        }
    }

    /// The tick video `v` is ingested at.
    fn ingest_tick(&self, v: usize) -> usize {
        if self.videos == 0 {
            return 0;
        }
        // Evenly spaced over the window, first video at tick 0.
        v * self.ingest_window.min(self.ticks.saturating_sub(1)) / self.videos
    }

    /// Generates the event trace for a cluster of `nodes` nodes.
    ///
    /// Deterministic: reads, failures and the popularity rank permutation
    /// each draw from their own labelled fork of [`WorkloadConfig::seed`],
    /// so changing one knob (say `reads_per_tick`) never perturbs the
    /// failure schedule.
    pub fn generate(&self, nodes: usize) -> Trace {
        use rand::prelude::*;

        // Seeded rank permutation: video id ↛ popularity rank.
        let mut ranks: Vec<usize> = (0..self.videos).collect();
        ranks.shuffle(&mut apec_ec::rng::fork(self.seed, "workload-ranks"));

        let ingest_at: Vec<usize> = (0..self.videos).map(|v| self.ingest_tick(v)).collect();

        // Failure schedule first (it is independent of the read stream):
        // pick a victim among currently-live nodes, schedule its repair.
        let mut fail_rng = apec_ec::rng::fork(self.seed, "workload-failures");
        let mut fails_at: Vec<Vec<usize>> = vec![Vec::new(); self.ticks];
        let mut repairs_at: Vec<Vec<usize>> = vec![Vec::new(); self.ticks];
        let mut down: Vec<bool> = vec![false; nodes];
        if self.failure_every > 0 && nodes > 0 {
            for t in (self.failure_every..self.ticks).step_by(self.failure_every) {
                let live: Vec<usize> = (0..nodes).filter(|&n| !down[n]).collect();
                let Some(&victim) = live.as_slice().choose(&mut fail_rng) else {
                    continue;
                };
                down[victim] = true;
                fails_at[t].push(victim);
                let back = t + self.repair_after;
                if back < self.ticks {
                    repairs_at[back].push(victim);
                    // Mark it live again from the repair tick onward; the
                    // simple model allows at most one outstanding failure
                    // per node.
                    down[victim] = false;
                }
            }
        }

        let mut read_rng = apec_ec::rng::fork(self.seed, "workload-reads");
        let mut events = Vec::new();
        for t in 0..self.ticks {
            for &n in &repairs_at[t] {
                events.push(TraceEvent {
                    tick: t,
                    kind: EventKind::RepairNode { node: n },
                });
            }
            for &n in &fails_at[t] {
                events.push(TraceEvent {
                    tick: t,
                    kind: EventKind::FailNode { node: n },
                });
            }
            for (v, &at) in ingest_at.iter().enumerate() {
                if at == t {
                    events.push(TraceEvent {
                        tick: t,
                        kind: EventKind::Ingest { video: v as u64 },
                    });
                }
            }
            // Popularity-weighted reads over the already-ingested catalog.
            let weights: Vec<f64> = (0..self.videos)
                .map(|v| {
                    if ingest_at[v] > t {
                        return 0.0;
                    }
                    let age = (t - ingest_at[v]) as f64;
                    let zipf = ((ranks[v] + 1) as f64).powf(-self.zipf_exponent);
                    zipf * 0.5f64.powf(age / self.half_life.max(1e-9))
                })
                .collect();
            let total: f64 = weights.iter().sum();
            if total <= 0.0 {
                continue;
            }
            for _ in 0..self.reads_per_tick {
                let mut x = read_rng.random_range(0.0..total);
                let mut pick = self.videos - 1;
                for (v, &w) in weights.iter().enumerate() {
                    if x < w {
                        pick = v;
                        break;
                    }
                    x -= w;
                }
                events.push(TraceEvent {
                    tick: t,
                    kind: EventKind::Read { video: pick as u64 },
                });
            }
        }
        Trace {
            ticks: self.ticks,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace() {
        let cfg = WorkloadConfig::small(42);
        assert_eq!(cfg.generate(12), cfg.generate(12));
        assert_ne!(cfg.generate(12), WorkloadConfig::small(43).generate(12));
    }

    #[test]
    fn trace_contains_every_event_kind_in_order() {
        let cfg = WorkloadConfig::small(7);
        let trace = cfg.generate(12);
        assert_eq!(trace.count(|k| matches!(k, EventKind::Ingest { .. })), 8);
        assert!(trace.count(|k| matches!(k, EventKind::Read { .. })) > 0);
        assert!(trace.count(|k| matches!(k, EventKind::FailNode { .. })) >= 1);
        assert!(trace.count(|k| matches!(k, EventKind::RepairNode { .. })) >= 1);
        assert!(trace.events.windows(2).all(|w| w[0].tick <= w[1].tick));
    }

    #[test]
    fn reads_never_precede_ingest() {
        let cfg = WorkloadConfig::small(3);
        let trace = cfg.generate(12);
        let mut ingested = std::collections::BTreeSet::new();
        for e in &trace.events {
            match e.kind {
                EventKind::Ingest { video } => {
                    ingested.insert(video);
                }
                EventKind::Read { video } => assert!(
                    ingested.contains(&video),
                    "read of video {video} before its ingest at tick {}",
                    e.tick
                ),
                _ => {}
            }
        }
    }

    #[test]
    fn popularity_is_long_tailed() {
        // With s > 1 the most-read video should take a clearly larger
        // share than the median one.
        let mut cfg = WorkloadConfig::small(1);
        cfg.videos = 6;
        cfg.ticks = 200;
        cfg.reads_per_tick = 8;
        cfg.ingest_window = 1;
        cfg.half_life = 1e9; // isolate the Zipf factor
        cfg.failure_every = 0;
        let trace = cfg.generate(12);
        let mut counts = vec![0usize; cfg.videos];
        for e in &trace.events {
            if let EventKind::Read { video } = e.kind {
                counts[video as usize] += 1;
            }
        }
        counts.sort_unstable();
        assert!(
            counts[cfg.videos - 1] > 3 * counts[cfg.videos / 2].max(1),
            "{counts:?}"
        );
    }

    #[test]
    fn failures_disabled_when_cadence_is_zero() {
        let mut cfg = WorkloadConfig::small(5);
        cfg.failure_every = 0;
        let trace = cfg.generate(12);
        assert_eq!(trace.count(|k| matches!(k, EventKind::FailNode { .. })), 0);
    }
}
