//! The serialisable outcome of a tier-lifecycle run.
//!
//! A [`TierReport`] is the engine's single artefact: storage overhead over
//! time, bytes moved by conversion vs repair, the read-latency
//! distribution from the timing model, and the PSNR histogram of
//! approximate reads — the quantities the paper's evaluation section
//! plots. It serialises with `serde_json` in a fully deterministic field
//! order, and [`TierReport::digest`] folds the JSON into one `u64` the CI
//! smoke lane asserts on: same seed ⇒ same digest, bit-for-bit.

use crate::cost::TierCosts;
use crate::policy::DemotionPolicy;
use crate::workload::WorkloadConfig;
use serde::Serialize;

/// Millisecond bucket edges of the latency histogram.
pub const LATENCY_EDGES_MS: [u64; 10] = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000];

/// Decibel bucket edges of the PSNR histogram.
pub const PSNR_EDGES_DB: [f64; 6] = [20.0, 25.0, 30.0, 35.0, 40.0, 45.0];

/// Echo of the run's configuration (codes by display name).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ConfigEcho {
    /// Master seed.
    pub seed: u64,
    /// Cluster node count.
    pub nodes: usize,
    /// Hot-tier code, by name.
    pub hot_code: String,
    /// Cold-tier code, by name.
    pub cold_code: String,
    /// Hot-tier shard length in bytes.
    pub hot_shard_len: usize,
    /// Cold-tier shard length in bytes.
    pub cold_shard_len: usize,
    /// Demotion policy.
    pub policy: DemotionPolicy,
    /// Interpolator for approximate reads, by name.
    pub interpolator: String,
    /// Workload parameters.
    pub workload: WorkloadConfig,
}

/// Event counts by kind, as executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct EventCounts {
    /// Ingest events.
    pub ingests: usize,
    /// Read events.
    pub reads: usize,
    /// Node failures injected.
    pub failures: usize,
    /// Node repairs executed.
    pub repairs: usize,
}

/// Object population and conversion outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TierCounts {
    /// Objects on the hot tier at the end of the run.
    pub hot_objects: usize,
    /// Objects on the cold tier at the end of the run.
    pub cold_objects: usize,
    /// Successful hot→cold conversions.
    pub demotions: usize,
    /// Demotions abandoned because the hot object could not be read
    /// intact (e.g. during an unrepaired failure).
    pub failed_demotions: usize,
}

/// Read outcomes by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ReadCounts {
    /// All read events served.
    pub total: usize,
    /// Reads served from the hot tier.
    pub hot: usize,
    /// Reads served from the cold tier.
    pub cold: usize,
    /// Reads that had to decode around missing blocks.
    pub degraded: usize,
    /// Cold reads that lost frames and interpolated them.
    pub approximate: usize,
    /// Reads that could not be served at all.
    pub unavailable: usize,
}

/// Read/write byte totals for one I/O category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct IoTotals {
    /// Bytes read from cluster disks.
    pub read_bytes: u64,
    /// Bytes written to cluster disks.
    pub write_bytes: u64,
}

/// Cluster I/O attributed to the activity that caused it.
///
/// Categories are measured as `IoStats` snapshot deltas around each
/// operation, so they sum exactly to [`IoBreakdown::cluster_total`] — the
/// acceptance check `io_accounting_is_complete` asserts it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct IoBreakdown {
    /// Initial hot-tier encoding writes (and no reads).
    pub ingest: IoTotals,
    /// Client reads, including degraded-read amplification.
    pub read: IoTotals,
    /// Hot→cold conversion traffic (read hot + write cold).
    pub conversion: IoTotals,
    /// Failure repair traffic.
    pub repair: IoTotals,
    /// Everything the cluster's own counters saw.
    pub cluster_total: IoTotals,
}

impl std::ops::AddAssign for IoTotals {
    fn add_assign(&mut self, rhs: IoTotals) {
        self.read_bytes = self.read_bytes.saturating_add(rhs.read_bytes);
        self.write_bytes = self.write_bytes.saturating_add(rhs.write_bytes);
    }
}

/// One hot→cold conversion, as executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ConversionRecord {
    /// Tick the demotion ran.
    pub tick: usize,
    /// Object converted.
    pub object: u64,
    /// Bytes read off the hot placement.
    pub bytes_read: u64,
    /// Bytes written to the cold placement.
    pub bytes_written: u64,
}

/// Read-latency distribution from the timing model.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LatencyHistogram {
    /// Counts per bucket: `buckets[i]` counts latencies below
    /// [`LATENCY_EDGES_MS`]`[i]`; the final slot is the overflow bucket.
    pub buckets: Vec<u64>,
    /// Median latency, ns.
    pub p50_ns: u64,
    /// 95th percentile, ns.
    pub p95_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// Mean latency, ns.
    pub mean_ns: u64,
    /// Worst observed latency, ns.
    pub max_ns: u64,
}

impl LatencyHistogram {
    /// Builds the histogram and summary stats from raw samples.
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        let mut buckets = vec![0u64; LATENCY_EDGES_MS.len() + 1];
        for &ns in &samples {
            let ms = ns / 1_000_000;
            let slot = LATENCY_EDGES_MS
                .iter()
                .position(|&edge| ms < edge)
                .unwrap_or(LATENCY_EDGES_MS.len());
            buckets[slot] += 1;
        }
        samples.sort_unstable();
        let pct = |p: f64| -> u64 {
            if samples.is_empty() {
                return 0;
            }
            let idx = ((samples.len() - 1) as f64 * p).round() as usize;
            samples[idx]
        };
        let mean = if samples.is_empty() {
            0
        } else {
            samples.iter().sum::<u64>() / samples.len() as u64
        };
        LatencyHistogram {
            buckets,
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
            mean_ns: mean,
            max_ns: samples.last().copied().unwrap_or(0),
        }
    }
}

/// PSNR distribution over approximate (frame-interpolated) reads.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PsnrHistogram {
    /// `buckets[0]` counts samples below [`PSNR_EDGES_DB`]`[0]`,
    /// `buckets[i]` those in `[edge[i-1], edge[i])`, the last slot those
    /// at or above the final edge.
    pub buckets: Vec<u64>,
    /// Mean PSNR over all interpolated frames, dB.
    pub mean_db: f64,
    /// Worst interpolated frame, dB.
    pub min_db: f64,
    /// Number of frame samples.
    pub samples: usize,
}

impl PsnrHistogram {
    /// Builds the histogram from per-frame PSNR samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut buckets = vec![0u64; PSNR_EDGES_DB.len() + 1];
        for &db in samples {
            let slot = PSNR_EDGES_DB
                .iter()
                .position(|&edge| db < edge)
                .unwrap_or(PSNR_EDGES_DB.len());
            buckets[slot] += 1;
        }
        // Empty runs report zeros (not ±inf) so the JSON stays plain.
        let mean = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        PsnrHistogram {
            buckets,
            mean_db: mean,
            min_db: if min.is_finite() { min } else { 0.0 },
            samples: samples.len(),
        }
    }
}

/// Measured vs analytical storage overhead per tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct OverheadCheck {
    /// `analysis::overhead` prediction for the hot code.
    pub expected_hot: f64,
    /// Measured physical/logical-capacity ratio of hot objects.
    pub measured_hot: f64,
    /// `analysis::overhead::appr_overhead` for the cold structure.
    pub expected_cold: f64,
    /// Measured ratio of cold (demoted) objects.
    pub measured_cold: f64,
    /// `analysis::writecost` single-block update cost on the hot tier
    /// (shard writes per one-block update, the paper's Table 3 metric).
    pub hot_single_write: f64,
    /// `analysis::writecost` single-block update cost on the cold tier —
    /// part of why demoted (rarely-updated) objects tolerate the cheaper
    /// structure.
    pub cold_single_write: f64,
}

/// Storage footprints sampled along the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TimelinePoint {
    /// Tick of the sample.
    pub tick: usize,
    /// Hot-tier physical bytes.
    pub hot_bytes: u64,
    /// Cold-tier physical bytes.
    pub cold_bytes: u64,
    /// Logical (pre-redundancy) bytes stored.
    pub logical_bytes: u64,
    /// Physical/logical overhead at this tick.
    pub overhead: f64,
}

/// Everything a tier-lifecycle run produces.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TierReport {
    /// Configuration echo.
    pub config: ConfigEcho,
    /// Events executed, by kind.
    pub events: EventCounts,
    /// Tier population and conversions.
    pub tiers: TierCounts,
    /// Read outcomes.
    pub reads: ReadCounts,
    /// I/O by category, cross-checked against the cluster's counters.
    pub io: IoBreakdown,
    /// Every conversion, in execution order.
    pub conversions: Vec<ConversionRecord>,
    /// Read-latency distribution.
    pub latency: LatencyHistogram,
    /// PSNR distribution of approximate reads.
    pub psnr: PsnrHistogram,
    /// Overhead cross-check against `apec-analysis`.
    pub overhead: OverheadCheck,
    /// Storage footprint over time.
    pub timeline: Vec<TimelinePoint>,
    /// Integrated storage costs and the all-hot counterfactual.
    pub costs: TierCosts,
}

impl TierReport {
    /// Canonical JSON rendering (deterministic field order).
    pub fn to_json(&self) -> String {
        // panic-ok: serde_json on a derive(Serialize) tree with string keys cannot fail
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// FNV-1a digest of the canonical JSON, as fixed-width hex.
    ///
    /// Two runs with the same seed and configuration must produce equal
    /// digests; the CI smoke lane runs the CLI twice and compares.
    pub fn digest(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in self.to_json().as_bytes() {
            h ^= u64::from(b); // raw-xor-ok: digest hashing, not shard data
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_histogram_buckets_and_percentiles() {
        let ms = |v: u64| v * 1_000_000;
        let h = LatencyHistogram::from_samples(vec![ms(1), ms(3), ms(3), ms(40), ms(2000)]);
        assert_eq!(h.buckets, vec![0, 1, 2, 0, 0, 1, 0, 0, 0, 0, 1]);
        assert_eq!(h.p50_ns, ms(3));
        assert_eq!(h.max_ns, ms(2000));
        let empty = LatencyHistogram::from_samples(vec![]);
        assert_eq!(empty.buckets.iter().sum::<u64>(), 0);
        assert_eq!(empty.p99_ns, 0);
    }

    #[test]
    fn psnr_histogram_buckets() {
        let h = PsnrHistogram::from_samples(&[18.0, 34.9, 35.0, 52.0]);
        assert_eq!(h.buckets, vec![1, 0, 0, 1, 1, 0, 1]);
        assert_eq!(h.samples, 4);
        assert!((h.min_db - 18.0).abs() < 1e-12);
        assert_eq!(PsnrHistogram::from_samples(&[]).min_db, 0.0);
    }
}
