//! Tier lifecycle engine: workload-driven hot→cold demotion,
//! approximate re-encoding, and long-horizon cost accounting.
//!
//! This crate is the simulation counterpart of the paper's Hadoop
//! testbed (§4): it drives the functional cluster
//! ([`apec_cluster::Cluster`]) with a seeded, Zipf-popular video workload
//! and manages each object's life across two tiers —
//!
//! - **Hot**: a conventional 3DFT code (RS, Cauchy RS or LRC) holding
//!   full-fidelity data for young, frequently-watched videos;
//! - **Cold**: the Approximate Code, entered by an in-place re-encode
//!   once a [`DemotionPolicy`] decides the video has cooled down.
//!
//! The pipeline per module:
//!
//! | module | role |
//! |---|---|
//! | [`workload`] | seeded Zipf + decay trace generator (ingest/read/fail/repair) |
//! | [`policy`] | demotion policies over per-object access stats |
//! | [`engine`] | the tier state machine executing traces on a cluster |
//! | [`cost`] | read-latency DAGs and byte-tick storage accounting |
//! | [`exposure`] | stripe-exposure classification (repair urgency) |
//! | [`report`] | the serialisable, digest-stable [`TierReport`] |
//!
//! Everything is deterministic: the same seed produces a byte-identical
//! [`TierReport`] JSON (asserted by `TierReport::digest` in CI), and all
//! randomness flows through `apec_ec::rng` labelled forks.
//!
//! ```
//! use apec_tier::{TierConfig, TierEngine, WorkloadConfig};
//!
//! let mut engine = TierEngine::new(TierConfig::demo(7)).unwrap();
//! let report = engine.run(&WorkloadConfig::small(7)).unwrap();
//! assert!(report.tiers.demotions > 0);
//! assert!(report.costs.savings_ratio() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod exposure;
pub mod policy;
pub mod report;
pub mod workload;

pub use cost::{simulate_object_read, TierCosts};
pub use exposure::{classify_object, classify_stripe, Exposure};
pub use engine::{
    ColdCodeSpec, HotCode, ReadOutcome, Tier, TierConfig, TierEngine, TierError, VideoProfile,
};
pub use policy::{AccessStats, DemotionPolicy};
pub use report::{IoBreakdown, IoTotals, OverheadCheck, TierReport, TimelinePoint};
pub use workload::{EventKind, Trace, TraceEvent, WorkloadConfig};

// Re-exported so downstream users (CLI, benches) can configure timing
// without depending on `apec-cluster` directly.
pub use apec_cluster::ClusterConfig;
pub use apec_recovery::Interpolator;
