//! Stripe-exposure classification for repair prioritization.
//!
//! The Facebook warehouse study (Rashmi et al., PAPERS.md 1309.0186)
//! observes that repair traffic dominates real clusters and argues for
//! scheduling repairs by *exposure* — how close a stripe is to data
//! loss — rather than by arrival order. This module turns an observed
//! erasure pattern into that ordering, reusing the code's own
//! decodability oracle ([`ApproxCode::can_recover_all`]) so the
//! classification is exact for every family the framework supports, not
//! a parity-count heuristic.
//!
//! The maintenance daemon's repair queue (`apec-maint`) sorts on this:
//! `Critical` (already losing data) drains first, then `ToleranceOne`
//! (one more failure loses data), then `Degraded`.

use apec_ec::ErasureCode;
use approx_code::ApproxCode;

/// How close an erasure pattern is to data loss, most urgent last so
/// `Ord` ranks urgency directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Exposure {
    /// No shards lost.
    Healthy,
    /// Shards lost, but at least two more arbitrary failures are
    /// survivable.
    Degraded,
    /// One more arbitrary shard failure makes the stripe unrecoverable
    /// (tolerance-1): repair these first among the recoverable.
    ToleranceOne,
    /// The pattern is already beyond exact recovery — only the
    /// approximate tier can answer reads.
    Critical,
}

impl Exposure {
    /// Stable lowercase name (JSON reports, bench rows).
    pub fn name(self) -> &'static str {
        match self {
            Exposure::Healthy => "healthy",
            Exposure::Degraded => "degraded",
            Exposure::ToleranceOne => "tolerance1",
            Exposure::Critical => "critical",
        }
    }
}

/// Classifies one stripe's erasure pattern.
///
/// `failed` lists the node indices whose shard is missing or corrupt.
/// The check is exact: a pattern is `ToleranceOne` iff some single
/// additional failure produces a pattern the code cannot fully recover.
pub fn classify_stripe(code: &ApproxCode, failed: &[usize]) -> Exposure {
    if failed.is_empty() {
        return Exposure::Healthy;
    }
    if !code.can_recover_all(failed) {
        return Exposure::Critical;
    }
    let total = code.total_nodes();
    let mut probe: Vec<usize> = Vec::with_capacity(failed.len() + 1);
    for extra in 0..total {
        if failed.contains(&extra) {
            continue;
        }
        probe.clear();
        probe.extend_from_slice(failed);
        probe.push(extra);
        if !code.can_recover_all(&probe) {
            return Exposure::ToleranceOne;
        }
    }
    Exposure::Degraded
}

/// The worst exposure across an object's stripes — the priority the
/// whole object repairs at.
pub fn classify_object<'a, I>(code: &ApproxCode, stripes: I) -> Exposure
where
    I: IntoIterator<Item = &'a [usize]>,
{
    stripes
        .into_iter()
        .map(|failed| classify_stripe(code, failed))
        .max()
        .unwrap_or(Exposure::Healthy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_code::{ApprParams, ApproxCode, BaseFamily, Structure};

    fn demo_code() -> ApproxCode {
        let params =
            ApprParams::new(4, 1, 2, 3, Structure::Uneven, BaseFamily::Rs).unwrap();
        ApproxCode::new(params, BaseFamily::Rs).unwrap()
    }

    #[test]
    fn ordering_ranks_urgency() {
        assert!(Exposure::Critical > Exposure::ToleranceOne);
        assert!(Exposure::ToleranceOne > Exposure::Degraded);
        assert!(Exposure::Degraded > Exposure::Healthy);
        assert_eq!(Exposure::ToleranceOne.name(), "tolerance1");
    }

    #[test]
    fn classification_matches_the_code_oracle() {
        let code = demo_code();
        assert_eq!(classify_stripe(&code, &[]), Exposure::Healthy);
        let total = code.total_nodes();
        // Exhaustive single failures: never Healthy, never Critical
        // (every single loss is recoverable for this code), and the
        // tolerance-1 call agrees with brute force over pairs.
        for a in 0..total {
            let got = classify_stripe(&code, &[a]);
            assert_ne!(got, Exposure::Healthy);
            assert_ne!(got, Exposure::Critical, "single loss of {a} recoverable");
            let brute_t1 = (0..total)
                .filter(|&b| b != a)
                .any(|b| !code.can_recover_all(&[a, b]));
            let want = if brute_t1 {
                Exposure::ToleranceOne
            } else {
                Exposure::Degraded
            };
            assert_eq!(got, want, "node {a}");
        }
        // An unrecoverable pattern is Critical: two data nodes of the
        // same local stripe plus its local parity exceeds r=1 locally
        // and g=2 globally can't absorb three from one stripe.
        let p = code.params();
        let bad = [p.data_node(1, 0), p.data_node(1, 1), p.data_node(1, 2)];
        if !code.can_recover_all(&bad) {
            assert_eq!(classify_stripe(&code, &bad), Exposure::Critical);
        }
    }

    #[test]
    fn object_priority_is_the_worst_stripe() {
        let code = demo_code();
        let healthy: &[usize] = &[];
        let one: &[usize] = &[0];
        assert_eq!(
            classify_object(&code, [healthy, healthy]),
            Exposure::Healthy
        );
        let worst = classify_stripe(&code, one);
        assert_eq!(classify_object(&code, [healthy, one]), worst);
    }
}
