//! The hot-read cache: a bounded, sharded LRU over whole decoded
//! objects, keyed by object id.
//!
//! Sitting in front of [`apec_store::Store`], the cache answers repeat
//! reads of popular objects without touching shard files at all — which
//! is what lets the scrubber and the repair queue spend disk bandwidth
//! without evicting serving throughput. Only *clean* reads are cached
//! (exact, non-degraded, zero integrity failures), so a hit is always
//! byte-exact and can be served with all reply flags clear.
//!
//! Sharding: the id hashes (FNV-1a) to one of `shards` independent
//! LRU maps, each behind its own mutex, so concurrent readers on
//! different objects rarely contend. Recency is a per-shard monotonic
//! stamp; eviction scans the (small, bounded) shard map for the minimum
//! stamp — O(n) per eviction, deliberately simple and allocation-light.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Hot-cache sizing.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Independent LRU shards (lock granularity). Clamped to >= 1.
    pub shards: usize,
    /// Total byte budget across all shards (object payload bytes).
    /// Zero disables insertion entirely.
    pub max_bytes: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 8,
            max_bytes: 64 << 20,
        }
    }
}

/// One cached object: both decoded streams, shared so a hit is a
/// refcount bump, not a copy.
#[derive(Debug, Clone)]
pub struct CachedObject {
    /// The important byte stream (byte-exact by construction).
    pub important: Arc<Vec<u8>>,
    /// The unimportant byte stream (byte-exact by construction).
    pub unimportant: Arc<Vec<u8>>,
}

struct Entry {
    value: CachedObject,
    stamp: u64,
    bytes: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<String, Entry>,
    bytes: u64,
    tick: u64,
}

/// Monotonic hit/miss/eviction counters, shared with serve metrics.
///
/// Plain monotonic counters with no cross-variable invariants, so
/// `Relaxed` is sufficient (same argument as `serve::metrics`; this
/// file is whitelisted in the lint's `RELAXED_ALLOWED`).
#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the store.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Successful inserts.
    pub insertions: u64,
    /// Objects currently resident.
    pub objects: u64,
    /// Payload bytes currently resident.
    pub bytes: u64,
}

/// Bounded, sharded LRU cache of decoded objects.
pub struct HotCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_budget: u64,
    counters: Counters,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn fnv1a(id: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in id.as_bytes() {
        h ^= b as u64; // raw-xor-ok: FNV-1a hash mixing, not shard bytes
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl HotCache {
    /// Creates an empty cache with `config` sizing.
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        HotCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_budget: config.max_bytes / shards as u64,
            counters: Counters::default(),
        }
    }

    /// The shard `id` hashes to. `None` only if `shards` were empty,
    /// which `new` precludes; callers degrade to a no-op cache then.
    fn shard(&self, id: &str) -> Option<&Mutex<Shard>> {
        let idx = (fnv1a(id) % self.shards.len().max(1) as u64) as usize;
        self.shards.get(idx)
    }

    /// Looks `id` up, bumping its recency. Records a hit or a miss.
    pub fn get(&self, id: &str) -> Option<CachedObject> {
        let mut shard = lock(self.shard(id)?);
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(id) {
            Some(entry) => {
                entry.stamp = tick;
                let value = entry.value.clone();
                drop(shard);
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(shard);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a clean read's streams, evicting least-recently-used
    /// entries until the shard fits its budget. Objects larger than one
    /// shard's whole budget are not cached at all.
    pub fn insert(&self, id: &str, important: Vec<u8>, unimportant: Vec<u8>) {
        let bytes = (important.len() + unimportant.len()) as u64;
        if bytes > self.per_shard_budget {
            return;
        }
        let value = CachedObject {
            important: Arc::new(important),
            unimportant: Arc::new(unimportant),
        };
        let mut evicted = 0u64;
        {
            let Some(shard) = self.shard(id) else {
                return;
            };
            let mut shard = lock(shard);
            shard.tick += 1;
            let tick = shard.tick;
            if let Some(old) = shard.map.remove(id) {
                shard.bytes = shard.bytes.saturating_sub(old.bytes);
            }
            while shard.bytes + bytes > self.per_shard_budget {
                let victim = shard
                    .map
                    .iter()
                    .min_by_key(|(vid, e)| (e.stamp, (*vid).clone()))
                    .map(|(vid, _)| vid.clone());
                match victim {
                    Some(vid) => {
                        if let Some(old) = shard.map.remove(&vid) {
                            shard.bytes = shard.bytes.saturating_sub(old.bytes);
                            evicted += 1;
                        }
                    }
                    None => break,
                }
            }
            shard.bytes += bytes;
            shard.map.insert(
                id.to_string(),
                Entry {
                    value,
                    stamp: tick,
                    bytes,
                },
            );
        }
        self.counters.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.counters.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Drops `id` if resident (object repaired, rewritten or retired).
    pub fn invalidate(&self, id: &str) {
        let Some(shard) = self.shard(id) else {
            return;
        };
        let mut shard = lock(shard);
        if let Some(old) = shard.map.remove(id) {
            shard.bytes = shard.bytes.saturating_sub(old.bytes);
        }
    }

    /// Drops everything (topology changed under the cache).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = lock(shard);
            shard.map.clear();
            shard.bytes = 0;
        }
    }

    /// Point-in-time statistics.
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut objects = 0u64;
        let mut bytes = 0u64;
        for shard in &self.shards {
            let shard = lock(shard);
            objects += shard.map.len() as u64;
            bytes += shard.bytes;
        }
        CacheSnapshot {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            insertions: self.counters.insertions.load(Ordering::Relaxed),
            objects,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(max_bytes: u64) -> HotCache {
        HotCache::new(CacheConfig {
            shards: 1, // single shard: LRU order is directly observable
            max_bytes,
        })
    }

    #[test]
    fn hit_miss_and_counters() {
        let c = cache(1024);
        assert!(c.get("a").is_none());
        c.insert("a", vec![1; 10], vec![2; 20]);
        let got = c.get("a").expect("hit");
        assert_eq!(*got.important, vec![1; 10]);
        assert_eq!(*got.unimportant, vec![2; 20]);
        let snap = c.snapshot();
        assert_eq!((snap.hits, snap.misses, snap.insertions), (1, 1, 1));
        assert_eq!((snap.objects, snap.bytes), (1, 30));
    }

    #[test]
    fn lru_eviction_under_byte_budget() {
        let c = cache(100);
        c.insert("a", vec![0; 40], vec![]);
        c.insert("b", vec![0; 40], vec![]);
        assert!(c.get("a").is_some(), "touch a: b becomes LRU");
        c.insert("c", vec![0; 40], vec![]); // must evict b
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none(), "b was evicted");
        assert!(c.get("c").is_some());
        let snap = c.snapshot();
        assert_eq!(snap.evictions, 1);
        assert!(snap.bytes <= 100);
        // An object over the whole budget is refused outright.
        c.insert("huge", vec![0; 200], vec![]);
        assert!(c.get("huge").is_none());
    }

    #[test]
    fn invalidate_and_clear() {
        let c = cache(1024);
        c.insert("a", vec![1; 8], vec![]);
        c.insert("b", vec![1; 8], vec![]);
        c.invalidate("a");
        assert!(c.get("a").is_none());
        assert!(c.get("b").is_some());
        c.clear();
        assert!(c.get("b").is_none());
        assert_eq!(c.snapshot().bytes, 0);
    }

    #[test]
    fn reinsert_replaces_without_double_counting_bytes() {
        let c = cache(1024);
        c.insert("a", vec![1; 100], vec![]);
        c.insert("a", vec![2; 50], vec![]);
        let snap = c.snapshot();
        assert_eq!((snap.objects, snap.bytes), (1, 50));
        assert_eq!(*c.get("a").expect("hit").important, vec![2; 50]);
    }

    #[test]
    fn sharded_cache_is_thread_safe() {
        let c = Arc::new(HotCache::new(CacheConfig {
            shards: 4,
            max_bytes: 1 << 20,
        }));
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let id = format!("obj-{}", i % 16);
                    c.insert(&id, vec![t; 64], vec![i as u8; 64]);
                    if let Some(hit) = c.get(&id) {
                        assert_eq!(hit.important.len(), 64);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        assert!(c.snapshot().bytes <= 1 << 20);
    }
}
