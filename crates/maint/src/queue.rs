//! The exposure-prioritized repair queue.
//!
//! Findings from the scrubber become [`RepairTask`]s ordered by how
//! close the object's worst stripe is to data loss
//! ([`apec_tier::exposure`]): `Critical` objects (already past exact
//! tolerance) drain first, then `ToleranceOne` (one more failure loses
//! data), then merely `Degraded` ones — the scheduling discipline the
//! Facebook warehouse study motivates. Ties break by failed-shard count
//! (more exposure first) and then object id, so the drain order is a
//! pure function of the queue's contents: no arrival-order dependence,
//! no clock, no randomness.
//!
//! The queue itself is single-threaded state owned by the daemon loop;
//! per-tick repair caps and degraded-read preemption are applied by the
//! caller when draining.

use apec_store::ObjectScan;
use apec_tier::exposure::{classify_object, Exposure};
use approx_code::ApproxCode;
use std::collections::{BinaryHeap, HashSet};

/// One queued object heal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairTask {
    /// Object to heal.
    pub id: String,
    /// Worst stripe exposure at enqueue time.
    pub exposure: Exposure,
    /// Corrupt shards observed by the scan that queued it.
    pub corrupt: usize,
    /// Missing shards observed by the scan that queued it.
    pub missing: usize,
}

impl RepairTask {
    /// Builds a task from a scan, or `None` when the object is clean.
    pub fn from_scan(code: &ApproxCode, scan: &ObjectScan) -> Option<RepairTask> {
        if scan.clean() {
            return None;
        }
        let failed: Vec<Vec<usize>> = scan.stripes.iter().map(|s| s.failed_nodes()).collect();
        let exposure = classify_object(code, failed.iter().map(|f| f.as_slice()));
        Some(RepairTask {
            id: scan.id.clone(),
            exposure,
            corrupt: scan.corrupt,
            missing: scan.missing,
        })
    }

    /// Failed shards total.
    fn failed(&self) -> usize {
        self.corrupt + self.missing
    }
}

/// Heap entry; `Ord` encodes the drain priority (max-heap: greatest
/// drains first).
#[derive(PartialEq, Eq)]
struct QueueEntry(RepairTask);

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .exposure
            .cmp(&other.0.exposure)
            .then(self.0.failed().cmp(&other.0.failed()))
            // Smaller ids first among equals: reverse the id ordering
            // because BinaryHeap pops the maximum.
            .then_with(|| other.0.id.cmp(&self.0.id))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic priority queue of object heals, deduplicated by id.
#[derive(Default)]
pub struct RepairQueue {
    heap: BinaryHeap<QueueEntry>,
    queued: HashSet<String>,
}

impl RepairQueue {
    /// An empty queue.
    pub fn new() -> Self {
        RepairQueue::default()
    }

    /// Enqueues a task unless its object is already queued. Returns
    /// whether the task was accepted.
    pub fn push(&mut self, task: RepairTask) -> bool {
        if !self.queued.insert(task.id.clone()) {
            return false;
        }
        self.heap.push(QueueEntry(task));
        true
    }

    /// Removes and returns the most urgent task.
    pub fn pop(&mut self) -> Option<RepairTask> {
        let QueueEntry(task) = self.heap.pop()?;
        self.queued.remove(&task.id);
        Some(task)
    }

    /// The most urgent task without removing it.
    pub fn peek(&self) -> Option<&RepairTask> {
        self.heap.peek().map(|QueueEntry(t)| t)
    }

    /// Queued tasks.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: &str, exposure: Exposure, corrupt: usize, missing: usize) -> RepairTask {
        RepairTask {
            id: id.to_string(),
            exposure,
            corrupt,
            missing,
        }
    }

    #[test]
    fn drains_by_exposure_then_failed_count_then_id() {
        let mut q = RepairQueue::new();
        q.push(task("d-degraded", Exposure::Degraded, 1, 0));
        q.push(task("b-tol1-small", Exposure::ToleranceOne, 1, 0));
        q.push(task("c-critical", Exposure::Critical, 3, 1));
        q.push(task("a-tol1-big", Exposure::ToleranceOne, 2, 1));
        q.push(task("e-tol1-small", Exposure::ToleranceOne, 1, 0));
        let order: Vec<String> = std::iter::from_fn(|| q.pop()).map(|t| t.id).collect();
        assert_eq!(
            order,
            vec![
                "c-critical",
                "a-tol1-big",
                "b-tol1-small",
                "e-tol1-small",
                "d-degraded"
            ]
        );
    }

    #[test]
    fn order_is_insertion_independent() {
        let tasks = [
            task("x", Exposure::Degraded, 2, 0),
            task("y", Exposure::Critical, 1, 1),
            task("z", Exposure::ToleranceOne, 1, 0),
            task("w", Exposure::ToleranceOne, 0, 3),
        ];
        let drain = |order: &[usize]| {
            let mut q = RepairQueue::new();
            for &i in order {
                q.push(tasks[i].clone());
            }
            std::iter::from_fn(move || q.pop())
                .map(|t| t.id)
                .collect::<Vec<_>>()
        };
        let a = drain(&[0, 1, 2, 3]);
        let b = drain(&[3, 2, 1, 0]);
        let c = drain(&[2, 0, 3, 1]);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, vec!["y", "w", "z", "x"]);
    }

    #[test]
    fn duplicate_objects_are_rejected_until_popped() {
        let mut q = RepairQueue::new();
        assert!(q.push(task("a", Exposure::Degraded, 1, 0)));
        assert!(!q.push(task("a", Exposure::Critical, 9, 9)), "dedup by id");
        assert_eq!(q.len(), 1);
        let popped = q.pop().expect("one task");
        assert_eq!(popped.exposure, Exposure::Degraded);
        assert!(q.push(task("a", Exposure::Critical, 1, 0)), "requeue after pop");
        assert!(q.pop().is_some());
        assert!(q.is_empty());
    }
}
