//! Shared maintenance counters: what the daemon publishes and the
//! `scrub-status` protocol verb reports.
//!
//! All counters are monotonic `u64`s (plus one queue-depth gauge) with
//! no cross-variable invariants, updated with `Relaxed` ordering — the
//! same discipline as `serve::metrics`, and this file is whitelisted in
//! the lint's `RELAXED_ALLOWED` for exactly that reason. Latencies are
//! kept as (sum, count) pairs in microseconds so readers can compute
//! exact means; the JSON stays all-integer (the store's JSON subset).
//!
//! Injection tracking: [`Shared::note_injections`] records each seeded
//! bit-rot hit with its wall-clock instant; each completed object scan
//! is reconciled against the ledger ([`Shared::reconcile_scan`]) —
//! corruption still present at an injected location counts as
//! *detected* (yielding detection latency), a healthy shard there means
//! something healed it out of band (a foreground `repair-all`, or a
//! node kill followed by rebuild) and counts as detected *and* healed —
//! and a maintenance repair marks the object's detected hits *healed*
//! (yielding time-to-heal). Every injected hit therefore converges to
//! healed no matter which path erased it, which is how the load harness
//! proves 100% detection end-to-end without racing foreground repairs.

use apec_store::json::{obj, Value};
use apec_store::{BitrotHit, ObjectScan, ShardHealth};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// One injected corruption being tracked to detection and heal.
#[derive(Debug)]
pub(crate) struct PendingInjection {
    pub id: String,
    pub stripe: usize,
    pub node: usize,
    pub at: Instant,
    pub detected: bool,
    pub healed: bool,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The daemon's shared counter block.
pub struct Shared {
    started: Instant,
    // Scrub side.
    pub(crate) scrub_passes: AtomicU64,
    pub(crate) objects_scanned: AtomicU64,
    pub(crate) bytes_scanned: AtomicU64,
    pub(crate) scrub_busy_us: AtomicU64,
    pub(crate) corrupt_detected: AtomicU64,
    pub(crate) missing_detected: AtomicU64,
    // Repair side.
    pub(crate) queue_depth: AtomicU64,
    pub(crate) repairs_completed: AtomicU64,
    pub(crate) repairs_critical: AtomicU64,
    pub(crate) repairs_tolerance1: AtomicU64,
    pub(crate) repairs_degraded: AtomicU64,
    pub(crate) shards_rebuilt: AtomicU64,
    pub(crate) repair_errors: AtomicU64,
    pub(crate) deferrals: AtomicU64,
    pub(crate) maint_errors: AtomicU64,
    // Injection bookkeeping.
    pub(crate) injected: AtomicU64,
    pub(crate) injected_detected: AtomicU64,
    pub(crate) injected_healed: AtomicU64,
    pub(crate) detection_latency_us_sum: AtomicU64,
    pub(crate) heal_latency_us_sum: AtomicU64,
    pub(crate) pending: Mutex<Vec<PendingInjection>>,
}

impl Default for Shared {
    fn default() -> Self {
        Shared {
            started: Instant::now(),
            scrub_passes: AtomicU64::new(0),
            objects_scanned: AtomicU64::new(0),
            bytes_scanned: AtomicU64::new(0),
            scrub_busy_us: AtomicU64::new(0),
            corrupt_detected: AtomicU64::new(0),
            missing_detected: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            repairs_completed: AtomicU64::new(0),
            repairs_critical: AtomicU64::new(0),
            repairs_tolerance1: AtomicU64::new(0),
            repairs_degraded: AtomicU64::new(0),
            shards_rebuilt: AtomicU64::new(0),
            repair_errors: AtomicU64::new(0),
            deferrals: AtomicU64::new(0),
            maint_errors: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            injected_detected: AtomicU64::new(0),
            injected_healed: AtomicU64::new(0),
            detection_latency_us_sum: AtomicU64::new(0),
            heal_latency_us_sum: AtomicU64::new(0),
            pending: Mutex::new(Vec::new()),
        }
    }
}

impl Shared {
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    pub(crate) fn set(counter: &AtomicU64, n: u64) {
        counter.store(n, Ordering::Relaxed);
    }

    /// Registers seeded bit-rot hits for detection/heal tracking.
    pub fn note_injections(&self, hits: &[BitrotHit]) {
        let now = Instant::now();
        let mut pending = lock(&self.pending);
        for hit in hits {
            pending.push(PendingInjection {
                id: hit.id.clone(),
                stripe: hit.stripe,
                node: hit.node,
                at: now,
                detected: false,
                healed: false,
            });
        }
        Self::add(&self.injected, hits.len() as u64);
    }

    /// Reconciles one completed object scan against the pending ledger.
    /// A still-corrupt (or missing) shard at an injected location is a
    /// detection; a healthy shard there means the hit was healed out of
    /// band, so it is marked both detected and healed — the ledger
    /// always converges. `scanned_at` is when the scan started: hits
    /// injected after it are skipped (the scan predates them, so its
    /// healthy verdict says nothing about the flip).
    pub(crate) fn reconcile_scan(&self, scan: &ObjectScan, scanned_at: Instant) {
        let now = Instant::now();
        let mut pending = lock(&self.pending);
        for p in pending.iter_mut() {
            if p.healed || p.at > scanned_at || p.id != scan.id {
                continue;
            }
            let health = scan
                .stripes
                .iter()
                .find(|s| s.stripe == p.stripe)
                .and_then(|s| s.shards.get(p.node));
            let us = now.duration_since(p.at).as_micros().min(u64::MAX as u128) as u64;
            let Some(&health) = health else { continue };
            if !p.detected {
                p.detected = true;
                Self::add(&self.detection_latency_us_sum, us);
                Self::add(&self.injected_detected, 1);
            }
            if health == ShardHealth::Ok {
                p.healed = true;
                Self::add(&self.heal_latency_us_sum, us);
                Self::add(&self.injected_healed, 1);
            }
        }
    }

    /// Marks every *detected* pending injection on `id` as healed after
    /// a successful repair, accumulating injection→heal latency.
    pub(crate) fn mark_healed(&self, id: &str) {
        let now = Instant::now();
        let mut pending = lock(&self.pending);
        for p in pending.iter_mut() {
            if p.detected && !p.healed && p.id == id {
                p.healed = true;
                let us = now.duration_since(p.at).as_micros().min(u64::MAX as u128) as u64;
                Self::add(&self.heal_latency_us_sum, us);
                Self::add(&self.injected_healed, 1);
            }
        }
    }

    /// Point-in-time snapshot.
    pub fn status(&self) -> MaintStatus {
        MaintStatus {
            uptime_ms: self.started.elapsed().as_millis().min(u64::MAX as u128) as u64,
            scrub_passes: Self::get(&self.scrub_passes),
            objects_scanned: Self::get(&self.objects_scanned),
            bytes_scanned: Self::get(&self.bytes_scanned),
            scrub_busy_us: Self::get(&self.scrub_busy_us),
            corrupt_detected: Self::get(&self.corrupt_detected),
            missing_detected: Self::get(&self.missing_detected),
            queue_depth: Self::get(&self.queue_depth),
            repairs_completed: Self::get(&self.repairs_completed),
            repairs_critical: Self::get(&self.repairs_critical),
            repairs_tolerance1: Self::get(&self.repairs_tolerance1),
            repairs_degraded: Self::get(&self.repairs_degraded),
            shards_rebuilt: Self::get(&self.shards_rebuilt),
            repair_errors: Self::get(&self.repair_errors),
            deferrals: Self::get(&self.deferrals),
            maint_errors: Self::get(&self.maint_errors),
            injected: Self::get(&self.injected),
            injected_detected: Self::get(&self.injected_detected),
            injected_healed: Self::get(&self.injected_healed),
            detection_latency_us_sum: Self::get(&self.detection_latency_us_sum),
            heal_latency_us_sum: Self::get(&self.heal_latency_us_sum),
        }
    }
}

/// A point-in-time snapshot of the maintenance daemon, as served by the
/// `scrub-status` protocol verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintStatus {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Complete scrub passes over the store.
    pub scrub_passes: u64,
    /// Objects scanned (across all passes).
    pub objects_scanned: u64,
    /// Bytes read and checksummed by the scrubber.
    pub bytes_scanned: u64,
    /// Microseconds the scrubber spent scanning (throughput divisor).
    pub scrub_busy_us: u64,
    /// Corrupt shards surfaced by scans.
    pub corrupt_detected: u64,
    /// Missing shards surfaced by scans.
    pub missing_detected: u64,
    /// Repair tasks currently queued (gauge).
    pub queue_depth: u64,
    /// Objects healed.
    pub repairs_completed: u64,
    /// Heals drained at `Critical` exposure.
    pub repairs_critical: u64,
    /// Heals drained at `ToleranceOne` exposure.
    pub repairs_tolerance1: u64,
    /// Heals drained at `Degraded` exposure.
    pub repairs_degraded: u64,
    /// Shard files rewritten by heals.
    pub shards_rebuilt: u64,
    /// Heals that failed (left queued for a later pass).
    pub repair_errors: u64,
    /// Repair ticks deferred to in-flight foreground reads.
    pub deferrals: u64,
    /// Maintenance ticks that errored (daemon keeps running).
    pub maint_errors: u64,
    /// Seeded bit-rot hits registered for tracking.
    pub injected: u64,
    /// Registered hits surfaced by a scrub scan.
    pub injected_detected: u64,
    /// Registered hits healed by a repair.
    pub injected_healed: u64,
    /// Sum of injection→detection latencies, microseconds.
    pub detection_latency_us_sum: u64,
    /// Sum of injection→heal latencies, microseconds.
    pub heal_latency_us_sum: u64,
}

impl MaintStatus {
    /// Mean injection→detection latency in microseconds (0 if none).
    pub fn mean_detection_latency_us(&self) -> u64 {
        if self.injected_detected == 0 {
            0
        } else {
            self.detection_latency_us_sum / self.injected_detected
        }
    }

    /// Mean injection→heal latency in microseconds (0 if none).
    pub fn mean_heal_latency_us(&self) -> u64 {
        if self.injected_healed == 0 {
            0
        } else {
            self.heal_latency_us_sum / self.injected_healed
        }
    }

    /// Scrub throughput in bytes per second of scrub-busy time.
    pub fn scrub_bytes_per_sec(&self) -> u64 {
        if self.scrub_busy_us == 0 {
            0
        } else {
            ((self.bytes_scanned as u128).saturating_mul(1_000_000) / self.scrub_busy_us as u128)
                .min(u64::MAX as u128) as u64
        }
    }

    /// Serializes to the all-integer JSON document the `scrub-status`
    /// verb returns.
    pub fn to_json(&self) -> String {
        obj(vec![
            ("uptime_ms", Value::Num(self.uptime_ms)),
            ("scrub_passes", Value::Num(self.scrub_passes)),
            ("objects_scanned", Value::Num(self.objects_scanned)),
            ("bytes_scanned", Value::Num(self.bytes_scanned)),
            ("scrub_busy_us", Value::Num(self.scrub_busy_us)),
            ("corrupt_detected", Value::Num(self.corrupt_detected)),
            ("missing_detected", Value::Num(self.missing_detected)),
            ("queue_depth", Value::Num(self.queue_depth)),
            ("repairs_completed", Value::Num(self.repairs_completed)),
            ("repairs_critical", Value::Num(self.repairs_critical)),
            ("repairs_tolerance1", Value::Num(self.repairs_tolerance1)),
            ("repairs_degraded", Value::Num(self.repairs_degraded)),
            ("shards_rebuilt", Value::Num(self.shards_rebuilt)),
            ("repair_errors", Value::Num(self.repair_errors)),
            ("deferrals", Value::Num(self.deferrals)),
            ("maint_errors", Value::Num(self.maint_errors)),
            ("injected", Value::Num(self.injected)),
            ("injected_detected", Value::Num(self.injected_detected)),
            ("injected_healed", Value::Num(self.injected_healed)),
            (
                "detection_latency_us_sum",
                Value::Num(self.detection_latency_us_sum),
            ),
            ("heal_latency_us_sum", Value::Num(self.heal_latency_us_sum)),
        ])
        .to_string()
    }

    /// Parses a `scrub-status` JSON document (the harness's poll path).
    pub fn from_json(text: &str) -> Result<MaintStatus, String> {
        let v = apec_store::json::parse(text)?;
        let num = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_num)
                .ok_or_else(|| format!("scrub-status: missing numeric '{key}'"))
        };
        Ok(MaintStatus {
            uptime_ms: num("uptime_ms")?,
            scrub_passes: num("scrub_passes")?,
            objects_scanned: num("objects_scanned")?,
            bytes_scanned: num("bytes_scanned")?,
            scrub_busy_us: num("scrub_busy_us")?,
            corrupt_detected: num("corrupt_detected")?,
            missing_detected: num("missing_detected")?,
            queue_depth: num("queue_depth")?,
            repairs_completed: num("repairs_completed")?,
            repairs_critical: num("repairs_critical")?,
            repairs_tolerance1: num("repairs_tolerance1")?,
            repairs_degraded: num("repairs_degraded")?,
            shards_rebuilt: num("shards_rebuilt")?,
            repair_errors: num("repair_errors")?,
            deferrals: num("deferrals")?,
            maint_errors: num("maint_errors")?,
            injected: num("injected")?,
            injected_detected: num("injected_detected")?,
            injected_healed: num("injected_healed")?,
            detection_latency_us_sum: num("detection_latency_us_sum")?,
            heal_latency_us_sum: num("heal_latency_us_sum")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_json_round_trips() {
        let shared = Shared::default();
        Shared::add(&shared.bytes_scanned, 12345);
        Shared::add(&shared.corrupt_detected, 3);
        Shared::set(&shared.queue_depth, 2);
        let status = shared.status();
        let parsed = MaintStatus::from_json(&status.to_json()).expect("round trip");
        assert_eq!(parsed, status);
        assert_eq!(parsed.bytes_scanned, 12345);
        assert_eq!(parsed.queue_depth, 2);
        assert!(MaintStatus::from_json("{}").is_err());
    }

    fn scan_with(id: &str, stripe: usize, nodes: usize, unhealthy: &[(usize, ShardHealth)]) -> ObjectScan {
        let mut shards = vec![ShardHealth::Ok; nodes];
        for &(n, h) in unhealthy {
            shards[n] = h;
        }
        ObjectScan {
            id: id.to_string(),
            stripes: vec![apec_store::StripeScan { stripe, shards }],
            bytes_scanned: 0,
            corrupt: unhealthy.len(),
            missing: 0,
        }
    }

    #[test]
    fn injection_lifecycle_yields_latencies() {
        let shared = Shared::default();
        let hit = BitrotHit {
            id: "obj".into(),
            stripe: 1,
            node: 4,
            byte: 17,
            bit: 3,
        };
        shared.note_injections(&[hit]);
        assert_eq!(shared.status().injected, 1);
        let scanned_at = Instant::now();
        // Wrong object / wrong stripe: the ledger is untouched.
        shared.reconcile_scan(&scan_with("other", 1, 8, &[]), scanned_at);
        shared.reconcile_scan(&scan_with("obj", 0, 8, &[]), scanned_at);
        assert_eq!(shared.status().injected_detected, 0);
        // Corruption still present at the injected location: detected.
        let corrupt = scan_with("obj", 1, 8, &[(4, ShardHealth::Corrupt)]);
        shared.reconcile_scan(&corrupt, scanned_at);
        shared.reconcile_scan(&corrupt, scanned_at); // idempotent
        let st = shared.status();
        assert_eq!((st.injected_detected, st.injected_healed), (1, 0));
        // Heal only counts detected hits, once.
        shared.mark_healed("obj");
        shared.mark_healed("obj");
        let st = shared.status();
        assert_eq!(st.injected_healed, 1);
        assert!(st.heal_latency_us_sum >= st.detection_latency_us_sum);
        assert_eq!(st.mean_heal_latency_us(), st.heal_latency_us_sum);
    }

    #[test]
    fn out_of_band_heals_reconcile_to_healed() {
        let shared = Shared::default();
        let hit = |node| BitrotHit {
            id: "obj".into(),
            stripe: 0,
            node,
            byte: 9,
            bit: 1,
        };
        let stale_at = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        shared.note_injections(&[hit(2), hit(5)]);
        // A scan started *before* the injections says nothing: its
        // healthy verdict predates the flips.
        shared.reconcile_scan(&scan_with("obj", 0, 8, &[]), stale_at);
        assert_eq!(shared.status().injected_healed, 0);
        // A fresh healthy scan means a foreground repair beat the
        // scrubber to it: both hits converge to detected + healed.
        shared.reconcile_scan(&scan_with("obj", 0, 8, &[]), Instant::now());
        let st = shared.status();
        assert_eq!((st.injected_detected, st.injected_healed), (2, 2));
    }

    #[test]
    fn derived_rates_handle_zero_divisors() {
        let st = MaintStatus::default();
        assert_eq!(st.mean_detection_latency_us(), 0);
        assert_eq!(st.mean_heal_latency_us(), 0);
        assert_eq!(st.scrub_bytes_per_sec(), 0);
        let st = MaintStatus {
            bytes_scanned: 10_000_000,
            scrub_busy_us: 500_000,
            ..MaintStatus::default()
        };
        assert_eq!(st.scrub_bytes_per_sec(), 20_000_000);
    }
}
