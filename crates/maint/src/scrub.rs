//! The low-priority background scrubber: a rate-budgeted, seeded walk
//! of the whole store through [`Store::scan_object`].
//!
//! Latent corruption in cold erasure-coded data is only dangerous when
//! it stays latent — a bit-rotted shard discovered *during* a node
//! failure is a tolerance the stripe no longer has. The scrubber's job
//! is to surface that corruption early, at a bounded I/O cost: each
//! [`Scrubber::tick`] scans objects until the tick's byte budget is
//! spent, then yields, so a full pass spreads over many ticks while
//! foreground reads keep their bandwidth.
//!
//! Determinism: the scan order of each pass is a seeded permutation of
//! the sorted object ids — every id's rank is
//! `rng::derive(seed, "scrub-pass-{pass}-{id}")`, a pure function — so
//! the same seed over the same store contents produces an identical
//! scan order and identical findings, tick by tick. Different passes
//! get different permutations (the pass index is in the label), which
//! keeps one slow region of the keyspace from always scanning last.

use apec_store::{ObjectScan, ShardHealth, Store, StoreError};

/// One unhealthy shard surfaced by a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubFinding {
    /// Object the shard belongs to.
    pub id: String,
    /// Stripe index.
    pub stripe: usize,
    /// Node index.
    pub node: usize,
    /// `Corrupt` (bit-rot) or `Missing` (dead node / lost file).
    pub health: ShardHealth,
}

/// What one scrub tick covered.
#[derive(Debug, Default)]
pub struct ScrubTick {
    /// Full per-object scans performed this tick, in scan order.
    pub scans: Vec<ObjectScan>,
    /// Bytes read and checksummed this tick.
    pub bytes_scanned: u64,
    /// A full pass over every object completed during this tick.
    pub pass_completed: bool,
}

impl ScrubTick {
    /// Every unhealthy shard seen this tick, in scan order.
    pub fn findings(&self) -> Vec<ScrubFinding> {
        let mut out = Vec::new();
        for scan in &self.scans {
            for stripe in &scan.stripes {
                for (node, health) in stripe.shards.iter().enumerate() {
                    if *health != ShardHealth::Ok {
                        out.push(ScrubFinding {
                            id: scan.id.clone(),
                            stripe: stripe.stripe,
                            node,
                            health: *health,
                        });
                    }
                }
            }
        }
        out
    }
}

/// The incremental store walker. Holds the remainder of the current
/// pass; `tick` resumes where the previous tick left off.
pub struct Scrubber {
    seed: u64,
    pass: u64,
    /// Remaining ids this pass, scan order, next-to-scan last (popped).
    remaining: Vec<String>,
    /// Passes completed since construction.
    passes_completed: u64,
}

impl Scrubber {
    /// A scrubber at the start of its first pass.
    pub fn new(seed: u64) -> Self {
        Scrubber {
            seed,
            pass: 0,
            remaining: Vec::new(),
            passes_completed: 0,
        }
    }

    /// Passes fully completed so far.
    pub fn passes_completed(&self) -> u64 {
        self.passes_completed
    }

    /// Deterministic scan order for the current pass.
    fn refill(&mut self, store: &Store) -> Result<(), StoreError> {
        let mut ids = store.list_ids()?;
        let (seed, pass) = (self.seed, self.pass);
        ids.sort_by_key(|id| {
            (
                apec_ec::rng::derive(seed, &format!("scrub-pass-{pass}-{id}")),
                id.clone(),
            )
        });
        // `remaining` pops from the back; reverse so the lowest rank
        // scans first.
        ids.reverse();
        self.remaining = ids;
        Ok(())
    }

    /// Scans objects until `budget_bytes` is exhausted (0 = unlimited;
    /// at least one object per tick so progress is always made). When
    /// the pass's worklist empties the tick reports `pass_completed`
    /// and the next tick starts a fresh pass over the then-current ids.
    pub fn tick(&mut self, store: &Store, budget_bytes: u64) -> Result<ScrubTick, StoreError> {
        let mut out = ScrubTick::default();
        if self.remaining.is_empty() {
            self.refill(store)?;
            if self.remaining.is_empty() {
                return Ok(out); // empty store: nothing to scan
            }
        }
        while let Some(id) = self.remaining.pop() {
            match store.scan_object(&id) {
                Ok(scan) => {
                    out.bytes_scanned += scan.bytes_scanned;
                    out.scans.push(scan);
                }
                // The object vanished between listing and scanning
                // (raced with an admin delete); skip it.
                Err(StoreError::User(_)) => continue,
                Err(e) => return Err(e),
            }
            if budget_bytes > 0 && out.bytes_scanned >= budget_bytes {
                break;
            }
        }
        if self.remaining.is_empty() {
            self.pass += 1;
            self.passes_completed += 1;
            out.pass_completed = true;
        }
        Ok(out)
    }

    /// Runs one complete pass with no byte budget, returning every scan
    /// in deterministic order. The standalone `apec scrub` entry point.
    pub fn full_pass(&mut self, store: &Store) -> Result<ScrubTick, StoreError> {
        // A fresh pass even if a budgeted walk was mid-flight.
        self.remaining.clear();
        self.tick(store, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apec_store::{StoreConfig, StoreSession};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "apec-maint-test-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn seeded_store(tag: &str, objects: usize) -> (Store, PathBuf) {
        let root = temp_root(tag);
        let store = Store::init(&root, StoreConfig::demo("rs")).unwrap();
        let mut sess = StoreSession::new();
        for i in 0..objects {
            let id = format!("clip-{i:02}");
            let imp: Vec<u8> = (0..300).map(|b| (b * 7 + i) as u8).collect();
            let unimp: Vec<u8> = (0..900).map(|b| (b * 3 + i) as u8).collect();
            store.put_object(&mut sess, &id, &imp, &unimp).unwrap();
        }
        (store, root)
    }

    /// Replays a whole scrub pass tick-by-tick, returning (scan order,
    /// findings).
    fn replay(store: &Store, seed: u64, budget: u64) -> (Vec<String>, Vec<ScrubFinding>) {
        let mut scrubber = Scrubber::new(seed);
        let mut order = Vec::new();
        let mut findings = Vec::new();
        loop {
            let tick = scrubber.tick(store, budget).unwrap();
            order.extend(tick.scans.iter().map(|s| s.id.clone()));
            findings.extend(tick.findings());
            if tick.pass_completed {
                return (order, findings);
            }
        }
    }

    #[test]
    fn same_seed_same_order_and_findings() {
        let (store, root) = seeded_store("determinism", 8);
        let hits = store.inject_bitrot(42, 4).unwrap();
        assert_eq!(hits.len(), 4);
        let (order_a, findings_a) = replay(&store, 7, 2_000);
        let (order_b, findings_b) = replay(&store, 7, 2_000);
        assert_eq!(order_a, order_b, "same seed: identical scan order");
        assert_eq!(findings_a, findings_b, "same seed: identical findings");
        assert_eq!(order_a.len(), 8, "every object scanned exactly once");
        assert_eq!(
            findings_a.len(),
            4,
            "every injected corruption found in one pass"
        );
        // The budget changes tick boundaries, never coverage or order.
        let (order_c, findings_c) = replay(&store, 7, 0);
        assert_eq!(order_a, order_c);
        assert_eq!(findings_a, findings_c);
        // A different seed permutes the walk (8! orders; collision is
        // astronomically unlikely and would be a derive() regression).
        let (order_d, findings_d) = replay(&store, 8, 2_000);
        assert_ne!(order_a, order_d, "different seed: different order");
        let mut sorted_a = findings_a.clone();
        let mut sorted_d = findings_d.clone();
        sorted_a.sort_by(|x, y| (&x.id, x.stripe, x.node).cmp(&(&y.id, y.stripe, y.node)));
        sorted_d.sort_by(|x, y| (&x.id, x.stripe, x.node).cmp(&(&y.id, y.stripe, y.node)));
        assert_eq!(sorted_a, sorted_d, "findings themselves are seed-independent");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn byte_budget_bounds_each_tick() {
        let (store, root) = seeded_store("budget", 6);
        let mut scrubber = Scrubber::new(3);
        let one_object = store.scan_object("clip-00").unwrap().bytes_scanned;
        let mut ticks = 0;
        loop {
            let tick = scrubber.tick(&store, 1).unwrap(); // 1 byte: forces one object per tick
            assert_eq!(tick.scans.len(), 1, "minimal budget scans one object");
            assert_eq!(tick.bytes_scanned, one_object);
            ticks += 1;
            if tick.pass_completed {
                break;
            }
        }
        assert_eq!(ticks, 6, "one tick per object under a minimal budget");
        assert_eq!(scrubber.passes_completed(), 1);
        // Unlimited budget: the whole next pass in one tick.
        let tick = scrubber.tick(&store, 0).unwrap();
        assert!(tick.pass_completed);
        assert_eq!(tick.scans.len(), 6);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn passes_use_different_permutations() {
        let (store, root) = seeded_store("perms", 8);
        let mut scrubber = Scrubber::new(11);
        let a = scrubber.full_pass(&store).unwrap();
        let b = scrubber.full_pass(&store).unwrap();
        let order = |t: &ScrubTick| t.scans.iter().map(|s| s.id.clone()).collect::<Vec<_>>();
        assert_ne!(order(&a), order(&b), "pass index varies the permutation");
        let mut sa = order(&a);
        let mut sb = order(&b);
        sa.sort();
        sb.sort();
        assert_eq!(sa, sb, "both passes cover the same objects");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn empty_store_is_a_clean_noop() {
        let root = temp_root("empty");
        let store = Store::init(&root, StoreConfig::demo("rs")).unwrap();
        let mut scrubber = Scrubber::new(1);
        let tick = scrubber.tick(&store, 0).unwrap();
        assert!(tick.scans.is_empty());
        assert!(!tick.pass_completed);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
