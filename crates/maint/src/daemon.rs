//! The maintenance daemon: one low-priority background thread that
//! ticks the scrubber, feeds its findings through the
//! exposure-prioritized [`RepairQueue`], and heals objects with
//! [`Store::repair_object`] under per-tick bandwidth caps.
//!
//! Priority inversion is handled structurally rather than by OS
//! scheduling: each tick the scrubber reads at most
//! `scrub_budget_bytes`, at most `repairs_per_tick` objects are healed,
//! and when foreground reads are in flight the drain *defers*
//! (bounded by `max_defer_ticks`, and never for `Critical` exposure —
//! a stripe past exact tolerance outranks read latency). Repairs take
//! the store's per-object write lock only, so foreground traffic on
//! other objects proceeds concurrently.
//!
//! The same machinery runs synchronously via [`run_scrub`] for the
//! standalone `apec scrub` command.

use crate::cache::HotCache;
use crate::queue::{RepairQueue, RepairTask};
use crate::scrub::{ScrubFinding, Scrubber};
use crate::status::{MaintStatus, Shared};
use apec_store::{ObjectRepair, ShardHealth, Store, StoreError, StoreSession};
use apec_tier::exposure::Exposure;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MaintConfig {
    /// Seed for the scrubber's per-pass scan permutation.
    pub seed: u64,
    /// Target wall-clock period of one maintenance tick, milliseconds.
    pub tick_ms: u64,
    /// Scrub byte budget per tick (0 = unlimited; the rate cap is
    /// `scrub_budget_bytes / tick_ms` bytes per millisecond).
    pub scrub_budget_bytes: u64,
    /// Objects healed per tick at most.
    pub repairs_per_tick: usize,
    /// Heal queued objects automatically (false = detect-only).
    pub auto_repair: bool,
    /// Consecutive ticks a non-critical drain may yield to in-flight
    /// foreground reads before repairing anyway.
    pub max_defer_ticks: u32,
}

impl Default for MaintConfig {
    fn default() -> Self {
        MaintConfig {
            seed: 0,
            tick_ms: 20,
            scrub_budget_bytes: 4 << 20,
            repairs_per_tick: 2,
            auto_repair: true,
            max_defer_ticks: 8,
        }
    }
}

/// Runs one scrub tick, updating counters and queueing repair tasks
/// for every unclean object scanned. Returns the tick's findings.
fn scrub_tick(
    store: &Store,
    scrubber: &mut Scrubber,
    queue: &mut RepairQueue,
    shared: &Shared,
    budget_bytes: u64,
) -> Result<Vec<ScrubFinding>, StoreError> {
    let started = Instant::now();
    let tick = scrubber.tick(store, budget_bytes)?;
    let busy_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
    Shared::add(&shared.scrub_busy_us, busy_us);
    Shared::add(&shared.objects_scanned, tick.scans.len() as u64);
    Shared::add(&shared.bytes_scanned, tick.bytes_scanned);
    if tick.pass_completed {
        Shared::add(&shared.scrub_passes, 1);
    }
    let findings = tick.findings();
    for f in &findings {
        match f.health {
            ShardHealth::Corrupt => Shared::add(&shared.corrupt_detected, 1),
            ShardHealth::Missing => Shared::add(&shared.missing_detected, 1),
            ShardHealth::Ok => {}
        }
    }
    for scan in &tick.scans {
        shared.reconcile_scan(scan, started);
        if let Some(task) = RepairTask::from_scan(store.code(), scan) {
            queue.push(task);
        }
    }
    Shared::set(&shared.queue_depth, queue.len() as u64);
    Ok(findings)
}

/// Applies one heal's outcome to the counters and cache.
fn account_repair(
    shared: &Shared,
    cache: Option<&HotCache>,
    task: &RepairTask,
    repair: &ObjectRepair,
) {
    if repair.shards_rebuilt == 0 {
        // Nothing rewritable (e.g. every failed shard sits on a node
        // the topology marks dead): leave it to `repair-all` admin.
        return;
    }
    Shared::add(&shared.repairs_completed, 1);
    Shared::add(&shared.shards_rebuilt, repair.shards_rebuilt as u64);
    match task.exposure {
        Exposure::Critical => Shared::add(&shared.repairs_critical, 1),
        Exposure::ToleranceOne => Shared::add(&shared.repairs_tolerance1, 1),
        Exposure::Degraded => Shared::add(&shared.repairs_degraded, 1),
        Exposure::Healthy => {}
    }
    shared.mark_healed(&task.id);
    if let Some(cache) = cache {
        // The shard files changed under any cached decode; a later read
        // repopulates from the healed object.
        cache.invalidate(&task.id);
    }
}

/// Drains up to `repairs_per_tick` heals from the queue, deferring to
/// in-flight foreground reads for non-critical work. Returns how many
/// objects were healed this tick.
#[allow(clippy::too_many_arguments)]
fn drain_repairs(
    store: &Store,
    session: &mut StoreSession,
    queue: &mut RepairQueue,
    shared: &Shared,
    cache: Option<&HotCache>,
    config: &MaintConfig,
    foreground_reads: &AtomicU64,
    defer_streak: &mut u32,
) -> usize {
    // Decide once per tick whether to yield to foreground traffic,
    // judged by the most urgent queued task: `Critical` never waits,
    // and a bounded defer streak guarantees eventual progress.
    if let Some(next) = queue.peek() {
        let critical = next.exposure == Exposure::Critical;
        let busy = foreground_reads.load(Ordering::Acquire) > 0;
        if busy && !critical && *defer_streak < config.max_defer_ticks {
            *defer_streak += 1;
            Shared::add(&shared.deferrals, 1);
            Shared::set(&shared.queue_depth, queue.len() as u64);
            return 0;
        }
        *defer_streak = 0;
    }
    let mut healed = 0;
    for _ in 0..config.repairs_per_tick {
        let Some(task) = queue.pop() else { break };
        match store.repair_object(session, &task.id) {
            Ok(repair) => {
                account_repair(shared, cache, &task, &repair);
                healed += 1;
            }
            // Object deleted after it was queued: drop the task.
            Err(StoreError::User(_)) => {}
            Err(_) => {
                Shared::add(&shared.repair_errors, 1);
                // Requeue for a later tick; dedup keeps this bounded.
                queue.push(task);
                break;
            }
        }
    }
    Shared::set(&shared.queue_depth, queue.len() as u64);
    healed
}

/// Handle to the background maintenance thread.
pub struct MaintDaemon {
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MaintDaemon {
    /// Starts the maintenance thread over `store`. `foreground_reads`
    /// is a gauge of in-flight foreground reads the server maintains;
    /// the drain defers to it. `cache` entries are invalidated when
    /// their object is healed.
    pub fn spawn(
        store: Arc<Store>,
        cache: Option<Arc<HotCache>>,
        foreground_reads: Arc<AtomicU64>,
        config: MaintConfig,
    ) -> MaintDaemon {
        let shared = Arc::new(Shared::default());
        let stop = Arc::new(AtomicBool::new(false));
        let worker_shared = Arc::clone(&shared);
        let worker_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("apec-maint".into())
            .spawn(move || {
                let mut scrubber = Scrubber::new(config.seed);
                let mut queue = RepairQueue::new();
                let mut session = StoreSession::new();
                let mut defer_streak = 0u32;
                while !worker_stop.load(Ordering::Acquire) {
                    let tick_started = Instant::now();
                    if let Err(_e) = scrub_tick(
                        &store,
                        &mut scrubber,
                        &mut queue,
                        &worker_shared,
                        config.scrub_budget_bytes,
                    ) {
                        Shared::add(&worker_shared.maint_errors, 1);
                    }
                    if config.auto_repair {
                        drain_repairs(
                            &store,
                            &mut session,
                            &mut queue,
                            &worker_shared,
                            cache.as_deref(),
                            &config,
                            &foreground_reads,
                            &mut defer_streak,
                        );
                    }
                    let elapsed = tick_started.elapsed();
                    let period = Duration::from_millis(config.tick_ms);
                    if let Some(idle) = period.checked_sub(elapsed) {
                        if !idle.is_zero() {
                            std::thread::sleep(idle);
                        }
                    }
                }
            });
        let handle = match handle {
            Ok(h) => Some(h),
            // Thread spawn failure: degrade to an inert daemon whose
            // status reports zeros rather than taking the server down.
            Err(_) => None,
        };
        MaintDaemon {
            shared,
            stop,
            handle,
        }
    }

    /// The shared counter block (for registering injections).
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Registers seeded bit-rot hits so the status can report
    /// detection and heal latencies for them.
    pub fn note_injections(&self, hits: &[apec_store::BitrotHit]) {
        self.shared.note_injections(hits);
    }

    /// Point-in-time status snapshot.
    pub fn status(&self) -> MaintStatus {
        self.shared.status()
    }

    /// Status serialized as the `scrub-status` JSON document.
    pub fn status_json(&self) -> String {
        self.shared.status().to_json()
    }

    /// Stops the thread and waits for it to exit. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MaintDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Outcome of one synchronous scrub pass ([`run_scrub`]).
#[derive(Debug, Default)]
pub struct ScrubRun {
    /// Objects scanned.
    pub objects: usize,
    /// Bytes read and checksummed.
    pub bytes_scanned: u64,
    /// Unhealthy shards found, in scan order.
    pub findings: Vec<ScrubFinding>,
    /// Per-object heal outcomes (empty unless `repair` was requested),
    /// in exposure-priority order.
    pub repairs: Vec<(String, ObjectRepair)>,
}

/// Runs one full scrub pass synchronously; with `repair`, drains the
/// resulting queue in exposure-priority order. The `apec scrub` core.
pub fn run_scrub(store: &Store, seed: u64, repair: bool) -> Result<ScrubRun, StoreError> {
    let mut scrubber = Scrubber::new(seed);
    let tick = scrubber.full_pass(store)?;
    let mut out = ScrubRun {
        objects: tick.scans.len(),
        bytes_scanned: tick.bytes_scanned,
        findings: tick.findings(),
        repairs: Vec::new(),
    };
    if repair {
        let mut queue = RepairQueue::new();
        for scan in &tick.scans {
            if let Some(task) = RepairTask::from_scan(store.code(), scan) {
                queue.push(task);
            }
        }
        let mut session = StoreSession::new();
        while let Some(task) = queue.pop() {
            match store.repair_object(&mut session, &task.id) {
                Ok(repair) => out.repairs.push((task.id, repair)),
                Err(StoreError::User(_)) => {}
                Err(e) => return Err(e),
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apec_store::StoreConfig;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "apec-maint-daemon-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn seeded_store(tag: &str, objects: usize) -> (Arc<Store>, PathBuf) {
        let root = temp_root(tag);
        let store = Store::init(&root, StoreConfig::demo("rs")).unwrap();
        let mut sess = StoreSession::new();
        for i in 0..objects {
            let id = format!("clip-{i:02}");
            let imp: Vec<u8> = (0..300).map(|b| (b * 5 + i) as u8).collect();
            let unimp: Vec<u8> = (0..900).map(|b| (b * 11 + i) as u8).collect();
            store.put_object(&mut sess, &id, &imp, &unimp).unwrap();
        }
        (Arc::new(store), root)
    }

    #[test]
    fn run_scrub_detects_and_heals_synchronously() {
        let (store, root) = seeded_store("sync", 5);
        let hits = store.inject_bitrot(77, 4).unwrap();
        assert_eq!(hits.len(), 4);
        let run = run_scrub(&store, 1, true).unwrap();
        assert_eq!(run.objects, 5);
        assert_eq!(run.findings.len(), 4, "all injected corruption found");
        assert!(!run.repairs.is_empty());
        let rebuilt: usize = run.repairs.iter().map(|(_, r)| r.shards_rebuilt).sum();
        assert_eq!(rebuilt, 4, "every corrupt shard rewritten");
        let run2 = run_scrub(&store, 2, false).unwrap();
        assert!(run2.findings.is_empty(), "store is clean after heal");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn tick_pipeline_defers_to_foreground_then_heals() {
        let (store, root) = seeded_store("defer", 4);
        store.inject_bitrot(5, 3).unwrap();
        let shared = Shared::default();
        let mut scrubber = Scrubber::new(9);
        let mut queue = RepairQueue::new();
        let mut session = StoreSession::new();
        let config = MaintConfig {
            repairs_per_tick: 8,
            max_defer_ticks: 2,
            ..MaintConfig::default()
        };
        let foreground = AtomicU64::new(1); // a reader is always in flight
        let mut defer_streak = 0u32;
        let findings = scrub_tick(&store, &mut scrubber, &mut queue, &shared, 0).unwrap();
        assert_eq!(findings.len(), 3);
        assert!(!queue.is_empty());
        let depth_before = queue.len();
        // Ticks 1 and 2: non-critical repairs yield to the reader.
        for expected_deferrals in 1..=2u64 {
            let healed = drain_repairs(
                &store,
                &mut session,
                &mut queue,
                &shared,
                None,
                &config,
                &foreground,
                &mut defer_streak,
            );
            assert_eq!(healed, 0, "deferred while foreground is busy");
            assert_eq!(Shared::get(&shared.deferrals), expected_deferrals);
            assert_eq!(queue.len(), depth_before);
        }
        // Tick 3: the defer budget is exhausted; repairs proceed even
        // though the reader is still in flight.
        let healed = drain_repairs(
            &store,
            &mut session,
            &mut queue,
            &shared,
            None,
            &config,
            &foreground,
            &mut defer_streak,
        );
        assert!(healed > 0, "defer cap forces progress");
        assert!(queue.is_empty());
        assert_eq!(Shared::get(&shared.queue_depth), 0);
        let run = run_scrub(&store, 1, false).unwrap();
        assert!(run.findings.is_empty(), "healed despite contention");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn daemon_heals_injected_bitrot_end_to_end() {
        let (store, root) = seeded_store("daemon", 6);
        let hits = store.inject_bitrot(13, 5).unwrap();
        let config = MaintConfig {
            seed: 4,
            tick_ms: 1,
            scrub_budget_bytes: 0,
            repairs_per_tick: 4,
            auto_repair: true,
            max_defer_ticks: 1,
        };
        let foreground = Arc::new(AtomicU64::new(0));
        let mut daemon = MaintDaemon::spawn(
            Arc::clone(&store),
            None,
            Arc::clone(&foreground),
            config,
        );
        daemon.note_injections(&hits);
        let deadline = Instant::now() + Duration::from_secs(30);
        let healed = loop {
            let st = daemon.status();
            if st.injected_healed == hits.len() as u64 {
                break st;
            }
            if Instant::now() > deadline {
                panic!("daemon did not heal in time: {st:?}");
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        daemon.shutdown();
        assert_eq!(healed.injected, 5);
        assert_eq!(healed.injected_detected, 5, "100% detection");
        assert!(healed.corrupt_detected >= 5);
        assert!(healed.repairs_completed >= 1);
        assert!(healed.shards_rebuilt >= 5);
        assert!(healed.detection_latency_us_sum <= healed.heal_latency_us_sum);
        assert!(healed.scrub_passes >= 1);
        let run = run_scrub(&store, 1, false).unwrap();
        assert!(run.findings.is_empty(), "store left clean");
        // Shutdown is idempotent and drop after shutdown is safe.
        daemon.shutdown();
        drop(daemon);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn detect_only_mode_queues_without_healing() {
        let (store, root) = seeded_store("detect-only", 3);
        store.inject_bitrot(99, 2).unwrap();
        let config = MaintConfig {
            seed: 2,
            tick_ms: 1,
            scrub_budget_bytes: 0,
            auto_repair: false,
            ..MaintConfig::default()
        };
        let mut daemon = MaintDaemon::spawn(
            Arc::clone(&store),
            None,
            Arc::new(AtomicU64::new(0)),
            config,
        );
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let st = daemon.status();
            if st.corrupt_detected >= 2 {
                assert_eq!(st.repairs_completed, 0, "detect-only never repairs");
                assert!(st.queue_depth >= 1, "findings stay queued");
                break;
            }
            if Instant::now() > deadline {
                panic!("detection did not happen in time: {st:?}");
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        daemon.shutdown();
        let run = run_scrub(&store, 1, false).unwrap();
        assert_eq!(run.findings.len(), 2, "corruption still present");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
