//! Autonomous maintenance for the tiered store: background scrubbing,
//! exposure-prioritized repair, and a hot-read cache.
//!
//! Approximate code's economics rest on cold data staying cheap — which
//! only holds if latent faults in rarely-read stripes are found and
//! fixed *before* they stack up past tolerance. This crate is that
//! safety loop, packaged as one low-priority daemon thread
//! ([`MaintDaemon`]) the serving daemon embeds, plus a synchronous
//! entry point ([`run_scrub`]) for the standalone `apec scrub` command:
//!
//! | module | provides |
//! |---|---|
//! | [`scrub`] | rate-budgeted, seeded-deterministic store walker |
//! | [`queue`] | exposure-prioritized repair queue (tolerance-1 first) |
//! | [`cache`] | bounded sharded LRU over decoded objects |
//! | [`daemon`] | the tick loop tying them together; [`run_scrub`] |
//! | [`status`] | shared counters and the `scrub-status` JSON document |
//!
//! Everything is deterministic given a seed: scan order is a pure
//! function of `(seed, pass, object id)`, queue drain order is a pure
//! function of queue contents, and bit-rot injection (in `apec-store`)
//! is a pure function of its own seed — so the closed-loop harness can
//! assert exact detection and heal counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod daemon;
pub mod queue;
pub mod scrub;
pub mod status;

pub use cache::{CacheConfig, CacheSnapshot, CachedObject, HotCache};
pub use daemon::{run_scrub, MaintConfig, MaintDaemon, ScrubRun};
pub use queue::{RepairQueue, RepairTask};
pub use scrub::{ScrubFinding, ScrubTick, Scrubber};
pub use status::{MaintStatus, Shared};
