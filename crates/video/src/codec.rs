//! A functional GOP codec: I-frames intra-coded, P/B-frames as
//! run-length-encoded residuals against their references.
//!
//! This is not H.264 — no DCT, no entropy coding — but it is *honest*
//! compression with H.264's dependency structure: an I-frame decodes
//! alone; a P-frame needs the previous anchor; a B-frame needs the anchors
//! on both sides; losing an I-frame kills its whole GOP, losing a P-frame
//! kills the dependent tail, losing a B-frame kills only itself. Those
//! dependencies are exactly what makes I-frames "important" in the paper.

use crate::frame::Frame;

/// H.264-style frame classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// Intra-coded: self-contained.
    I,
    /// Predicted from the previous anchor frame.
    P,
    /// Bidirectionally predicted from surrounding anchors.
    B,
}

/// GOP shape configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GopConfig {
    /// Frames per GOP (first is the I-frame). Must be ≥ 1.
    pub gop_len: usize,
    /// Insert B-frames between anchors (`I B P B P …`) instead of `I P P …`.
    pub use_b_frames: bool,
    /// Residual deadzone: differences of at most `quant` gray levels are
    /// coded as zero. `0` makes the codec lossless (and P/B frames barely
    /// compress on noisy content); the default 2 bounds per-pixel error at
    /// 2 gray levels (≈ 42 dB), mimicking a light H.264 QP.
    pub quant: u8,
}

impl Default for GopConfig {
    fn default() -> Self {
        GopConfig {
            gop_len: 12,
            use_b_frames: true,
            quant: 2,
        }
    }
}

/// One encoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedFrame {
    /// Display index in the stream.
    pub index: usize,
    /// Frame class.
    pub frame_type: FrameType,
    /// Compressed payload.
    pub payload: Vec<u8>,
}

/// Output of [`decode_stream`]: `None` marks undecodable frames (lost, or
/// dependent on a lost reference).
#[derive(Debug, Clone)]
pub struct DecodedStream {
    /// Per-display-index decoded frames.
    pub frames: Vec<Option<Frame>>,
}

impl DecodedStream {
    /// Indices of frames that could not be decoded.
    pub fn lost_indices(&self) -> Vec<usize> {
        self.frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_none())
            .map(|(i, _)| i)
            .collect()
    }
}

// --- RLE of residual bytes -------------------------------------------------

/// Token stream: `0x00 len_lo len_hi` = a run of `len` zeros;
/// `0x01 len_lo len_hi b...` = `len` literal bytes.
fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 8);
    let mut i = 0;
    while i < data.len() {
        if data[i] == 0 {
            let start = i;
            while i < data.len() && data[i] == 0 && i - start < u16::MAX as usize {
                i += 1;
            }
            let len = (i - start) as u16;
            out.push(0x00);
            out.extend_from_slice(&len.to_le_bytes());
        } else {
            let start = i;
            while i < data.len() && data[i] != 0 && i - start < u16::MAX as usize {
                i += 1;
            }
            let len = (i - start) as u16;
            out.push(0x01);
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(&data[start..i]);
        }
    }
    out
}

fn rle_decompress(data: &[u8], expected_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(expected_len);
    let mut i = 0;
    while i < data.len() {
        let tag = data[i];
        if i + 3 > data.len() {
            return None;
        }
        let len = u16::from_le_bytes([data[i + 1], data[i + 2]]) as usize;
        i += 3;
        match tag {
            0x00 => out.resize(out.len() + len, 0),
            0x01 => {
                if i + len > data.len() {
                    return None;
                }
                out.extend_from_slice(&data[i..i + len]);
                i += len;
            }
            _ => return None,
        }
        if out.len() > expected_len {
            return None;
        }
    }
    (out.len() == expected_len).then_some(out)
}

// --- Frame-level coding ----------------------------------------------------

/// Deadzone-quantised residual. The stored byte is the true difference
/// mod 256, so [`apply_residual`]'s wrapping add reconstructs exactly for
/// every kept coefficient; only differences inside the deadzone are
/// dropped (coded as zero).
fn residual(cur: &Frame, pred: &[u8], quant: u8) -> Vec<u8> {
    cur.pixels
        .iter()
        .zip(pred)
        .map(|(&c, &p)| {
            let d = i16::from(c) - i16::from(p);
            if d.unsigned_abs() <= u16::from(quant) {
                0
            } else {
                d as u8 // truncation = mod 256, inverted by wrapping_add
            }
        })
        .collect()
}

fn apply_residual(pred: &[u8], res: &[u8]) -> Vec<u8> {
    pred.iter()
        .zip(res)
        .map(|(&p, &r)| p.wrapping_add(r))
        .collect()
}

fn avg_prediction(a: &Frame, b: &Frame) -> Vec<u8> {
    a.pixels
        .iter()
        .zip(&b.pixels)
        .map(|(&x, &y)| ((u16::from(x) + u16::from(y)) / 2) as u8)
        .collect()
}

/// The frame class each display index gets under `cfg`.
pub fn frame_type_of(index: usize, cfg: &GopConfig) -> FrameType {
    let off = index % cfg.gop_len;
    if off == 0 {
        FrameType::I
    } else if cfg.use_b_frames && off % 2 == 1 && off + 1 < cfg.gop_len {
        // Odd offsets are B, except the GOP's final frame which must be an
        // anchor (it has no following anchor to predict from).
        FrameType::B
    } else {
        FrameType::P
    }
}

/// Index of the anchor a P-frame at `index` references.
fn prev_anchor(index: usize, cfg: &GopConfig) -> usize {
    debug_assert_ne!(frame_type_of(index, cfg), FrameType::I);
    let mut i = index - 1;
    while frame_type_of(i, cfg) == FrameType::B {
        i -= 1;
    }
    i
}

/// Anchors surrounding a B-frame.
fn surrounding_anchors(index: usize, cfg: &GopConfig) -> (usize, usize) {
    (prev_anchor(index, cfg), index + 1)
}

/// Encodes a frame sequence. Frames must share one resolution.
///
/// The prediction loop is *closed*: P/B residuals are taken against the
/// encoder's own reconstruction of the reference frames, so quantisation
/// error never drifts along a GOP — each decoded pixel is within
/// `cfg.quant` of the original.
pub fn encode_stream(frames: &[Frame], cfg: &GopConfig) -> Vec<EncodedFrame> {
    assert!(cfg.gop_len >= 1, "gop_len must be at least 1");
    let n = frames.len();
    let mut out: Vec<Option<EncodedFrame>> = vec![None; n];
    // Encoder-side reconstructions of anchor frames (what the decoder will
    // see), filled in pass 1.
    let mut recon: Vec<Option<Frame>> = vec![None; n];

    // Pass 1: anchors (I and P) in display order.
    for (i, f) in frames.iter().enumerate() {
        match frame_type_of(i, cfg) {
            FrameType::I => {
                let payload = rle_compress(&f.pixels);
                recon[i] = Some(f.clone());
                out[i] = Some(EncodedFrame { index: i, frame_type: FrameType::I, payload });
            }
            FrameType::P => {
                let a = prev_anchor(i, cfg);
                let pred = recon[a].as_ref().expect("anchors encode in order").pixels.clone();
                let res = residual(f, &pred, cfg.quant);
                let rec = Frame::from_pixels(f.width, f.height, apply_residual(&pred, &res));
                recon[i] = Some(rec);
                out[i] = Some(EncodedFrame {
                    index: i,
                    frame_type: FrameType::P,
                    payload: rle_compress(&res),
                });
            }
            FrameType::B => {}
        }
    }

    // Pass 2: B frames (and trailing Bs degraded to P prediction).
    for (i, f) in frames.iter().enumerate() {
        if frame_type_of(i, cfg) != FrameType::B {
            continue;
        }
        let (a, b) = surrounding_anchors(i, cfg);
        if b >= n {
            let pred = recon[a].as_ref().expect("anchor reconstructed").pixels.clone();
            let res = residual(f, &pred, cfg.quant);
            out[i] = Some(EncodedFrame {
                index: i,
                frame_type: FrameType::P,
                payload: rle_compress(&res),
            });
        } else {
            let fa = recon[a].as_ref().expect("anchor reconstructed");
            let fb = recon[b].as_ref().expect("anchor reconstructed");
            let pred = avg_prediction(fa, fb);
            let res = residual(f, &pred, cfg.quant);
            out[i] = Some(EncodedFrame {
                index: i,
                frame_type: FrameType::B,
                payload: rle_compress(&res),
            });
        }
    }
    out.into_iter().map(|f| f.expect("every frame encoded")).collect()
}

/// Decodes a stream in which some frames may be missing (`None`).
///
/// Dependency propagation is faithful: a P-frame whose reference chain is
/// broken is reported lost, a B-frame needs both anchors, and a lost
/// I-frame takes its whole GOP down.
pub fn decode_stream(
    encoded: &[Option<EncodedFrame>],
    width: usize,
    height: usize,
    cfg: &GopConfig,
) -> DecodedStream {
    let n = encoded.len();
    let px = width * height;
    let mut decoded: Vec<Option<Frame>> = vec![None; n];

    // Pass 1: I and P frames in display order (their references are always
    // earlier anchors).
    for i in 0..n {
        let Some(ef) = &encoded[i] else { continue };
        match ef.frame_type {
            FrameType::I => {
                if let Some(pixels) = rle_decompress(&ef.payload, px) {
                    decoded[i] = Some(Frame::from_pixels(width, height, pixels));
                }
            }
            FrameType::P => {
                let a = prev_anchor(i, cfg);
                let Some(anchor) = decoded[a].clone() else { continue };
                if let Some(res) = rle_decompress(&ef.payload, px) {
                    let pixels = apply_residual(&anchor.pixels, &res);
                    decoded[i] = Some(Frame::from_pixels(width, height, pixels));
                }
            }
            FrameType::B => {}
        }
    }

    // Pass 2: B frames (both anchors now available if decodable).
    for i in 0..n {
        let Some(ef) = &encoded[i] else { continue };
        if ef.frame_type != FrameType::B {
            continue;
        }
        let (a, b) = surrounding_anchors(i, cfg);
        let (Some(fa), Some(fb)) = (decoded[a].clone(), decoded.get(b).cloned().flatten())
        else {
            continue;
        };
        if let Some(res) = rle_decompress(&ef.payload, px) {
            let pred = avg_prediction(&fa, &fb);
            let pixels = apply_residual(&pred, &res);
            decoded[i] = Some(Frame::from_pixels(width, height, pixels));
        }
    }

    DecodedStream { frames: decoded }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticVideo;

    fn test_frames(n: usize) -> Vec<Frame> {
        SyntheticVideo::new(48, 32, 60.0, 11, 3).frames(n)
    }

    #[test]
    fn rle_round_trips() {
        for data in [
            vec![],
            vec![0u8; 1000],
            vec![7u8; 10],
            vec![0, 0, 1, 2, 0, 0, 0, 3],
            (0..=255u8).collect::<Vec<_>>(),
        ] {
            let c = rle_compress(&data);
            assert_eq!(rle_decompress(&c, data.len()), Some(data));
        }
    }

    #[test]
    fn rle_rejects_corrupt_input() {
        assert_eq!(rle_decompress(&[0x00], 5), None); // truncated header
        assert_eq!(rle_decompress(&[0x05, 0, 0], 0), None); // bad tag
        assert_eq!(rle_decompress(&[0x01, 10, 0, 1, 2], 10), None); // short literal
        // Length mismatch with expectation:
        let c = rle_compress(&[0u8; 4]);
        assert_eq!(rle_decompress(&c, 5), None);
    }

    #[test]
    fn frame_type_pattern_matches_h264_gop() {
        let cfg = GopConfig {
            gop_len: 8,
            use_b_frames: true,
            quant: 2,
        };
        let types: Vec<FrameType> = (0..16).map(|i| frame_type_of(i, &cfg)).collect();
        use FrameType::*;
        assert_eq!(
            types,
            vec![I, B, P, B, P, B, P, P, I, B, P, B, P, B, P, P],
            "I at GOP start, B between anchors, trailing anchor is P"
        );
        let cfg_p = GopConfig {
            gop_len: 4,
            use_b_frames: false,
            quant: 2,
        };
        let types: Vec<FrameType> = (0..8).map(|i| frame_type_of(i, &cfg_p)).collect();
        assert_eq!(types, vec![I, P, P, P, I, P, P, P]);
    }

    #[test]
    fn lossless_round_trip_at_quant_zero() {
        let frames = test_frames(25);
        for cfg in [
            GopConfig { gop_len: 12, use_b_frames: true, quant: 0 },
            GopConfig { gop_len: 6, use_b_frames: false, quant: 0 },
            GopConfig { gop_len: 1, use_b_frames: true, quant: 0 },
        ] {
            let encoded = encode_stream(&frames, &cfg);
            let boxed: Vec<Option<EncodedFrame>> = encoded.into_iter().map(Some).collect();
            let decoded = decode_stream(&boxed, 48, 32, &cfg);
            assert!(decoded.lost_indices().is_empty());
            for (orig, dec) in frames.iter().zip(&decoded.frames) {
                assert_eq!(dec.as_ref().unwrap(), orig, "lossless codec must be exact");
            }
        }
    }

    #[test]
    fn quantized_round_trip_bounds_error() {
        let frames = test_frames(24);
        let cfg = GopConfig { gop_len: 12, use_b_frames: true, quant: 2 };
        let encoded = encode_stream(&frames, &cfg);
        let boxed: Vec<Option<EncodedFrame>> = encoded.into_iter().map(Some).collect();
        let decoded = decode_stream(&boxed, 48, 32, &cfg);
        for (i, (orig, dec)) in frames.iter().zip(&decoded.frames).enumerate() {
            let dec = dec.as_ref().unwrap();
            // Closed-loop coding: error bounded by quant, no drift.
            let max_err = orig
                .pixels
                .iter()
                .zip(&dec.pixels)
                .map(|(&a, &b)| a.abs_diff(b))
                .max()
                .unwrap();
            assert!(max_err <= 2, "frame {i}: max error {max_err}");
            let p = crate::frame::psnr_db(orig, dec);
            assert!(p > 40.0, "frame {i}: PSNR {p}");
        }
    }

    #[test]
    fn p_and_b_frames_are_smaller_than_i_frames() {
        let frames = test_frames(24);
        let cfg = GopConfig { gop_len: 12, use_b_frames: true, quant: 2 };
        let encoded = encode_stream(&frames, &cfg);
        let avg = |t: FrameType| {
            let sizes: Vec<usize> = encoded
                .iter()
                .filter(|e| e.frame_type == t)
                .map(|e| e.payload.len())
                .collect();
            sizes.iter().sum::<usize>() as f64 / sizes.len().max(1) as f64
        };
        let (i, p, b) = (avg(FrameType::I), avg(FrameType::P), avg(FrameType::B));
        assert!(p < i * 0.7, "P ({p:.0}) should be well below I ({i:.0})");
        assert!(b < i * 0.7, "B ({b:.0}) should be well below I ({i:.0})");
    }

    #[test]
    fn losing_an_i_frame_kills_its_gop_only() {
        let frames = test_frames(24);
        let cfg = GopConfig { gop_len: 12, use_b_frames: false, quant: 2 };
        let encoded = encode_stream(&frames, &cfg);
        let mut boxed: Vec<Option<EncodedFrame>> = encoded.into_iter().map(Some).collect();
        boxed[12] = None; // second GOP's I-frame
        let decoded = decode_stream(&boxed, 48, 32, &cfg);
        assert_eq!(decoded.lost_indices(), (12..24).collect::<Vec<_>>());
    }

    #[test]
    fn losing_a_p_frame_kills_the_dependent_tail() {
        let frames = test_frames(12);
        let cfg = GopConfig { gop_len: 12, use_b_frames: false, quant: 2 };
        let encoded = encode_stream(&frames, &cfg);
        let mut boxed: Vec<Option<EncodedFrame>> = encoded.into_iter().map(Some).collect();
        boxed[5] = None;
        let decoded = decode_stream(&boxed, 48, 32, &cfg);
        assert_eq!(decoded.lost_indices(), (5..12).collect::<Vec<_>>());
    }

    #[test]
    fn losing_a_b_frame_kills_only_itself() {
        let frames = test_frames(12);
        let cfg = GopConfig { gop_len: 12, use_b_frames: true, quant: 2 };
        let encoded = encode_stream(&frames, &cfg);
        assert_eq!(encoded[3].frame_type, FrameType::B);
        let mut boxed: Vec<Option<EncodedFrame>> = encoded.into_iter().map(Some).collect();
        boxed[3] = None;
        let decoded = decode_stream(&boxed, 48, 32, &cfg);
        assert_eq!(decoded.lost_indices(), vec![3]);
    }

    #[test]
    fn corrupted_payload_is_contained() {
        let frames = test_frames(6);
        let cfg = GopConfig { gop_len: 6, use_b_frames: false, quant: 2 };
        let mut encoded: Vec<Option<EncodedFrame>> =
            encode_stream(&frames, &cfg).into_iter().map(Some).collect();
        // Truncate the I-frame payload: everything in the GOP is lost, but
        // decoding must not panic.
        if let Some(ef) = encoded[0].as_mut() {
            ef.payload.truncate(3);
        }
        let decoded = decode_stream(&encoded, 48, 32, &cfg);
        assert_eq!(decoded.lost_indices().len(), 6);
    }
}

#[cfg(test)]
mod debug_tests {
    use crate::synth::SyntheticVideo;

    #[test]
    #[ignore]
    fn residual_histogram() {
        let v = SyntheticVideo::new(48, 32, 60.0, 11, 3);
        let a = v.frame(0);
        let b = v.frame(2);
        let mut hist = [0usize; 16];
        for (&x, &y) in a.pixels.iter().zip(&b.pixels) {
            let d = (i16::from(y) - i16::from(x)).unsigned_abs().min(15);
            hist[d as usize] += 1;
        }
        println!("hist (2-frame gap): {hist:?}");
    }
}
