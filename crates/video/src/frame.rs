//! Grayscale frames and quality measurement.

/// A single grayscale (luma-only) video frame.
///
/// Real pipelines carry YUV; every measurement the paper reports (PSNR of
/// recovered frames) is computed on luma, so a single plane suffices and
/// keeps the synthetic workload cheap enough to sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major luma samples, `width × height` bytes.
    pub pixels: Vec<u8>,
}

impl Frame {
    /// A black frame.
    pub fn black(width: usize, height: usize) -> Self {
        Frame {
            width,
            height,
            pixels: vec![0; width * height],
        }
    }

    /// Builds a frame from raw samples.
    ///
    /// # Panics
    /// Panics if `pixels.len() != width * height`.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel count mismatch");
        Frame {
            width,
            height,
            pixels,
        }
    }

    /// Sample accessor (row-major).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }

    /// Mean absolute difference against another frame of the same size.
    pub fn mad(&self, other: &Frame) -> f64 {
        assert_eq!(self.pixels.len(), other.pixels.len(), "frame size mismatch");
        if self.pixels.is_empty() {
            return 0.0;
        }
        let sum: u64 = self
            .pixels
            .iter()
            .zip(&other.pixels)
            .map(|(&a, &b)| u64::from(a.abs_diff(b)))
            .sum();
        sum as f64 / self.pixels.len() as f64
    }
}

/// Peak signal-to-noise ratio between a reference and a reconstruction,
/// in decibels. Identical frames return `f64::INFINITY`.
///
/// This is the metric behind the paper's "average quality of recovered
/// pictures is commonly above 35 dB" claim (§5.1).
pub fn psnr_db(reference: &Frame, reconstruction: &Frame) -> f64 {
    assert_eq!(
        reference.pixels.len(),
        reconstruction.pixels.len(),
        "frame size mismatch"
    );
    if reference.pixels.is_empty() {
        return f64::INFINITY;
    }
    let mse: f64 = reference
        .pixels
        .iter()
        .zip(&reconstruction.pixels)
        .map(|(&a, &b)| {
            let d = f64::from(a) - f64::from(b);
            d * d
        })
        .sum::<f64>()
        / reference.pixels.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * ((255.0 * 255.0) / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_frames_have_infinite_psnr() {
        let f = Frame::from_pixels(4, 2, vec![10; 8]);
        assert_eq!(psnr_db(&f, &f), f64::INFINITY);
        assert_eq!(f.mad(&f), 0.0);
    }

    #[test]
    fn psnr_of_known_error() {
        // Every pixel off by 1: MSE = 1 → PSNR = 20·log10(255) ≈ 48.13 dB.
        let a = Frame::from_pixels(10, 10, vec![100; 100]);
        let b = Frame::from_pixels(10, 10, vec![101; 100]);
        let p = psnr_db(&a, &b);
        assert!((p - 48.1308).abs() < 1e-3, "got {p}");
    }

    #[test]
    fn psnr_decreases_with_error() {
        let a = Frame::from_pixels(8, 8, vec![128; 64]);
        let b = Frame::from_pixels(8, 8, vec![130; 64]);
        let c = Frame::from_pixels(8, 8, vec![160; 64]);
        assert!(psnr_db(&a, &b) > psnr_db(&a, &c));
    }

    #[test]
    fn mad_counts_mean_abs_difference() {
        let a = Frame::from_pixels(2, 1, vec![0, 10]);
        let b = Frame::from_pixels(2, 1, vec![4, 4]);
        assert_eq!(a.mad(&b), 5.0);
    }

    #[test]
    #[should_panic(expected = "pixel count mismatch")]
    fn wrong_pixel_count_panics() {
        Frame::from_pixels(3, 3, vec![0; 8]);
    }

    #[test]
    #[should_panic(expected = "frame size mismatch")]
    fn psnr_size_mismatch_panics() {
        let a = Frame::black(2, 2);
        let b = Frame::black(2, 3);
        psnr_db(&a, &b);
    }
}
