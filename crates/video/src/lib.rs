//! A synthetic H.264-like video substrate.
//!
//! The paper's workload is YouTube-8m video re-encoded with H.264; what its
//! experiments actually rely on is (a) the GOP structure — an I-frame
//! followed by dependent P/B-frames — for importance classification, and
//! (b) temporal smoothness at 60 fps so that lost frames interpolate to
//! ≥ 35 dB PSNR. This crate reproduces both with no external data:
//!
//! * [`synth::SyntheticVideo`] renders procedural grayscale frames — a
//!   drifting smooth background with moving blobs — with configurable
//!   resolution, fps and motion speed;
//! * [`codec`] compresses a frame sequence GOP-by-GOP: I-frames store the
//!   full picture, P/B-frames store the residual against their reference,
//!   run-length encoded (smooth motion ⇒ sparse residuals ⇒ genuinely
//!   smaller P/B payloads, like a real encoder's ratio);
//! * [`container`] wraps the encoded frames in a NAL-like byte container
//!   that parses defensively and **splits into tiers**: important bytes
//!   (headers + I-frame payloads) and unimportant bytes (P/B payloads) —
//!   exactly the interface `approx-code`'s tiered packer expects;
//! * [`frame`] holds the pixel type and PSNR measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod container;
pub mod frame;
pub mod synth;

pub use codec::{decode_stream, encode_stream, DecodedStream, EncodedFrame, FrameType, GopConfig};
pub use container::{crc32, parse_container, serialize_container, ContainerError, ParsedVideo, TieredBytes, VideoContainer};
pub use frame::{psnr_db, Frame};
pub use synth::SyntheticVideo;
