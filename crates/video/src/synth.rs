//! Procedural video generation.
//!
//! Frames are a smooth, slowly drifting background (sum of low-frequency
//! sinusoids) with a few moving Gaussian blobs and optional sensor noise.
//! At 60 fps-equivalent motion speeds consecutive frames differ by a few
//! gray levels per pixel, matching the temporal smoothness that makes both
//! P-frame residuals small and frame interpolation accurate — the two
//! properties the paper's evaluation leans on.

use crate::frame::Frame;
use rand::prelude::*;
use rand::rngs::StdRng;

/// A deterministic procedural video source.
#[derive(Debug, Clone)]
pub struct SyntheticVideo {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Frames per second (controls per-frame motion increments).
    pub fps: f64,
    /// World-units-per-second speed of the moving blobs.
    pub motion_speed: f64,
    /// Standard deviation of additive sensor noise in gray levels
    /// (0 disables noise).
    pub noise_sigma: f64,
    /// Seed for blob placement and noise.
    pub seed: u64,
    blobs: Vec<Blob>,
}

#[derive(Debug, Clone)]
struct Blob {
    x0: f64,
    y0: f64,
    vx: f64,
    vy: f64,
    radius: f64,
    brightness: f64,
}

impl SyntheticVideo {
    /// Creates a source with `n_blobs` moving objects.
    pub fn new(width: usize, height: usize, fps: f64, seed: u64, n_blobs: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let blobs = (0..n_blobs)
            .map(|_| {
                let angle = rng.random_range(0.0..std::f64::consts::TAU);
                Blob {
                    x0: rng.random_range(0.0..width as f64),
                    y0: rng.random_range(0.0..height as f64),
                    vx: angle.cos(),
                    vy: angle.sin(),
                    radius: rng.random_range(width as f64 / 12.0..width as f64 / 5.0),
                    brightness: rng.random_range(60.0..120.0),
                }
            })
            .collect();
        SyntheticVideo {
            width,
            height,
            fps,
            // Objects cross the frame in ~10 s — typical of real footage —
            // so per-frame displacement stays well under a pixel at 60 fps.
            motion_speed: width as f64 / 10.0,
            noise_sigma: 0.0,
            seed,
            blobs,
        }
    }

    /// Renders frame `t` (the same `t` always renders the same frame).
    pub fn frame(&self, t: usize) -> Frame {
        let time = t as f64 / self.fps;
        let (w, h) = (self.width as f64, self.height as f64);
        let mut pixels = Vec::with_capacity(self.width * self.height);
        // Per-frame deterministic noise stream.
        let mut noise_rng = StdRng::seed_from_u64(self.seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15));
        for y in 0..self.height {
            for x in 0..self.width {
                let (xf, yf) = (x as f64, y as f64);
                // Drifting smooth background.
                // The background drifts an order of magnitude slower than
                // the blobs move — like real footage, where most pixels sit
                // inside the encoder's deadzone between frames.
                let mut v = 110.0
                    + 40.0 * ((xf / w * 2.1 + time * 0.021) * std::f64::consts::TAU).sin()
                    + 30.0 * ((yf / h * 1.3 - time * 0.017) * std::f64::consts::TAU).cos();
                // Moving blobs (toroidal wrap keeps them on screen).
                for b in &self.blobs {
                    let bx = (b.x0 + b.vx * self.motion_speed * time).rem_euclid(w);
                    let by = (b.y0 + b.vy * self.motion_speed * time).rem_euclid(h);
                    // Nearest toroidal displacement.
                    let mut dx = (xf - bx).abs();
                    if dx > w / 2.0 {
                        dx = w - dx;
                    }
                    let mut dy = (yf - by).abs();
                    if dy > h / 2.0 {
                        dy = h - dy;
                    }
                    let d2 = dx * dx + dy * dy;
                    v += b.brightness * (-d2 / (2.0 * b.radius * b.radius)).exp();
                }
                if self.noise_sigma > 0.0 {
                    // Box-Muller-free cheap noise: sum of uniforms.
                    let u: f64 = (0..3).map(|_| noise_rng.random_range(-1.0..1.0)).sum();
                    v += u * self.noise_sigma;
                }
                pixels.push(v.clamp(0.0, 255.0) as u8);
            }
        }
        Frame::from_pixels(self.width, self.height, pixels)
    }

    /// Renders a run of frames starting at 0.
    pub fn frames(&self, count: usize) -> Vec<Frame> {
        (0..count).map(|t| self.frame(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::psnr_db;

    #[test]
    fn rendering_is_deterministic() {
        let v = SyntheticVideo::new(32, 24, 60.0, 7, 3);
        assert_eq!(v.frame(5), v.frame(5));
        let v2 = SyntheticVideo::new(32, 24, 60.0, 7, 3);
        assert_eq!(v.frame(5), v2.frame(5));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticVideo::new(32, 24, 60.0, 1, 3).frame(0);
        let b = SyntheticVideo::new(32, 24, 60.0, 2, 3).frame(0);
        assert_ne!(a, b);
    }

    #[test]
    fn consecutive_frames_are_temporally_smooth_at_60fps() {
        let v = SyntheticVideo::new(64, 48, 60.0, 3, 4);
        let f0 = v.frame(10);
        let f1 = v.frame(11);
        // Adjacent 60 fps frames should be close but not identical.
        assert_ne!(f0, f1);
        assert!(f0.mad(&f1) < 4.0, "mad = {}", f0.mad(&f1));
        // Distant frames should differ much more.
        let f30 = v.frame(40);
        assert!(f0.mad(&f30) > 2.0 * f0.mad(&f1));
    }

    #[test]
    fn neighbor_average_is_a_good_predictor() {
        // The property the recovery module depends on: averaging the two
        // neighbours of a frame approximates it well at 60 fps.
        let v = SyntheticVideo::new(64, 48, 60.0, 5, 4);
        let (a, b, c) = (v.frame(20), v.frame(21), v.frame(22));
        let avg: Vec<u8> = a
            .pixels
            .iter()
            .zip(&c.pixels)
            .map(|(&x, &y)| ((u16::from(x) + u16::from(y)) / 2) as u8)
            .collect();
        let approx = Frame::from_pixels(64, 48, avg);
        let p = psnr_db(&b, &approx);
        assert!(p > 35.0, "neighbour average PSNR {p} dB below the paper's bar");
    }

    #[test]
    fn noise_is_applied_when_configured() {
        let mut v = SyntheticVideo::new(32, 24, 60.0, 9, 2);
        let clean = v.frame(0);
        v.noise_sigma = 3.0;
        let noisy = v.frame(0);
        assert_ne!(clean, noisy);
        assert!(clean.mad(&noisy) < 8.0);
    }
}
