//! The tiered byte container.
//!
//! Serialises an encoded stream into **two byte tiers** matching the
//! Approximate-Code storage split:
//!
//! * **important tier** — a header (dimensions, fps, GOP config), a frame
//!   table with per-record offsets and CRCs, and every I-frame payload;
//! * **unimportant tier** — the P/B-frame payloads, addressed positionally
//!   from the frame table.
//!
//! Because the frame table lives in the important tier, damage to the
//! unimportant tier (zero-filled ranges after a beyond-tolerance repair)
//! degrades gracefully: each record's CRC is checked and corrupt frames
//! surface as `None`, which the codec's dependency tracking and the
//! interpolation recovery then handle. Damage to the important tier is a
//! parse error — by construction the storage layer protects it with
//! `r + g` fault tolerance.

use crate::codec::{EncodedFrame, FrameType, GopConfig};
use std::fmt;

const MAGIC: &[u8; 4] = b"APVC";
const VERSION: u8 = 1;

/// Errors from container parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// Magic bytes or version did not match.
    BadHeader(String),
    /// The important tier ended prematurely.
    Truncated {
        /// What was being read.
        context: &'static str,
    },
    /// The frame table is internally inconsistent.
    BadFrameTable(String),
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::BadHeader(m) => write!(f, "bad container header: {m}"),
            ContainerError::Truncated { context } => {
                write!(f, "container truncated while reading {context}")
            }
            ContainerError::BadFrameTable(m) => write!(f, "bad frame table: {m}"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// An encoded video plus its metadata, ready for tiered storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VideoContainer {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Frames per second (integral, like the paper's 60 fps dataset).
    pub fps: u16,
    /// GOP configuration the stream was encoded with.
    pub gop: GopConfig,
    /// The encoded frames in display order.
    pub frames: Vec<EncodedFrame>,
}

/// The two byte tiers of a serialised container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TieredBytes {
    /// Header + frame table + I-frame payloads.
    pub important: Vec<u8>,
    /// P/B-frame payloads.
    pub unimportant: Vec<u8>,
}

/// A parsed container; frames whose payload failed its CRC (unimportant
/// tier damage) are `None`.
#[derive(Debug, Clone)]
pub struct ParsedVideo {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Frames per second.
    pub fps: u16,
    /// GOP configuration.
    pub gop: GopConfig,
    /// Recovered frame records (`None` = record damaged).
    pub frames: Vec<Option<EncodedFrame>>,
}

// --- CRC32 (IEEE) ------------------------------------------------------------

fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut j = 0;
        while j < 8 {
            c = if c & 1 != 0 { 0xEDB88320 ^ (c >> 1) } else { c >> 1 };
            j += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(crc32_table);
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- Serialisation -----------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn type_code(t: FrameType) -> u8 {
    match t {
        FrameType::I => 0,
        FrameType::P => 1,
        FrameType::B => 2,
    }
}

fn type_from_code(c: u8) -> Option<FrameType> {
    match c {
        0 => Some(FrameType::I),
        1 => Some(FrameType::P),
        2 => Some(FrameType::B),
        _ => None,
    }
}

/// Serialises a container into its two tiers.
pub fn serialize_container(video: &VideoContainer) -> TieredBytes {
    // Lay out payload sections first so the table can record offsets.
    let mut important_payloads = Vec::new();
    let mut unimportant = Vec::new();
    struct Row {
        index: u32,
        ftype: u8,
        tier: u8, // 0 = important, 1 = unimportant
        offset: u64,
        len: u32,
        crc: u32,
    }
    let mut rows = Vec::with_capacity(video.frames.len());
    for f in &video.frames {
        let (tier, buf) = match f.frame_type {
            FrameType::I => (0u8, &mut important_payloads),
            _ => (1u8, &mut unimportant),
        };
        let offset = buf.len() as u64;
        buf.extend_from_slice(&f.payload);
        rows.push(Row {
            index: f.index as u32,
            ftype: type_code(f.frame_type),
            tier,
            offset,
            len: f.payload.len() as u32,
            crc: crc32(&f.payload),
        });
    }

    let mut important = Vec::new();
    important.extend_from_slice(MAGIC);
    important.push(VERSION);
    put_u32(&mut important, video.width as u32);
    put_u32(&mut important, video.height as u32);
    important.extend_from_slice(&video.fps.to_le_bytes());
    put_u32(&mut important, video.gop.gop_len as u32);
    important.push(u8::from(video.gop.use_b_frames));
    important.push(video.gop.quant);
    put_u32(&mut important, video.frames.len() as u32);
    for row in &rows {
        put_u32(&mut important, row.index);
        important.push(row.ftype);
        important.push(row.tier);
        put_u64(&mut important, row.offset);
        put_u32(&mut important, row.len);
        put_u32(&mut important, row.crc);
    }
    important.extend_from_slice(&important_payloads);

    TieredBytes {
        important,
        unimportant,
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ContainerError> {
        if self.pos + n > self.data.len() {
            return Err(ContainerError::Truncated { context });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn array<const N: usize>(&mut self, c: &'static str) -> Result<[u8; N], ContainerError> {
        let s = self.take(N, c)?;
        let mut out = [0u8; N];
        out.copy_from_slice(s);
        Ok(out)
    }
    fn u8(&mut self, c: &'static str) -> Result<u8, ContainerError> {
        Ok(self.take(1, c)?[0])
    }
    fn u16(&mut self, c: &'static str) -> Result<u16, ContainerError> {
        Ok(u16::from_le_bytes(self.array(c)?))
    }
    fn u32(&mut self, c: &'static str) -> Result<u32, ContainerError> {
        Ok(u32::from_le_bytes(self.array(c)?))
    }
    fn u64(&mut self, c: &'static str) -> Result<u64, ContainerError> {
        Ok(u64::from_le_bytes(self.array(c)?))
    }
}

/// Parses the two tiers back into frame records.
///
/// The important tier must be intact (it is stored at `r + g` fault
/// tolerance); unimportant-tier damage surfaces as `None` frames.
pub fn parse_container(
    important: &[u8],
    unimportant: &[u8],
) -> Result<ParsedVideo, ContainerError> {
    let mut r = Reader {
        data: important,
        pos: 0,
    };
    let magic = r.take(4, "magic")?;
    if magic != MAGIC {
        return Err(ContainerError::BadHeader(format!("magic {magic:02x?}")));
    }
    let version = r.u8("version")?;
    if version != VERSION {
        return Err(ContainerError::BadHeader(format!("version {version}")));
    }
    let width = r.u32("width")? as usize;
    let height = r.u32("height")? as usize;
    let fps = r.u16("fps")?;
    let gop_len = r.u32("gop_len")? as usize;
    if gop_len == 0 {
        return Err(ContainerError::BadHeader("gop_len 0".into()));
    }
    let use_b_frames = r.u8("use_b")? != 0;
    let quant = r.u8("quant")?;
    let count = r.u32("frame count")? as usize;

    struct Row {
        index: usize,
        ftype: FrameType,
        tier: u8,
        offset: usize,
        len: usize,
        crc: u32,
    }
    let mut rows = Vec::with_capacity(count);
    for i in 0..count {
        let index = r.u32("frame index")? as usize;
        let ftype = type_from_code(r.u8("frame type")?)
            .ok_or_else(|| ContainerError::BadFrameTable(format!("frame {i}: bad type")))?;
        let tier = r.u8("tier")?;
        if tier > 1 {
            return Err(ContainerError::BadFrameTable(format!("frame {i}: bad tier {tier}")));
        }
        let offset = r.u64("offset")? as usize;
        let len = r.u32("len")? as usize;
        let crc = r.u32("crc")?;
        if index != i {
            return Err(ContainerError::BadFrameTable(format!(
                "frame {i}: display index {index} out of order"
            )));
        }
        rows.push(Row {
            index,
            ftype,
            tier,
            offset,
            len,
            crc,
        });
    }
    let important_payloads = &important[r.pos..];

    let mut frames = Vec::with_capacity(count);
    for row in rows {
        let src = if row.tier == 0 {
            important_payloads
        } else {
            unimportant
        };
        let payload = src.get(row.offset..row.offset + row.len);
        match payload {
            Some(p) if crc32(p) == row.crc => frames.push(Some(EncodedFrame {
                index: row.index,
                frame_type: row.ftype,
                payload: p.to_vec(),
            })),
            // Out-of-bounds I-frame payloads mean a corrupt important
            // tier, which we must not paper over.
            None if row.tier == 0 => {
                return Err(ContainerError::Truncated {
                    context: "important payload",
                })
            }
            _ => frames.push(None),
        }
    }

    Ok(ParsedVideo {
        width,
        height,
        fps,
        gop: GopConfig {
            gop_len,
            use_b_frames,
            quant,
        },
        frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode_stream, GopConfig};
    use crate::synth::SyntheticVideo;

    fn sample_container() -> VideoContainer {
        let frames = SyntheticVideo::new(32, 24, 60.0, 42, 2).frames(24);
        let gop = GopConfig {
            gop_len: 12,
            use_b_frames: true,
            quant: 2,
        };
        VideoContainer {
            width: 32,
            height: 24,
            fps: 60,
            gop,
            frames: encode_stream(&frames, &gop),
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_intact() {
        let video = sample_container();
        let tiers = serialize_container(&video);
        let parsed = parse_container(&tiers.important, &tiers.unimportant).unwrap();
        assert_eq!(parsed.width, 32);
        assert_eq!(parsed.height, 24);
        assert_eq!(parsed.fps, 60);
        assert_eq!(parsed.gop.gop_len, 12);
        assert!(parsed.gop.use_b_frames);
        assert_eq!(parsed.frames.len(), video.frames.len());
        for (got, want) in parsed.frames.iter().zip(&video.frames) {
            assert_eq!(got.as_ref(), Some(want));
        }
    }

    #[test]
    fn i_frames_live_in_the_important_tier() {
        let video = sample_container();
        let tiers = serialize_container(&video);
        // The unimportant tier holds only P/B payloads: its size equals
        // their sum.
        let pb_bytes: usize = video
            .frames
            .iter()
            .filter(|f| f.frame_type != FrameType::I)
            .map(|f| f.payload.len())
            .sum();
        assert_eq!(tiers.unimportant.len(), pb_bytes);
        // And the important tier carries the I-frames + metadata.
        let i_bytes: usize = video
            .frames
            .iter()
            .filter(|f| f.frame_type == FrameType::I)
            .map(|f| f.payload.len())
            .sum();
        assert!(tiers.important.len() > i_bytes);
    }

    #[test]
    fn unimportant_damage_degrades_to_lost_frames() {
        let video = sample_container();
        let tiers = serialize_container(&video);
        let mut damaged = tiers.unimportant.clone();
        // Zero a window in the middle, as a tiered repair would.
        let mid = damaged.len() / 2;
        let end = (mid + damaged.len() / 4).min(damaged.len());
        damaged[mid..end].fill(0);
        let parsed = parse_container(&tiers.important, &damaged).unwrap();
        let lost: Vec<usize> = parsed
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_none())
            .map(|(i, _)| i)
            .collect();
        assert!(!lost.is_empty(), "zeroing a quarter of the tier must hit frames");
        // I-frames never live there:
        for &i in &lost {
            assert_ne!(video.frames[i].frame_type, FrameType::I);
        }
        // Undamaged frames parse exactly.
        for (i, f) in parsed.frames.iter().enumerate() {
            if let Some(f) = f {
                assert_eq!(f, &video.frames[i]);
            }
        }
    }

    #[test]
    fn important_damage_is_a_hard_error() {
        let video = sample_container();
        let tiers = serialize_container(&video);
        // Truncating the important tier must error, not silently lose.
        let truncated = &tiers.important[..tiers.important.len() - 5];
        assert!(parse_container(truncated, &tiers.unimportant).is_err());
        // Bad magic:
        let mut bad = tiers.important.clone();
        bad[0] = b'X';
        assert!(matches!(
            parse_container(&bad, &tiers.unimportant),
            Err(ContainerError::BadHeader(_))
        ));
    }

    #[test]
    fn empty_video_round_trips() {
        let video = VideoContainer {
            width: 16,
            height: 16,
            fps: 30,
            gop: GopConfig { gop_len: 4, use_b_frames: false, quant: 0 },
            frames: Vec::new(),
        };
        let tiers = serialize_container(&video);
        let parsed = parse_container(&tiers.important, &tiers.unimportant).unwrap();
        assert!(parsed.frames.is_empty());
        assert!(tiers.unimportant.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::codec::{EncodedFrame, FrameType, GopConfig};
    use proptest::prelude::*;

    fn arb_frames() -> impl Strategy<Value = Vec<EncodedFrame>> {
        proptest::collection::vec(
            (0usize..3, proptest::collection::vec(any::<u8>(), 0..200)),
            0..24,
        )
        .prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(index, (t, payload))| EncodedFrame {
                    index,
                    frame_type: match t {
                        0 => FrameType::I,
                        1 => FrameType::P,
                        _ => FrameType::B,
                    },
                    payload,
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any frame list round-trips through the tiered container.
        #[test]
        fn container_round_trips_arbitrary_frames(
            frames in arb_frames(),
            width in 1usize..4096,
            height in 1usize..4096,
            fps in 1u16..240,
            gop_len in 1usize..30,
            use_b: bool,
            quant: u8,
        ) {
            let video = VideoContainer {
                width,
                height,
                fps,
                gop: GopConfig { gop_len, use_b_frames: use_b, quant },
                frames,
            };
            let tiers = serialize_container(&video);
            let parsed = parse_container(&tiers.important, &tiers.unimportant).unwrap();
            prop_assert_eq!(parsed.width, video.width);
            prop_assert_eq!(parsed.height, video.height);
            prop_assert_eq!(parsed.fps, video.fps);
            prop_assert_eq!(parsed.gop, video.gop);
            prop_assert_eq!(parsed.frames.len(), video.frames.len());
            for (got, want) in parsed.frames.iter().zip(&video.frames) {
                prop_assert_eq!(got.as_ref(), Some(want));
            }
        }

        /// Parsing never panics on arbitrary corrupt important tiers — it
        /// fails with a typed error or succeeds.
        #[test]
        fn parser_is_total_on_garbage(junk in proptest::collection::vec(any::<u8>(), 0..300)) {
            let _ = parse_container(&junk, &[]);
        }

        /// Unimportant-tier corruption is contained: parsing still
        /// succeeds and intact frames come back byte-exact.
        #[test]
        fn unimportant_corruption_is_contained(
            frames in arb_frames(),
            flips in proptest::collection::vec((any::<proptest::sample::Index>(), any::<u8>()), 1..8),
        ) {
            let video = VideoContainer {
                width: 8,
                height: 8,
                fps: 30,
                gop: GopConfig { gop_len: 6, use_b_frames: true, quant: 0 },
                frames,
            };
            let tiers = serialize_container(&video);
            let mut damaged = tiers.unimportant.clone();
            if damaged.is_empty() {
                return Ok(());
            }
            for (idx, val) in flips {
                let i = idx.index(damaged.len());
                damaged[i] ^= val; // raw-xor-ok: test fault injection, single byte
            }
            let parsed = parse_container(&tiers.important, &damaged).unwrap();
            for (got, want) in parsed.frames.iter().zip(&video.frames) {
                if let Some(f) = got {
                    prop_assert_eq!(f, want, "CRC accepted a corrupt frame");
                }
            }
        }
    }
}
