//! The on-disk vault: a miniature tiered storage cluster in a directory.
//!
//! Layout:
//!
//! ```text
//! vault/
//!   config.json            code parameters
//!   state.json             dead-node set
//!   nodes/<n>/<obj>_<s>.shard   one file per (node, object, stripe)
//!   objects/<id>.json      per-object metadata
//! ```
//!
//! Killing a node deletes its directory (disk-failure semantics); repair
//! runs the tiered decoder per stripe and rewrites every lost shard it
//! could rebuild, recording the byte ranges it could not — exactly the
//! pipeline a real deployment of the paper's system would run.

use approx_code::{tiered, ApproxCode, BaseFamily, Structure};
use apec_ec::{EncodeSession, ErasureCode};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Vault-level errors, with enough context to be actionable from a shell.
#[derive(Debug)]
pub enum VaultError {
    /// Filesystem problem.
    Io(std::io::Error),
    /// Malformed or missing vault metadata.
    Corrupt(String),
    /// User error (bad id, bad parameters, ...).
    User(String),
}

impl fmt::Display for VaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VaultError::Io(e) => write!(f, "i/o error: {e}"),
            VaultError::Corrupt(m) => write!(f, "vault corrupt: {m}"),
            VaultError::User(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for VaultError {}

impl From<std::io::Error> for VaultError {
    fn from(e: std::io::Error) -> Self {
        VaultError::Io(e)
    }
}

impl From<apec_ec::EcError> for VaultError {
    fn from(e: apec_ec::EcError) -> Self {
        VaultError::User(format!("codec: {e}"))
    }
}

/// Persisted code configuration.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct VaultConfig {
    /// Base family name: `rs`, `lrc`, `star`, `tip`.
    pub family: String,
    /// Data nodes per stripe.
    pub k: usize,
    /// Local parities per stripe.
    pub r: usize,
    /// Global parities.
    pub g: usize,
    /// Stripes per global stripe (importance ratio 1/h).
    pub h: usize,
    /// `even` or `uneven`.
    pub structure: String,
    /// Shard length in bytes.
    pub shard_len: usize,
}

impl VaultConfig {
    /// Instantiates the code this vault stores under.
    pub fn code(&self) -> Result<ApproxCode, VaultError> {
        let family = match self.family.as_str() {
            "rs" => BaseFamily::Rs,
            "lrc" => BaseFamily::Lrc,
            "star" => BaseFamily::Star,
            "tip" => BaseFamily::Tip,
            other => return Err(VaultError::User(format!("unknown family '{other}'"))),
        };
        let structure = match self.structure.as_str() {
            "even" => Structure::Even,
            "uneven" => Structure::Uneven,
            other => return Err(VaultError::User(format!("unknown structure '{other}'"))),
        };
        ApproxCode::build_named(family, self.k, self.r, self.g, self.h, structure)
            .map_err(|e| VaultError::User(format!("invalid parameters: {e}")))
    }

    /// Validates the configured shard length against the code's alignment.
    pub fn check_shard_len(&self, code: &ApproxCode) -> Result<(), VaultError> {
        if self.shard_len == 0 || !self.shard_len.is_multiple_of(code.shard_alignment()) {
            return Err(VaultError::User(format!(
                "shard_len {} must be a positive multiple of {}",
                self.shard_len,
                code.shard_alignment()
            )));
        }
        Ok(())
    }
}

/// Per-object metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectMeta {
    /// Object id (also the file stem).
    pub id: String,
    /// Stripe count.
    pub stripes: usize,
    /// Bytes in the important stream.
    pub important_len: usize,
    /// Bytes in the unimportant stream.
    pub unimportant_len: usize,
}

/// Mutable vault state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VaultState {
    /// Nodes currently dead (killed and not yet repaired onto).
    pub dead_nodes: Vec<usize>,
}

/// A handle to an on-disk vault.
pub struct Vault {
    root: PathBuf,
    /// The vault's code configuration.
    pub config: VaultConfig,
    code: ApproxCode,
}

/// Outcome of a repair pass over one object.
#[derive(Debug, Default)]
pub struct RepairSummary {
    /// Shard files rewritten.
    pub shards_rebuilt: usize,
    /// Bytes that could not be rebuilt (zero-filled, left to the
    /// approximate-recovery layer).
    pub bytes_lost: usize,
    /// `true` if every important byte survived.
    pub important_intact: bool,
}

impl Vault {
    /// Creates a new vault directory.
    pub fn init(root: &Path, config: VaultConfig) -> Result<Vault, VaultError> {
        let code = config.code()?;
        config.check_shard_len(&code)?;
        if root.exists() && root.join("config.json").exists() {
            return Err(VaultError::User(format!(
                "{} already contains a vault",
                root.display()
            )));
        }
        fs::create_dir_all(root.join("objects"))?;
        for n in 0..code.total_nodes() {
            fs::create_dir_all(root.join("nodes").join(n.to_string()))?;
        }
        fs::write(
            root.join("config.json"),
            serde_json::to_vec_pretty(&config).expect("config serialises"),
        )?;
        fs::write(
            root.join("state.json"),
            serde_json::to_vec_pretty(&VaultState::default()).expect("state serialises"),
        )?;
        Ok(Vault {
            root: root.to_path_buf(),
            config,
            code,
        })
    }

    /// Opens an existing vault.
    pub fn open(root: &Path) -> Result<Vault, VaultError> {
        let raw = fs::read(root.join("config.json"))
            .map_err(|e| VaultError::Corrupt(format!("missing config.json: {e}")))?;
        let config: VaultConfig = serde_json::from_slice(&raw)
            .map_err(|e| VaultError::Corrupt(format!("bad config.json: {e}")))?;
        let code = config.code()?;
        config.check_shard_len(&code)?;
        Ok(Vault {
            root: root.to_path_buf(),
            config,
            code,
        })
    }

    /// The vault's code.
    pub fn code(&self) -> &ApproxCode {
        &self.code
    }

    fn state_path(&self) -> PathBuf {
        self.root.join("state.json")
    }

    /// Reads the mutable state.
    pub fn state(&self) -> Result<VaultState, VaultError> {
        let raw = fs::read(self.state_path())
            .map_err(|e| VaultError::Corrupt(format!("missing state.json: {e}")))?;
        serde_json::from_slice(&raw).map_err(|e| VaultError::Corrupt(format!("bad state.json: {e}")))
    }

    fn write_state(&self, state: &VaultState) -> Result<(), VaultError> {
        fs::write(
            self.state_path(),
            serde_json::to_vec_pretty(state).expect("state serialises"),
        )?;
        Ok(())
    }

    fn shard_path(&self, node: usize, id: &str, stripe: usize) -> PathBuf {
        self.root
            .join("nodes")
            .join(node.to_string())
            .join(format!("{id}_{stripe}.shard"))
    }

    fn meta_path(&self, id: &str) -> PathBuf {
        self.root.join("objects").join(format!("{id}.json"))
    }

    fn check_id(id: &str) -> Result<(), VaultError> {
        if id.is_empty()
            || !id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(VaultError::User(format!(
                "object id '{id}' must be non-empty [A-Za-z0-9_-]"
            )));
        }
        Ok(())
    }

    /// Stores a two-tier object (important + unimportant byte streams).
    pub fn put(
        &self,
        id: &str,
        important: &[u8],
        unimportant: &[u8],
    ) -> Result<ObjectMeta, VaultError> {
        Self::check_id(id)?;
        if self.meta_path(id).exists() {
            return Err(VaultError::User(format!("object '{id}' already exists")));
        }
        let dead = self.state()?.dead_nodes;
        if !dead.is_empty() {
            return Err(VaultError::User(format!(
                "cannot write while nodes {dead:?} are dead; repair first"
            )));
        }
        let packed = tiered::pack(&self.code, important, unimportant, self.config.shard_len)?;
        // One warm parity arena for the whole object: parity streams to
        // disk straight from the session's buffers, so no per-stripe
        // parity allocation or copy happens on the put path.
        let mut session = EncodeSession::new();
        let mut refs: Vec<&[u8]> = Vec::with_capacity(self.code.data_nodes());
        for (s, shards) in packed.stripes.iter().enumerate() {
            refs.clear();
            refs.extend(shards.iter().map(|b| b.as_slice()));
            let parity = session.encode(&self.code, &refs)?;
            for (node, bytes) in refs
                .iter()
                .copied()
                .chain(parity.iter().map(|p| p.as_slice()))
                .enumerate()
            {
                fs::write(self.shard_path(node, id, s), bytes)?;
            }
        }
        let meta = ObjectMeta {
            id: id.to_string(),
            stripes: packed.stripes.len(),
            important_len: important.len(),
            unimportant_len: unimportant.len(),
        };
        fs::write(
            self.meta_path(id),
            serde_json::to_vec_pretty(&meta).expect("meta serialises"),
        )?;
        Ok(meta)
    }

    /// Object metadata.
    pub fn meta(&self, id: &str) -> Result<ObjectMeta, VaultError> {
        let raw = fs::read(self.meta_path(id))
            .map_err(|_| VaultError::User(format!("no such object '{id}'")))?;
        serde_json::from_slice(&raw)
            .map_err(|e| VaultError::Corrupt(format!("bad metadata for '{id}': {e}")))
    }

    /// Lists stored objects.
    pub fn list(&self) -> Result<Vec<ObjectMeta>, VaultError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root.join("objects"))? {
            let raw = fs::read(entry?.path())?;
            out.push(
                serde_json::from_slice(&raw)
                    .map_err(|e| VaultError::Corrupt(format!("bad object metadata: {e}")))?,
            );
        }
        out.sort_by(|a: &ObjectMeta, b: &ObjectMeta| a.id.cmp(&b.id));
        Ok(out)
    }

    /// Kills a node: its shard files are deleted.
    pub fn kill(&self, node: usize) -> Result<(), VaultError> {
        if node >= self.code.total_nodes() {
            return Err(VaultError::User(format!(
                "node {node} out of range (0..{})",
                self.code.total_nodes()
            )));
        }
        let dir = self.root.join("nodes").join(node.to_string());
        fs::remove_dir_all(&dir)?;
        fs::create_dir_all(&dir)?;
        let mut state = self.state()?;
        if !state.dead_nodes.contains(&node) {
            state.dead_nodes.push(node);
            state.dead_nodes.sort_unstable();
        }
        self.write_state(&state)
    }

    fn load_stripe(
        &self,
        id: &str,
        stripe: usize,
    ) -> Result<Vec<Option<Vec<u8>>>, VaultError> {
        (0..self.code.total_nodes())
            .map(|node| {
                match fs::read(self.shard_path(node, id, stripe)) {
                    Ok(bytes) if bytes.len() == self.config.shard_len => Ok(Some(bytes)),
                    Ok(bytes) => Err(VaultError::Corrupt(format!(
                        "shard {node}/{id}_{stripe} has {} bytes, expected {}",
                        bytes.len(),
                        self.config.shard_len
                    ))),
                    Err(_) => Ok(None),
                }
            })
            .collect()
    }

    /// Repairs every object after node failures: rebuilds what the code
    /// permits, writes the shards back, and clears the dead set.
    pub fn repair(&self) -> Result<RepairSummary, VaultError> {
        let mut summary = RepairSummary {
            important_intact: true,
            ..RepairSummary::default()
        };
        for meta in self.list()? {
            for s in 0..meta.stripes {
                let mut stripe = self.load_stripe(&meta.id, s)?;
                let missing: Vec<usize> =
                    (0..stripe.len()).filter(|&i| stripe[i].is_none()).collect();
                if missing.is_empty() {
                    continue;
                }
                let report = self.code.reconstruct_tiered(&mut stripe)?;
                summary.important_intact &= report.important_recovered;
                summary.bytes_lost += report
                    .lost_ranges
                    .iter()
                    .map(|(_, r)| r.len())
                    .sum::<usize>();
                for &node in &missing {
                    let bytes = stripe[node].as_ref().expect("tiered repair materialises");
                    fs::write(self.shard_path(node, &meta.id, s), bytes)?;
                    summary.shards_rebuilt += 1;
                }
            }
        }
        self.write_state(&VaultState::default())?;
        Ok(summary)
    }

    /// Fetches an object's two streams, reconstructing degraded stripes in
    /// memory if nodes are currently dead (the stored files are untouched).
    pub fn get(&self, id: &str) -> Result<(Vec<u8>, Vec<u8>, ObjectMeta), VaultError> {
        let meta = self.meta(id)?;
        let mut stripes = Vec::with_capacity(meta.stripes);
        for s in 0..meta.stripes {
            let mut stripe = self.load_stripe(id, s)?;
            if stripe.iter().any(Option::is_none) {
                self.code.reconstruct_tiered(&mut stripe)?;
            }
            stripes.push(
                stripe
                    .into_iter()
                    .take(self.code.data_nodes())
                    .map(|s| s.expect("materialised"))
                    .collect::<Vec<_>>(),
            );
        }
        let (imp, unimp) = tiered::unpack(
            &self.code,
            &stripes,
            meta.important_len,
            meta.unimportant_len,
        );
        Ok((imp, unimp, meta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "apec-vault-test-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn test_config() -> VaultConfig {
        VaultConfig {
            family: "rs".into(),
            k: 4,
            r: 1,
            g: 2,
            h: 3,
            structure: "uneven".into(),
            shard_len: 3 * 64, // alignment for Uneven RS is sub=1 → any; keep multiple anyway
        }
    }

    #[test]
    fn init_open_round_trip() {
        let root = temp_root("init");
        let v = Vault::init(&root, test_config()).unwrap();
        assert_eq!(v.code().total_nodes(), 17);
        let v2 = Vault::open(&root).unwrap();
        assert_eq!(v2.config, test_config());
        // Double init is refused.
        assert!(matches!(
            Vault::init(&root, test_config()),
            Err(VaultError::User(_))
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn bad_configs_are_rejected() {
        let root = temp_root("badcfg");
        let mut cfg = test_config();
        cfg.family = "zfec".into();
        assert!(Vault::init(&root, cfg).is_err());
        let mut cfg = test_config();
        cfg.shard_len = 0;
        assert!(Vault::init(&root, cfg).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn put_get_round_trip() {
        let root = temp_root("putget");
        let v = Vault::init(&root, test_config()).unwrap();
        let imp: Vec<u8> = (0..500).map(|i| (i % 251) as u8).collect();
        let unimp: Vec<u8> = (0..2100).map(|i| (i * 3 % 251) as u8).collect();
        let meta = v.put("clip-1", &imp, &unimp).unwrap();
        assert!(meta.stripes >= 1);
        let (i2, u2, _) = v.get("clip-1").unwrap();
        assert_eq!(i2, imp);
        assert_eq!(u2, unimp);
        // Duplicate put refused; bad ids refused.
        assert!(v.put("clip-1", &imp, &unimp).is_err());
        assert!(v.put("bad id!", &imp, &unimp).is_err());
        assert!(v.get("nope").is_err());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn kill_within_tolerance_then_repair_is_lossless() {
        let root = temp_root("repair1");
        let v = Vault::init(&root, test_config()).unwrap();
        let imp = vec![7u8; 300];
        let unimp = vec![9u8; 900];
        v.put("obj", &imp, &unimp).unwrap();
        v.kill(2).unwrap();
        assert_eq!(v.state().unwrap().dead_nodes, vec![2]);
        // Degraded read still works.
        let (i2, u2, _) = v.get("obj").unwrap();
        assert_eq!((i2, u2), (imp.clone(), unimp.clone()));
        let summary = v.repair().unwrap();
        assert!(summary.important_intact);
        assert_eq!(summary.bytes_lost, 0);
        assert!(summary.shards_rebuilt >= 1);
        assert!(v.state().unwrap().dead_nodes.is_empty());
        let (i3, u3, _) = v.get("obj").unwrap();
        assert_eq!((i3, u3), (imp, unimp));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn beyond_tolerance_repair_preserves_important_bytes() {
        let root = temp_root("repair2");
        let v = Vault::init(&root, test_config()).unwrap();
        let imp: Vec<u8> = (0..400).map(|i| i as u8).collect();
        let unimp: Vec<u8> = (0..1600).map(|i| (i / 3) as u8).collect();
        v.put("obj", &imp, &unimp).unwrap();
        // Two data nodes of stripe 1 (unimportant under Uneven): beyond
        // the local tolerance r=1.
        let code = v.code();
        let n1 = code.params().data_node(1, 0);
        let n2 = code.params().data_node(1, 1);
        v.kill(n1).unwrap();
        v.kill(n2).unwrap();
        let summary = v.repair().unwrap();
        assert!(summary.important_intact);
        assert!(summary.bytes_lost > 0);
        let (i2, u2, _) = v.get("obj").unwrap();
        assert_eq!(i2, imp, "important stream byte-exact");
        assert_ne!(u2, unimp, "unimportant stream has zero-filled holes");
        assert_eq!(u2.len(), unimp.len());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn writes_blocked_while_degraded() {
        let root = temp_root("blocked");
        let v = Vault::init(&root, test_config()).unwrap();
        v.kill(0).unwrap();
        assert!(matches!(
            v.put("x", &[1], &[2]),
            Err(VaultError::User(_))
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn kill_out_of_range_is_refused() {
        let root = temp_root("range");
        let v = Vault::init(&root, test_config()).unwrap();
        assert!(v.kill(99).is_err());
        fs::remove_dir_all(&root).unwrap();
    }
}
