//! The on-disk vault: a thin CLI-facing adapter over [`apec_store`].
//!
//! All shard and metadata I/O lives in the `apec-store` crate (CRC-32
//! framed shard files, per-object Merkle manifests, crash-safe atomic
//! metadata writes, object-granular locking); this module only adapts
//! that library to the one-shot shapes the `apec` subcommands want —
//! a handle owning its codec session, tuple-returning `get`, and the
//! historical `Vault*` names the commands were written against.
//!
//! Layout (owned by `apec_store::Store`):
//!
//! ```text
//! vault/
//!   config.json            code parameters
//!   state.json             dead-node set
//!   nodes/<n>/<obj>_<s>.shard   CRC-framed, one file per (node, object, stripe)
//!   objects/<id>.json      per-object manifest (meta + Merkle leaves + root)
//! ```

use approx_code::ApproxCode;
use std::path::Path;
use std::sync::Mutex;

pub use apec_store::{
    ObjectMeta, RepairSummary, StoreConfig as VaultConfig, StoreError as VaultError,
    StoreState as VaultState,
};
use apec_store::{Store, StoreSession};

/// A handle to an on-disk vault: a [`Store`] plus one warm codec
/// session reused across this process's operations.
pub struct Vault {
    store: Store,
    session: Mutex<StoreSession>,
}

impl Vault {
    /// Creates a new vault directory.
    pub fn init(root: &Path, config: VaultConfig) -> Result<Vault, VaultError> {
        Ok(Vault::wrap(Store::init(root, config)?))
    }

    /// Opens an existing vault.
    pub fn open(root: &Path) -> Result<Vault, VaultError> {
        Ok(Vault::wrap(Store::open(root)?))
    }

    fn wrap(store: Store) -> Vault {
        Vault {
            store,
            session: Mutex::new(StoreSession::new()),
        }
    }

    fn session(&self) -> std::sync::MutexGuard<'_, StoreSession> {
        match self.session.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The vault's code.
    pub fn code(&self) -> &ApproxCode {
        self.store.code()
    }

    /// The vault's configuration.
    pub fn config(&self) -> &VaultConfig {
        self.store.config()
    }

    /// Reads the mutable state (dead-node set).
    pub fn state(&self) -> Result<VaultState, VaultError> {
        self.store.state()
    }

    /// Stores a two-tier object (important + unimportant byte streams).
    pub fn put(
        &self,
        id: &str,
        important: &[u8],
        unimportant: &[u8],
    ) -> Result<ObjectMeta, VaultError> {
        self.store
            .put_object(&mut self.session(), id, important, unimportant)
    }

    /// Lists stored objects.
    pub fn list(&self) -> Result<Vec<ObjectMeta>, VaultError> {
        self.store.list()
    }

    /// Kills a node: its shard files are deleted.
    pub fn kill(&self, node: usize) -> Result<(), VaultError> {
        self.store.kill_node(node)
    }

    /// Repairs every object after node failures: rebuilds what the code
    /// permits, writes the shards back, and clears the dead set.
    pub fn repair(&self) -> Result<RepairSummary, VaultError> {
        self.store.repair_all()
    }

    /// Fetches an object's two streams, reconstructing degraded stripes
    /// in memory if nodes are currently dead and verifying every shard
    /// against its CRC and Merkle leaf on the way.
    pub fn get(&self, id: &str) -> Result<(Vec<u8>, Vec<u8>, ObjectMeta), VaultError> {
        let out = self.store.read_object(&mut self.session(), id, &[])?;
        Ok((out.important, out.unimportant, out.meta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "apec-vault-test-{}-{}-{}",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn test_config() -> VaultConfig {
        VaultConfig::demo("rs")
    }

    // The deep behaviour (corruption detection, repair semantics,
    // concurrency) is covered in `apec-store`'s own tests; these only
    // prove the CLI adapter delegates correctly end-to-end.

    #[test]
    fn init_open_round_trip() {
        let root = temp_root("init");
        let v = Vault::init(&root, test_config()).unwrap();
        assert_eq!(apec_ec::ErasureCode::total_nodes(v.code()), 17);
        let v2 = Vault::open(&root).unwrap();
        assert_eq!(*v2.config(), test_config());
        assert!(matches!(
            Vault::init(&root, test_config()),
            Err(VaultError::User(_))
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn put_get_round_trip() {
        let root = temp_root("putget");
        let v = Vault::init(&root, test_config()).unwrap();
        let imp: Vec<u8> = (0..500).map(|i| (i % 251) as u8).collect();
        let unimp: Vec<u8> = (0..2100).map(|i| (i * 3 % 251) as u8).collect();
        let meta = v.put("clip-1", &imp, &unimp).unwrap();
        assert!(meta.stripes >= 1);
        let (i2, u2, _) = v.get("clip-1").unwrap();
        assert_eq!(i2, imp);
        assert_eq!(u2, unimp);
        assert!(v.put("clip-1", &imp, &unimp).is_err());
        assert!(v.put("bad id!", &imp, &unimp).is_err());
        assert!(v.get("nope").is_err());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn kill_repair_round_trip() {
        let root = temp_root("repair");
        let v = Vault::init(&root, test_config()).unwrap();
        let imp = vec![7u8; 300];
        let unimp = vec![9u8; 900];
        v.put("obj", &imp, &unimp).unwrap();
        v.kill(2).unwrap();
        assert_eq!(v.state().unwrap().dead_nodes, vec![2]);
        let (i2, u2, _) = v.get("obj").unwrap();
        assert_eq!((i2, u2), (imp.clone(), unimp.clone()));
        let summary = v.repair().unwrap();
        assert!(summary.important_intact);
        assert_eq!(summary.bytes_lost, 0);
        assert!(summary.shards_rebuilt >= 1);
        assert!(v.state().unwrap().dead_nodes.is_empty());
        // Writes blocked while degraded, re-admitted after repair.
        v.kill(0).unwrap();
        assert!(matches!(v.put("x", &[1], &[2]), Err(VaultError::User(_))));
        v.repair().unwrap();
        v.put("x", &[1], &[2]).unwrap();
        fs::remove_dir_all(&root).unwrap();
    }
}
