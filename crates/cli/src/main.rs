//! `apec` — a tiered video vault on the Approximate Code framework.
//!
//! ```text
//! apec gen   --out clip.apv --frames 120 --width 96 --height 64 --seed 7
//! apec init  --dir vault --family star --k 5 --r 2 --g 1 --h 4 --structure uneven
//! apec put   --dir vault --id clip clip.apv
//! apec ls    --dir vault
//! apec kill  --dir vault --node 3 --node 7
//! apec repair --dir vault
//! apec get   --dir vault --id clip --out restored.apv
//! apec check clip.apv restored.apv
//! apec audit
//! apec tier  --seed 42 --ticks 60 --json report.json
//! apec serve --dir vault --addr 127.0.0.1:4701
//! apec load  --addr 127.0.0.1:4701 --seed 7 --json BENCH_serve.json
//! apec scrub --dir vault --inject 4 --repair 1
//! ```
//!
//! `gen` renders a synthetic 60 fps clip and compresses it with the
//! GOP codec; `.apv` files carry the two container tiers (important =
//! header + I-frames, unimportant = P/B-frames). `check` decodes both
//! files, interpolates any frames the damaged file lost, and reports
//! PSNR against the reference — the full §5.1 experiment on your own
//! vault.

#![forbid(unsafe_code)]

mod args;
mod clip;
mod serve_cmd;
mod tier_cmd;
mod vault;

use args::{Args, CliError};
use clip::{read_apv, write_apv, ClipStats};
use std::path::PathBuf;
use std::process::ExitCode;
use vault::{Vault, VaultConfig};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("apec: {e}");
            ExitCode::from(1)
        }
    }
}

const USAGE: &str = "\
usage: apec <command> [options]

commands:
  gen     --out FILE [--frames N] [--width W] [--height H] [--seed S] [--gop N] [--fps N]
  init    --dir DIR [--family rs|lrc|star|tip] [--k N] [--r N] [--g N] [--h N]
          [--structure even|uneven] [--shard-kb N]
  put     --dir DIR --id ID FILE.apv
  ls      --dir DIR
  kill    --dir DIR --node N [--node N ...]
  repair  --dir DIR
  get     --dir DIR --id ID --out FILE.apv
  check   REFERENCE.apv CANDIDATE.apv
  audit
  tier    [--seed S] [--videos N] [--ticks N] [--reads-per-tick N] [--nodes N]
          [--policy access|age|never] [--threshold N] [--window N] [--age N]
          [--family rs|lrc|star|tip] [--k N] [--r N] [--g N] [--h N]
          [--structure even|uneven] [--cold-shard N] [--hot-k N] [--hot-r N]
          [--failure-every N] [--repair-after N] [--json FILE]
  serve   --dir DIR [--addr HOST:PORT] [--workers N] [--queue-cap N] [--demo 0|1]
          [--maint 0|1] [--scrub-seed S] [--scrub-mb N] [--cache-mb N]
  load    --addr HOST:PORT [--seed S] [--clients N] [--nodes N]
          [--imp-bytes N] [--unimp-bytes N] [--videos N] [--ticks N]
          [--reads-per-tick N] [--failure-every N] [--repair-after N]
          [--bitrot N] [--bitrot-seed S] [--heal-timeout-ms N]
          [--json FILE] [--scrub-json FILE] [--shutdown 0|1]
  scrub   --dir DIR [--seed S] [--repair 0|1] [--inject N] [--inject-seed S]

run 'apec <command> --help' is not a thing; this is the whole manual.";

fn run(argv: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some((cmd, rest)) = argv.split_first() else {
        println!("{USAGE}");
        return Ok(());
    };
    match cmd.as_str() {
        "gen" => cmd_gen(Args::parse(rest)?),
        "init" => cmd_init(Args::parse(rest)?),
        "put" => cmd_put(Args::parse(rest)?),
        "ls" => cmd_ls(Args::parse(rest)?),
        "kill" => cmd_kill(Args::parse(rest)?),
        "repair" => cmd_repair(Args::parse(rest)?),
        "get" => cmd_get(Args::parse(rest)?),
        "check" => cmd_check(Args::parse(rest)?),
        "audit" => cmd_audit(Args::parse(rest)?),
        "tier" => tier_cmd::run(Args::parse(rest)?),
        "serve" => serve_cmd::run_serve(Args::parse(rest)?),
        "load" => serve_cmd::run_load(Args::parse(rest)?),
        "scrub" => serve_cmd::run_scrub_cmd(Args::parse(rest)?),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(Box::new(CliError(format!(
            "unknown command '{other}'\n{USAGE}"
        )))),
    }
}

fn cmd_gen(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let out: PathBuf = args.require("out")?;
    let frames: usize = args.get_or("frames", 120)?;
    let width: usize = args.get_or("width", 96)?;
    let height: usize = args.get_or("height", 64)?;
    let seed: u64 = args.get_or("seed", 7)?;
    let gop: usize = args.get_or("gop", 12)?;
    let fps: u16 = args.get_or("fps", 60)?;
    args.finish()?;

    let stats = clip::generate(&out, width, height, frames, seed, gop, fps)?;
    println!(
        "wrote {}: {} frames {}x{} @{}fps, {} KiB important + {} KiB unimportant",
        out.display(),
        frames,
        width,
        height,
        fps,
        stats.important_len / 1024,
        stats.unimportant_len / 1024
    );
    Ok(())
}

fn cmd_init(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let dir: PathBuf = args.require("dir")?;
    let config = VaultConfig {
        family: args.get_or_str("family", "rs")?,
        k: args.get_or("k", 4)?,
        r: args.get_or("r", 1)?,
        g: args.get_or("g", 2)?,
        h: args.get_or("h", 3)?,
        structure: args.get_or_str("structure", "uneven")?,
        shard_len: args.get_or("shard-kb", 64usize)? * 1024,
    };
    args.finish()?;
    // Round the shard length up to the code's alignment so defaults work
    // for every family (array codes need multiples of rows·slots).
    let mut config = config;
    if let Ok(code) = config.code() {
        let align = apec_ec::ErasureCode::shard_alignment(&code);
        config.shard_len = config.shard_len.div_ceil(align).max(1) * align;
    }
    let vault = Vault::init(&dir, config)?;
    println!(
        "initialised {} under {} ({} nodes, overhead {:.3}x, important data tolerates {} failures)",
        dir.display(),
        apec_ec::ErasureCode::name(vault.code()),
        apec_ec::ErasureCode::total_nodes(vault.code()),
        apec_ec::ErasureCode::storage_overhead(vault.code()),
        vault.code().important_fault_tolerance(),
    );
    Ok(())
}

fn cmd_put(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let dir: PathBuf = args.require("dir")?;
    let id: String = args.require("id")?;
    let file: PathBuf = args.positional(0, "FILE.apv")?;
    args.finish()?;
    let vault = Vault::open(&dir)?;
    let (important, unimportant) = read_apv(&file)?;
    let meta = vault.put(&id, &important, &unimportant)?;
    println!(
        "stored '{}' as {} stripes ({} KiB important, {} KiB unimportant)",
        meta.id,
        meta.stripes,
        meta.important_len / 1024,
        meta.unimportant_len / 1024
    );
    Ok(())
}

fn cmd_ls(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let dir: PathBuf = args.require("dir")?;
    args.finish()?;
    let vault = Vault::open(&dir)?;
    let state = vault.state()?;
    println!(
        "vault {} — {} ({} KiB shards) — dead nodes: {:?}",
        dir.display(),
        apec_ec::ErasureCode::name(vault.code()),
        vault.config().shard_len / 1024,
        state.dead_nodes
    );
    for meta in vault.list()? {
        println!(
            "  {:<24} {:>4} stripes  {:>8} B important  {:>10} B unimportant",
            meta.id, meta.stripes, meta.important_len, meta.unimportant_len
        );
    }
    Ok(())
}

fn cmd_kill(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let dir: PathBuf = args.require("dir")?;
    let nodes = args.all::<usize>("node")?;
    args.finish()?;
    if nodes.is_empty() {
        return Err(Box::new(CliError("kill needs at least one --node".into())));
    }
    let vault = Vault::open(&dir)?;
    for &n in &nodes {
        vault.kill(n)?;
        println!("killed node {n} (shards deleted)");
    }
    Ok(())
}

fn cmd_repair(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let dir: PathBuf = args.require("dir")?;
    args.finish()?;
    let vault = Vault::open(&dir)?;
    let summary = vault.repair()?;
    println!(
        "repair: {} shards rebuilt, {} bytes unrecoverable (important data {})",
        summary.shards_rebuilt,
        summary.bytes_lost,
        if summary.important_intact {
            "intact"
        } else {
            "DAMAGED"
        }
    );
    Ok(())
}

fn cmd_get(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let dir: PathBuf = args.require("dir")?;
    let id: String = args.require("id")?;
    let out: PathBuf = args.require("out")?;
    args.finish()?;
    let vault = Vault::open(&dir)?;
    let (important, unimportant, meta) = vault.get(&id)?;
    write_apv(&out, &important, &unimportant)?;
    println!(
        "wrote {} ({} stripes read back)",
        out.display(),
        meta.stripes
    );
    Ok(())
}

fn cmd_check(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let reference: PathBuf = args.positional(0, "REFERENCE.apv")?;
    let candidate: PathBuf = args.positional(1, "CANDIDATE.apv")?;
    args.finish()?;
    let stats = clip::compare(&reference, &candidate)?;
    print_check(&stats);
    if stats.frames_unrecoverable > 0 {
        return Err(Box::new(CliError(
            "candidate has frames with no surviving neighbours".into(),
        )));
    }
    Ok(())
}

fn cmd_audit(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    args.finish()?;
    // Algebraic certification of every shipped code construction:
    // generator rank sweeps over the theoretical decodable sets plus
    // symbolic verification of the compiled recovery schedules.
    let report = apec_audit::audit_all();
    print!("{}", report.render());
    if report.passed() {
        Ok(())
    } else {
        Err(Box::new(CliError(
            "audit failed — see the report above".into(),
        )))
    }
}

fn print_check(stats: &ClipStats) {
    println!(
        "{} frames: {} intact, {} interpolated, {} unrecoverable",
        stats.frames_total,
        stats.frames_total - stats.frames_recovered - stats.frames_unrecoverable,
        stats.frames_recovered,
        stats.frames_unrecoverable
    );
    match stats.mean_recovered_psnr {
        Some(mean) => println!(
            "recovered-frame quality: mean {:.1} dB, worst {:.1} dB (paper bar: 35 dB)",
            mean,
            stats.min_recovered_psnr.unwrap_or(f64::INFINITY)
        ),
        None => println!("no frames needed recovery — streams are identical in effect"),
    }
}
