//! `apec serve`, `apec load` and `apec scrub`: the daemon, its
//! closed-loop driver, and the standalone maintenance pass.
//!
//! `serve` opens (or, with `--demo 1`, initialises) a store directory
//! and blocks serving the binary protocol until a client sends the
//! `shutdown` verb; `--maint 1` (the default) runs the background
//! scrubber/repair daemon alongside. `load` replays the tier engine's
//! seeded Zipf workload against a running daemon and prints — and
//! optionally writes as `BENCH_serve.json` — the client-observed
//! latency report; `--bitrot N` additionally injects seeded bit-rot
//! mid-run and proves the daemon heals it (`BENCH_scrub.json` via
//! `--scrub-json`). `scrub` runs one synchronous maintenance pass over
//! an offline store.

use crate::args::{Args, CliError};
use apec_maint::{run_scrub, MaintConfig};
use apec_serve::{load, serve, LoadConfig, ServerConfig};
use apec_store::{Store, StoreConfig};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::Arc;

/// `apec serve --dir DIR [--addr A] [--workers N] [--queue-cap N] [--demo 0|1]
///  [--maint 0|1] [--scrub-seed S] [--scrub-mb N] [--cache-mb N]`
pub fn run_serve(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let dir: PathBuf = args.require("dir")?;
    let addr: String = args.get_or_str("addr", "127.0.0.1:4701")?;
    let defaults = MaintConfig::default();
    let maint = (args.get_or("maint", 1usize)? != 0).then_some(MaintConfig {
        seed: args.get_or("scrub-seed", defaults.seed)?,
        scrub_budget_bytes: args.get_or("scrub-mb", defaults.scrub_budget_bytes >> 20)? << 20,
        ..defaults
    });
    let config = ServerConfig {
        workers: args.get_or("workers", ServerConfig::default().workers)?,
        queue_cap: args.get_or("queue-cap", ServerConfig::default().queue_cap)?,
        cache_bytes: args.get_or("cache-mb", ServerConfig::default().cache_bytes >> 20)? << 20,
        maint,
    };
    let demo: usize = args.get_or("demo", 0)?;
    args.finish()?;

    let store = if demo != 0 && !dir.join("config.json").exists() {
        Store::init(&dir, StoreConfig::demo("rs"))?
    } else {
        Store::open(&dir)?
    };
    let listener = TcpListener::bind(&addr)
        .map_err(|e| CliError(format!("cannot bind {addr}: {e}")))?;
    let (workers, queue_cap) = (config.workers, config.queue_cap);
    let maint_on = config.maint.is_some();
    let handle = serve(Arc::new(store), listener, config)?;
    println!(
        "serving {} on {} ({workers} workers, queue {queue_cap}, maintenance {}); \
         stop with the shutdown verb",
        dir.display(),
        handle.addr(),
        if maint_on { "on" } else { "off" },
    );
    handle.join();
    println!("daemon stopped");
    Ok(())
}

/// `apec scrub --dir DIR [--seed S] [--repair 0|1] [--inject N] [--inject-seed S]`
pub fn run_scrub_cmd(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let dir: PathBuf = args.require("dir")?;
    let seed: u64 = args.get_or("seed", 0)?;
    let repair: usize = args.get_or("repair", 1)?;
    let inject: u32 = args.get_or("inject", 0)?;
    let inject_seed: u64 = args.get_or("inject-seed", seed ^ 0xb17_0a7)?;
    args.finish()?;

    let store = Store::open(&dir)?;
    if inject > 0 {
        let hits = store.inject_bitrot(inject_seed, inject as usize)?;
        println!(
            "injected {} bit flips (seed {inject_seed}) across committed shards",
            hits.len()
        );
    }
    let run = run_scrub(&store, seed, repair != 0)?;
    println!(
        "scrub: {} objects, {} KiB checked, {} unhealthy shards found",
        run.objects,
        run.bytes_scanned / 1024,
        run.findings.len()
    );
    for f in &run.findings {
        println!("  {:<24} stripe {:>3} node {:>3}  {:?}", f.id, f.stripe, f.node, f.health);
    }
    let mut rebuilt = 0usize;
    let mut fully = true;
    for (id, r) in &run.repairs {
        rebuilt += r.shards_rebuilt;
        fully &= r.fully_recovered;
        println!(
            "  healed {:<17} {} shards rebuilt, {} bytes lost",
            id, r.shards_rebuilt, r.bytes_lost
        );
    }
    if repair != 0 {
        println!(
            "repair: {} shards rebuilt across {} objects ({})",
            rebuilt,
            run.repairs.len(),
            if fully { "all exact" } else { "approximate fallback used" }
        );
    } else if !run.findings.is_empty() {
        println!("repair skipped (--repair 0); findings left in place");
    }
    if !fully {
        return Err(Box::new(CliError(
            "scrub could not fully recover every stripe".into(),
        )));
    }
    Ok(())
}

/// `apec load --addr A [--seed S] [--clients N] [--nodes N]
///  [--imp-bytes N] [--unimp-bytes N] [--videos N] [--ticks N]
///  [--reads-per-tick N] [--failure-every N] [--repair-after N]
///  [--bitrot N] [--bitrot-seed S] [--heal-timeout-ms N]
///  [--json FILE] [--scrub-json FILE] [--shutdown 0|1]`
pub fn run_load(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let addr: SocketAddr = args.require("addr")?;
    let seed: u64 = args.get_or("seed", 7)?;
    let nodes: usize = args.get_or("nodes", 17)?;
    let mut cfg = LoadConfig::small(seed, nodes);
    cfg.clients = args.get_or("clients", cfg.clients)?;
    cfg.important_bytes = args.get_or("imp-bytes", cfg.important_bytes)?;
    cfg.unimportant_bytes = args.get_or("unimp-bytes", cfg.unimportant_bytes)?;
    cfg.workload.videos = args.get_or("videos", cfg.workload.videos)?;
    cfg.workload.ticks = args.get_or("ticks", cfg.workload.ticks)?;
    cfg.workload.reads_per_tick =
        args.get_or("reads-per-tick", cfg.workload.reads_per_tick)?;
    cfg.workload.failure_every = args.get_or("failure-every", cfg.workload.failure_every)?;
    cfg.workload.repair_after = args.get_or("repair-after", cfg.workload.repair_after)?;
    cfg.bitrot_flips = args.get_or("bitrot", cfg.bitrot_flips)?;
    cfg.bitrot_seed = args.get_or("bitrot-seed", cfg.bitrot_seed)?;
    cfg.heal_timeout_ms = args.get_or("heal-timeout-ms", cfg.heal_timeout_ms)?;
    cfg.shutdown_after = args.get_or("shutdown", 0usize)? != 0;
    let json_out: Option<PathBuf> = args.get_opt("json")?;
    let scrub_json_out: Option<PathBuf> = args.get_opt("scrub-json")?;
    args.finish()?;

    let report = load::run(addr, &cfg)?;
    println!(
        "load: {} requests in {:.1} ms ({:.0} req/s), {} clients",
        report.total_requests, report.elapsed_ms, report.throughput_rps, report.clients
    );
    for op in &report.ops {
        println!(
            "  {:<6} {:>6} reqs  p50 {:>8.3} ms  p99 {:>8.3} ms  mean {:>8.3} ms",
            op.op, op.requests, op.p50_ms, op.p99_ms, op.mean_ms
        );
    }
    println!(
        "  degraded ratio {:.4}, approx reads {}, integrity failures {}, mismatches {}, errors {}",
        report.degraded_ratio,
        report.approx_reads,
        report.integrity_failures,
        report.mismatches,
        report.errors
    );
    if let Some(s) = &report.scrub {
        println!(
            "  self-heal: {} injected, {} detected, {} healed in {:.1} ms; \
             sweep {} reads, {} mismatches; cache hit rate {:.3}",
            s.injected,
            s.status.injected_detected,
            s.status.injected_healed,
            s.time_to_heal_ms,
            s.sweep_reads,
            s.sweep_mismatches,
            s.cache_hit_rate()
        );
    }
    if let Some(path) = json_out {
        std::fs::write(&path, report.to_bench_json())?;
        println!("wrote {}", path.display());
    }
    if let Some(path) = scrub_json_out {
        let doc = report.scrub_bench_json().ok_or_else(|| {
            CliError("--scrub-json needs a self-heal phase (--bitrot N)".into())
        })?;
        std::fs::write(&path, doc)?;
        println!("wrote {}", path.display());
    }
    let sweep_mismatches = report.scrub.as_ref().map_or(0, |s| s.sweep_mismatches);
    if report.mismatches > 0 || report.errors > 0 || sweep_mismatches > 0 {
        return Err(Box::new(CliError(format!(
            "load run unhealthy: {} mismatches, {} errors, {} sweep mismatches",
            report.mismatches, report.errors, sweep_mismatches
        ))));
    }
    Ok(())
}
