//! `apec serve` and `apec load`: the daemon and its closed-loop driver.
//!
//! `serve` opens (or, with `--demo 1`, initialises) a store directory
//! and blocks serving the binary protocol until a client sends the
//! `shutdown` verb. `load` replays the tier engine's seeded Zipf
//! workload against a running daemon and prints — and optionally writes
//! as `BENCH_serve.json` — the client-observed latency report.

use crate::args::{Args, CliError};
use apec_serve::{load, serve, LoadConfig, ServerConfig};
use apec_store::{Store, StoreConfig};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::Arc;

/// `apec serve --dir DIR [--addr A] [--workers N] [--queue-cap N] [--demo 0|1]`
pub fn run_serve(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let dir: PathBuf = args.require("dir")?;
    let addr: String = args.get_or_str("addr", "127.0.0.1:4701")?;
    let config = ServerConfig {
        workers: args.get_or("workers", ServerConfig::default().workers)?,
        queue_cap: args.get_or("queue-cap", ServerConfig::default().queue_cap)?,
    };
    let demo: usize = args.get_or("demo", 0)?;
    args.finish()?;

    let store = if demo != 0 && !dir.join("config.json").exists() {
        Store::init(&dir, StoreConfig::demo("rs"))?
    } else {
        Store::open(&dir)?
    };
    let listener = TcpListener::bind(&addr)
        .map_err(|e| CliError(format!("cannot bind {addr}: {e}")))?;
    let (workers, queue_cap) = (config.workers, config.queue_cap);
    let handle = serve(Arc::new(store), listener, config)?;
    println!(
        "serving {} on {} ({workers} workers, queue {queue_cap}); stop with the shutdown verb",
        dir.display(),
        handle.addr(),
    );
    handle.join();
    println!("daemon stopped");
    Ok(())
}

/// `apec load --addr A [--seed S] [--clients N] [--nodes N]
///  [--imp-bytes N] [--unimp-bytes N] [--videos N] [--ticks N]
///  [--reads-per-tick N] [--failure-every N] [--repair-after N]
///  [--json FILE] [--shutdown 0|1]`
pub fn run_load(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let addr: SocketAddr = args.require("addr")?;
    let seed: u64 = args.get_or("seed", 7)?;
    let nodes: usize = args.get_or("nodes", 17)?;
    let mut cfg = LoadConfig::small(seed, nodes);
    cfg.clients = args.get_or("clients", cfg.clients)?;
    cfg.important_bytes = args.get_or("imp-bytes", cfg.important_bytes)?;
    cfg.unimportant_bytes = args.get_or("unimp-bytes", cfg.unimportant_bytes)?;
    cfg.workload.videos = args.get_or("videos", cfg.workload.videos)?;
    cfg.workload.ticks = args.get_or("ticks", cfg.workload.ticks)?;
    cfg.workload.reads_per_tick =
        args.get_or("reads-per-tick", cfg.workload.reads_per_tick)?;
    cfg.workload.failure_every = args.get_or("failure-every", cfg.workload.failure_every)?;
    cfg.workload.repair_after = args.get_or("repair-after", cfg.workload.repair_after)?;
    cfg.shutdown_after = args.get_or("shutdown", 0usize)? != 0;
    let json_out: Option<PathBuf> = args.get_opt("json")?;
    args.finish()?;

    let report = load::run(addr, &cfg)?;
    println!(
        "load: {} requests in {:.1} ms ({:.0} req/s), {} clients",
        report.total_requests, report.elapsed_ms, report.throughput_rps, report.clients
    );
    for op in &report.ops {
        println!(
            "  {:<6} {:>6} reqs  p50 {:>8.3} ms  p99 {:>8.3} ms  mean {:>8.3} ms",
            op.op, op.requests, op.p50_ms, op.p99_ms, op.mean_ms
        );
    }
    println!(
        "  degraded ratio {:.4}, approx reads {}, integrity failures {}, mismatches {}, errors {}",
        report.degraded_ratio,
        report.approx_reads,
        report.integrity_failures,
        report.mismatches,
        report.errors
    );
    if let Some(path) = json_out {
        std::fs::write(&path, report.to_bench_json())?;
        println!("wrote {}", path.display());
    }
    if report.mismatches > 0 || report.errors > 0 {
        return Err(Box::new(CliError(format!(
            "load run unhealthy: {} mismatches, {} errors",
            report.mismatches, report.errors
        ))));
    }
    Ok(())
}
