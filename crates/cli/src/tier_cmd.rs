//! `apec tier` — run the tier lifecycle engine and print its report.
//!
//! Generates a deterministic workload trace (Zipf popularity with decay,
//! node failures and repairs), replays it through [`apec_tier::TierEngine`]
//! against an in-memory cluster, and reports what tiering cost and saved.
//! Same seed and flags ⇒ byte-identical JSON, which is what the CI smoke
//! lane asserts.

use std::io::Write as _;

use apec_ec::ErasureCode;
use apec_tier::{
    ColdCodeSpec, DemotionPolicy, HotCode, TierConfig, TierEngine, TierReport, WorkloadConfig,
};
use approx_code::{BaseFamily, Structure};

use crate::args::{Args, CliError};

/// Parses flags, runs the engine, prints the summary (and JSON if asked).
pub fn run(args: Args) -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = args.get_or("seed", 42)?;

    // Workload shape.
    let mut workload = WorkloadConfig::small(seed);
    workload.videos = args.get_or("videos", workload.videos)?;
    workload.ticks = args.get_or("ticks", workload.ticks)?;
    workload.reads_per_tick = args.get_or("reads-per-tick", workload.reads_per_tick)?;
    workload.failure_every = args.get_or("failure-every", workload.failure_every)?;
    workload.repair_after = args.get_or("repair-after", workload.repair_after)?;

    // Engine configuration, starting from the demo defaults.
    let mut cfg = TierConfig::demo(seed);
    cfg.nodes = args.get_or("nodes", cfg.nodes)?;
    cfg.hot = HotCode::Rs {
        k: args.get_or("hot-k", 5)?,
        r: args.get_or("hot-r", 3)?,
    };
    let family = match args.get_or_str("family", "rs")?.as_str() {
        "rs" => BaseFamily::Rs,
        "lrc" => BaseFamily::Lrc,
        "star" => BaseFamily::Star,
        "tip" => BaseFamily::Tip,
        other => return Err(Box::new(CliError(format!("unknown family '{other}'")))),
    };
    let structure = match args.get_or_str("structure", "uneven")?.as_str() {
        "even" => Structure::Even,
        "uneven" => Structure::Uneven,
        other => return Err(Box::new(CliError(format!("unknown structure '{other}'")))),
    };
    cfg.cold = ColdCodeSpec {
        family,
        k: args.get_or("k", 5)?,
        r: args.get_or("r", 1)?,
        g: args.get_or("g", 2)?,
        h: args.get_or("h", 3)?,
        structure,
    };
    // The cold shard length rides the code's alignment (XOR bases pack
    // rows·sub elements per node), so recompute it for the chosen code.
    let align = cfg
        .cold
        .build()
        .map_err(|e| CliError(format!("cold code: {e}")))?
        .shard_alignment();
    cfg.cold_shard_len = align * args.get_or("cold-shard", 128usize)?;

    cfg.policy = match args.get_or_str("policy", "access")?.as_str() {
        "access" => DemotionPolicy::AccessCount {
            threshold: args.get_or("threshold", 2)?,
            window: args.get_or("window", 8)?,
        },
        "age" => DemotionPolicy::Age {
            min_age: args.get_or("age", 16)?,
        },
        "never" => DemotionPolicy::Never,
        other => {
            return Err(Box::new(CliError(format!(
                "unknown policy '{other}' (want access|age|never)"
            ))))
        }
    };

    let json_out: Option<std::path::PathBuf> = args.get_opt("json")?;
    args.finish()?;

    let mut engine = TierEngine::new(cfg).map_err(|e| CliError(e.to_string()))?;
    let report = engine.run(&workload).map_err(|e| CliError(e.to_string()))?;

    print_summary(&report);
    if let Some(path) = json_out {
        let mut f = std::fs::File::create(&path)?;
        f.write_all(report.to_json().as_bytes())?;
        f.write_all(b"\n")?;
        println!("report written to {} (digest {})", path.display(), report.digest());
    } else {
        println!("digest {}", report.digest());
    }
    Ok(())
}

fn print_summary(r: &TierReport) {
    println!(
        "codes     hot {} ({:.3}x) | cold {} ({:.3}x)",
        r.config.hot_code, r.overhead.expected_hot, r.config.cold_code, r.overhead.expected_cold
    );
    println!(
        "events    {} ingests, {} reads, {} failures, {} repairs over {} ticks",
        r.events.ingests, r.events.reads, r.events.failures, r.events.repairs, r.config.workload.ticks
    );
    println!(
        "tiers     {} hot / {} cold at end; {} demotions ({} aborted)",
        r.tiers.hot_objects, r.tiers.cold_objects, r.tiers.demotions, r.tiers.failed_demotions
    );
    println!(
        "reads     {} hot, {} cold ({} degraded, {} approximate, {} unavailable)",
        r.reads.hot, r.reads.cold, r.reads.degraded, r.reads.approximate, r.reads.unavailable
    );
    println!(
        "latency   p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
        r.latency.p50_ns as f64 / 1e6,
        r.latency.p95_ns as f64 / 1e6,
        r.latency.p99_ns as f64 / 1e6,
        r.latency.max_ns as f64 / 1e6
    );
    if r.psnr.samples > 0 {
        println!(
            "psnr      {} interpolated frames, mean {:.2} dB, worst {:.2} dB",
            r.psnr.samples, r.psnr.mean_db, r.psnr.min_db
        );
    } else {
        println!("psnr      no frames needed interpolation");
    }
    println!(
        "overhead  hot measured {:.4} (model {:.4}) | cold measured {:.4} (model {:.4})",
        r.overhead.measured_hot,
        r.overhead.expected_hot,
        r.overhead.measured_cold,
        r.overhead.expected_cold
    );
    println!(
        "writes    single-block update costs {:.2} shard writes hot, {:.2} cold",
        r.overhead.hot_single_write, r.overhead.cold_single_write
    );
    println!(
        "io        ingest {} KiB, reads {} KiB, conversion {} KiB, repair {} KiB (written)",
        r.io.ingest.write_bytes / 1024,
        r.io.read.write_bytes / 1024,
        r.io.conversion.write_bytes / 1024,
        r.io.repair.write_bytes / 1024
    );
    println!(
        "cost      {:.2}% storage saved vs all-hot (mean overhead {:.3}x)",
        r.costs.savings_ratio() * 100.0,
        r.costs.mean_overhead()
    );
}
