//! `.apv` clip files and quality checking.
//!
//! An `.apv` file is simply the two tiers of a serialised
//! [`apec_video::VideoContainer`] glued together:
//!
//! ```text
//! "APV1" | important_len u64 LE | unimportant_len u64 LE | important | unimportant
//! ```

use apec_recovery::{recover_lost_frames, Interpolator};
use apec_video::{
    decode_stream, encode_stream, parse_container, psnr_db, serialize_container, GopConfig,
    SyntheticVideo, VideoContainer,
};
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 4] = b"APV1";

/// Summary of a generated clip.
pub struct ClipStats {
    /// Bytes in the important tier.
    pub important_len: usize,
    /// Bytes in the unimportant tier.
    pub unimportant_len: usize,
    /// Total frames (for `check` reporting).
    pub frames_total: usize,
    /// Frames synthesised by interpolation/extrapolation.
    pub frames_recovered: usize,
    /// Frames with nothing to recover from.
    pub frames_unrecoverable: usize,
    /// Mean PSNR over recovered frames (None if none needed recovery).
    pub mean_recovered_psnr: Option<f64>,
    /// Worst PSNR over recovered frames.
    pub min_recovered_psnr: Option<f64>,
}

/// Writes an `.apv` file from the two tiers.
pub fn write_apv(path: &Path, important: &[u8], unimportant: &[u8]) -> io::Result<()> {
    let mut out = Vec::with_capacity(20 + important.len() + unimportant.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(important.len() as u64).to_le_bytes());
    out.extend_from_slice(&(unimportant.len() as u64).to_le_bytes());
    out.extend_from_slice(important);
    out.extend_from_slice(unimportant);
    fs::write(path, out)
}

/// Reads an `.apv` file back into its two tiers.
pub fn read_apv(path: &Path) -> io::Result<(Vec<u8>, Vec<u8>)> {
    let raw = fs::read(path)?;
    let fail = |m: &str| io::Error::new(io::ErrorKind::InvalidData, format!("{}: {m}", path.display()));
    if raw.len() < 20 || &raw[..4] != MAGIC {
        return Err(fail("not an .apv file"));
    }
    let ilen = u64::from_le_bytes(raw[4..12].try_into().unwrap()) as usize;
    let ulen = u64::from_le_bytes(raw[12..20].try_into().unwrap()) as usize;
    if raw.len() != 20 + ilen + ulen {
        return Err(fail("truncated .apv payload"));
    }
    Ok((raw[20..20 + ilen].to_vec(), raw[20 + ilen..].to_vec()))
}

/// Renders a synthetic clip, encodes it and writes an `.apv` file.
pub fn generate(
    out: &Path,
    width: usize,
    height: usize,
    frames: usize,
    seed: u64,
    gop_len: usize,
    fps: u16,
) -> io::Result<ClipStats> {
    let video = SyntheticVideo::new(width, height, f64::from(fps), seed, 4);
    let rendered = video.frames(frames);
    let gop = GopConfig {
        gop_len,
        use_b_frames: true,
        quant: 2,
    };
    let container = VideoContainer {
        width,
        height,
        fps,
        gop,
        frames: encode_stream(&rendered, &gop),
    };
    let tiers = serialize_container(&container);
    write_apv(out, &tiers.important, &tiers.unimportant)?;
    Ok(ClipStats {
        important_len: tiers.important.len(),
        unimportant_len: tiers.unimportant.len(),
        frames_total: frames,
        frames_recovered: 0,
        frames_unrecoverable: 0,
        mean_recovered_psnr: None,
        min_recovered_psnr: None,
    })
}

/// Decodes both clips, interpolates whatever the candidate lost, and
/// scores the synthesised frames against the reference.
pub fn compare(reference: &Path, candidate: &Path) -> io::Result<ClipStats> {
    let fail = |m: String| io::Error::new(io::ErrorKind::InvalidData, m);
    let (ri, ru) = read_apv(reference)?;
    let (ci, cu) = read_apv(candidate)?;

    let rparsed =
        parse_container(&ri, &ru).map_err(|e| fail(format!("reference: {e}")))?;
    let rdecoded = decode_stream(&rparsed.frames, rparsed.width, rparsed.height, &rparsed.gop);
    if !rdecoded.lost_indices().is_empty() {
        return Err(fail("reference clip itself has undecodable frames".into()));
    }

    let cparsed =
        parse_container(&ci, &cu).map_err(|e| fail(format!("candidate: {e}")))?;
    if (cparsed.width, cparsed.height) != (rparsed.width, rparsed.height)
        || cparsed.frames.len() != rparsed.frames.len()
    {
        return Err(fail("clips have different geometry".into()));
    }
    let mut cdecoded = decode_stream(&cparsed.frames, cparsed.width, cparsed.height, &cparsed.gop);
    let report = recover_lost_frames(
        &mut cdecoded,
        Interpolator::MotionCompensated { search_radius: 3 },
    );

    let recovered: Vec<usize> = report
        .interpolated
        .iter()
        .chain(&report.extrapolated)
        .copied()
        .collect();
    let mut mean = None;
    let mut min = None;
    if !recovered.is_empty() {
        let mut sum = 0.0;
        let mut worst = f64::INFINITY;
        for &i in &recovered {
            let p = psnr_db(
                rdecoded.frames[i].as_ref().expect("reference complete"),
                cdecoded.frames[i].as_ref().expect("filled by recovery"),
            );
            sum += p;
            worst = worst.min(p);
        }
        mean = Some(sum / recovered.len() as f64);
        min = Some(worst);
    }
    Ok(ClipStats {
        important_len: ci.len(),
        unimportant_len: cu.len(),
        frames_total: cparsed.frames.len(),
        frames_recovered: recovered.len(),
        frames_unrecoverable: report.unrecoverable.len(),
        mean_recovered_psnr: mean,
        min_recovered_psnr: min,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_file(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "apec-clip-{}-{}-{}.apv",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn apv_round_trip() {
        let p = temp_file("rt");
        write_apv(&p, &[1, 2, 3], &[4, 5]).unwrap();
        let (i, u) = read_apv(&p).unwrap();
        assert_eq!(i, vec![1, 2, 3]);
        assert_eq!(u, vec![4, 5]);
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn bad_apv_rejected() {
        let p = temp_file("bad");
        fs::write(&p, b"nope").unwrap();
        assert!(read_apv(&p).is_err());
        fs::write(&p, b"APV1\x05\0\0\0\0\0\0\0\x00\0\0\0\0\0\0\0xx").unwrap();
        assert!(read_apv(&p).is_err(), "length mismatch");
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn generate_and_self_compare() {
        let p = temp_file("gen");
        let stats = generate(&p, 48, 32, 24, 5, 12, 60).unwrap();
        assert!(stats.important_len > 0 && stats.unimportant_len > 0);
        let cmp = compare(&p, &p).unwrap();
        assert_eq!(cmp.frames_total, 24);
        assert_eq!(cmp.frames_recovered, 0);
        assert!(cmp.mean_recovered_psnr.is_none());
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn damaged_candidate_reports_recovery_quality() {
        let a = temp_file("ref");
        generate(&a, 48, 32, 36, 9, 12, 60).unwrap();
        let (i, mut u) = read_apv(&a).unwrap();
        // Zero a window of the unimportant tier.
        let start = u.len() / 3;
        let end = start + u.len() / 5;
        u[start..end].fill(0);
        let b = temp_file("cand");
        write_apv(&b, &i, &u).unwrap();
        let cmp = compare(&a, &b).unwrap();
        assert!(cmp.frames_recovered > 0, "damage should force interpolation");
        assert!(cmp.mean_recovered_psnr.unwrap() > 30.0);
        fs::remove_file(&a).unwrap();
        fs::remove_file(&b).unwrap();
    }
}
