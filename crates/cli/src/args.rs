//! A small, dependency-free flag parser.
//!
//! Grammar: `--name value` pairs in any order, plus bare positionals.
//! Flags may repeat (`--node 1 --node 2`). [`Args::finish`] rejects any
//! flag that was never consumed, so typos fail loudly instead of being
//! ignored.

use std::cell::RefCell;
use std::fmt;
use std::str::FromStr;

/// A CLI usage error.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Parsed arguments with consumption tracking.
pub struct Args {
    flags: RefCell<Vec<(String, String, bool)>>, // (name, value, consumed)
    positionals: RefCell<Vec<(String, bool)>>,
}

impl Args {
    /// Splits raw arguments into flags and positionals.
    pub fn parse(raw: &[String]) -> Result<Args, CliError> {
        let mut flags = Vec::new();
        let mut positionals = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| CliError(format!("--{name} needs a value")))?;
                flags.push((name.to_string(), value.clone(), false));
            } else {
                positionals.push((a.clone(), false));
            }
        }
        Ok(Args {
            flags: RefCell::new(flags),
            positionals: RefCell::new(positionals),
        })
    }

    fn take(&self, name: &str) -> Option<String> {
        let mut flags = self.flags.borrow_mut();
        for (n, v, consumed) in flags.iter_mut() {
            if n == name && !*consumed {
                *consumed = true;
                return Some(v.clone());
            }
        }
        None
    }

    /// A required flag, parsed.
    pub fn require<T: FromStr>(&self, name: &str) -> Result<T, CliError>
    where
        T::Err: fmt::Display,
    {
        let v = self
            .take(name)
            .ok_or_else(|| CliError(format!("missing required --{name}")))?;
        v.parse()
            .map_err(|e| CliError(format!("--{name} '{v}': {e}")))
    }

    /// An optional flag with a default.
    pub fn get_or<T: FromStr>(&self, name: &str, default: T) -> Result<T, CliError>
    where
        T::Err: fmt::Display,
    {
        match self.take(name) {
            Some(v) => v
                .parse()
                .map_err(|e| CliError(format!("--{name} '{v}': {e}"))),
            None => Ok(default),
        }
    }

    /// An optional flag: `None` when absent, parsed when present.
    pub fn get_opt<T: FromStr>(&self, name: &str) -> Result<Option<T>, CliError>
    where
        T::Err: fmt::Display,
    {
        match self.take(name) {
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|e| CliError(format!("--{name} '{v}': {e}"))),
            None => Ok(None),
        }
    }

    /// An optional string flag with a default.
    pub fn get_or_str(&self, name: &str, default: &str) -> Result<String, CliError> {
        Ok(self.take(name).unwrap_or_else(|| default.to_string()))
    }

    /// Every occurrence of a repeatable flag.
    pub fn all<T: FromStr>(&self, name: &str) -> Result<Vec<T>, CliError>
    where
        T::Err: fmt::Display,
    {
        let mut out = Vec::new();
        while let Some(v) = self.take(name) {
            out.push(
                v.parse()
                    .map_err(|e| CliError(format!("--{name} '{v}': {e}")))?,
            );
        }
        Ok(out)
    }

    /// The `idx`-th positional argument.
    pub fn positional<T: FromStr>(&self, idx: usize, what: &str) -> Result<T, CliError>
    where
        T::Err: fmt::Display,
    {
        let mut pos = self.positionals.borrow_mut();
        let (v, consumed) = pos
            .get_mut(idx)
            .ok_or_else(|| CliError(format!("missing argument: {what}")))?;
        *consumed = true;
        v.parse()
            .map_err(|e| CliError(format!("{what} '{v}': {e}")))
    }

    /// Fails if anything was passed but never consumed.
    pub fn finish(&self) -> Result<(), CliError> {
        let leftover_flags: Vec<String> = self
            .flags
            .borrow()
            .iter()
            .filter(|(_, _, consumed)| !consumed)
            .map(|(n, _, _)| format!("--{n}"))
            .collect();
        let leftover_pos: Vec<String> = self
            .positionals
            .borrow()
            .iter()
            .filter(|(_, consumed)| !consumed)
            .map(|(v, _)| v.clone())
            .collect();
        if leftover_flags.is_empty() && leftover_pos.is_empty() {
            Ok(())
        } else {
            Err(CliError(format!(
                "unrecognised arguments: {}",
                leftover_flags
                    .into_iter()
                    .chain(leftover_pos)
                    .collect::<Vec<_>>()
                    .join(" ")
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn flags_and_positionals_parse() {
        let a = Args::parse(&argv("--k 5 --dir /tmp/v file.apv")).unwrap();
        assert_eq!(a.require::<usize>("k").unwrap(), 5);
        assert_eq!(a.get_or_str("dir", "x").unwrap(), "/tmp/v");
        assert_eq!(a.positional::<String>(0, "FILE").unwrap(), "file.apv");
        a.finish().unwrap();
    }

    #[test]
    fn repeatable_flags_collect() {
        let a = Args::parse(&argv("--node 1 --node 7 --node 3")).unwrap();
        assert_eq!(a.all::<usize>("node").unwrap(), vec![1, 7, 3]);
        a.finish().unwrap();
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&argv("")).unwrap();
        assert_eq!(a.get_or("frames", 120usize).unwrap(), 120);
        assert_eq!(a.get_or_str("family", "rs").unwrap(), "rs");
        a.finish().unwrap();
    }

    #[test]
    fn errors_are_loud() {
        assert!(Args::parse(&argv("--k")).is_err(), "flag without value");
        let a = Args::parse(&argv("--k five")).unwrap();
        assert!(a.require::<usize>("k").is_err(), "unparseable value");
        let a = Args::parse(&argv("--mystery 1")).unwrap();
        assert!(a.finish().is_err(), "unconsumed flag");
        let a = Args::parse(&argv("stray")).unwrap();
        assert!(a.finish().is_err(), "unconsumed positional");
        let a = Args::parse(&argv("")).unwrap();
        assert!(a.require::<usize>("k").is_err(), "missing required");
        assert!(a.positional::<String>(0, "FILE").is_err());
    }
}
