//! The evaluation driver.
//!
//! ```text
//! experiments all                # every table/figure, markdown to stdout
//! experiments fig-encoding      # one experiment
//! experiments all --json out.json
//! ```

#![forbid(unsafe_code)]

use apec_bench::experiments::{run, ALL_EXPERIMENTS};
use apec_bench::Table;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: experiments <id>|all [--json FILE]");
        eprintln!("experiments:");
        for id in ALL_EXPERIMENTS {
            eprintln!("  {id}");
        }
        eprintln!("\nenvironment: APEC_BENCH_MB (stripe MiB, default 8), APEC_BENCH_REPS (default 3), APEC_BENCH_NODE_MB (recovery node MiB, default 1024)");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }

    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let ids: Vec<&str> = if args[0] == "all" {
        ALL_EXPERIMENTS.to_vec()
    } else {
        vec![args[0].as_str()]
    };

    let mut all_tables: Vec<Table> = Vec::new();
    for id in ids {
        eprintln!("[experiments] running {id} ...");
        let start = std::time::Instant::now();
        match run(id) {
            Some(tables) => {
                for table in tables {
                    println!("{}", table.to_markdown());
                    all_tables.push(table);
                }
                eprintln!("[experiments] {id} done in {:.1}s", start.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment '{id}'; run with --help for the list");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&all_tables).expect("tables serialise");
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(json.as_bytes()).expect("write json output");
        eprintln!("[experiments] wrote {path}");
    }
}
