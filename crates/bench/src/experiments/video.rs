//! §5.1's video-quality experiment: interpolated recovery of lost
//! unimportant frames at various loss rates.

use crate::table::Table;
use apec_recovery::{recover_lost_frames, Interpolator};
use apec_video::{decode_stream, encode_stream, psnr_db, FrameType, GopConfig, SyntheticVideo};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Runs one loss-rate trial; returns (mean PSNR, min PSNR, frames lost,
/// frames interpolated).
fn trial(loss_pct: f64, method: Interpolator, seed: u64) -> (f64, f64, usize, usize) {
    let (w, h) = (96, 64);
    let video = SyntheticVideo::new(w, h, 60.0, seed, 4);
    let frames = video.frames(240);
    let gop = GopConfig::default();
    let encoded = encode_stream(&frames, &gop);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    let mut boxed: Vec<Option<_>> = encoded.into_iter().map(Some).collect();
    let unimportant: Vec<usize> = boxed
        .iter()
        .enumerate()
        .filter(|(_, f)| f.as_ref().is_some_and(|f| f.frame_type != FrameType::I))
        .map(|(i, _)| i)
        .collect();
    let losses = ((unimportant.len() as f64 * loss_pct / 100.0).round() as usize).max(1);
    for &i in unimportant.choose_multiple(&mut rng, losses) {
        boxed[i] = None;
    }

    let mut decoded = decode_stream(&boxed, w, h, &gop);
    let undecodable = decoded.lost_indices().len();
    let report = recover_lost_frames(&mut decoded, method);
    let recovered: Vec<usize> = report
        .interpolated
        .iter()
        .chain(&report.extrapolated)
        .copied()
        .collect();
    let mut mean = 0.0;
    let mut min = f64::INFINITY;
    for &i in &recovered {
        let p = psnr_db(&frames[i], decoded.frames[i].as_ref().unwrap());
        mean += p;
        min = min.min(p);
    }
    if !recovered.is_empty() {
        mean /= recovered.len() as f64;
    }
    (mean, min, undecodable, recovered.len())
}

/// §5.1: recovered-frame quality at 1% unimportant-frame loss (plus a
/// stress sweep) for the three interpolators.
pub fn psnr_experiment() -> Table {
    let mut t = Table::new(
        "psnr",
        "Recovered-frame PSNR after unimportant-frame loss (paper §5.1)",
        &[
            "loss % (P/B frames)",
            "interpolator",
            "mean dB",
            "min dB",
            "frames undecodable",
            "frames recovered",
        ],
    );
    for loss in [1.0f64, 5.0, 10.0] {
        for (name, method) in [
            ("hold", Interpolator::Hold),
            ("linear", Interpolator::Linear),
            ("motion-comp", Interpolator::MotionCompensated { search_radius: 3 }),
        ] {
            let (mean, min, lost, rec) = trial(loss, method, 31);
            t.row(vec![
                format!("{loss}").into(),
                name.into(),
                mean.into(),
                min.into(),
                format!("{lost}").into(),
                format!("{rec}").into(),
            ]);
        }
    }
    t.note("Paper claim: ≥ 35 dB average at 1% loss on 60 fps content. Record losses cascade through P-frame dependency chains first (undecodable ≥ records lost); the interpolator then fills every undecodable index from the nearest surviving anchors.");
    t
}
