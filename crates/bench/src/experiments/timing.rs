//! Measured encode/decode wall-time experiments: Fig. 10 (encoding),
//! Table 5 (summary of improvements), Fig. 11/12 (decoding under 2/3
//! failures), Fig. 13 (combined bars at k=5).
//!
//! Methodology follows §4.1: every code processes the *same volume of
//! data* (the paper stores one dataset under each code), failures pick
//! random nodes, and Approximate Codes report the average of their Even
//! and Uneven structures. Approximate decode times use the tiered path,
//! which rebuilds exactly what the paper's decoder rebuilds (everything
//! recoverable; unimportant data beyond `r` is delegated to the video
//! layer).

use crate::codes::{appr_at, baseline_at, baseline_name, K_SWEEP, K_TABLE5};
use crate::table::{Cell, Table};
use crate::workload::{
    data_shards, improvement_pct, measure_decode, measure_encode, repetitions, time_median,
};
use approx_code::{ApproxCode, BaseFamily, Structure};
use rand::prelude::*;
use rand::rngs::StdRng;

const FAMILIES: [BaseFamily; 4] = [
    BaseFamily::Star,
    BaseFamily::Tip,
    BaseFamily::Rs,
    BaseFamily::Lrc,
];

/// Encode seconds for an Approximate Code, averaged over structures.
fn appr_encode_secs(family: BaseFamily, k: usize, h: usize) -> Option<f64> {
    let mut total = 0.0;
    for structure in [Structure::Even, Structure::Uneven] {
        let code = appr_at(family, k, 1, 2, h, structure)?;
        total += measure_encode(&code, 1).seconds;
    }
    Some(total / 2.0)
}

/// Tiered decode seconds for an Approximate Code under `f` random node
/// failures, averaged over structures and patterns.
fn appr_decode_secs(family: BaseFamily, k: usize, h: usize, f: usize) -> Option<f64> {
    let mut total = 0.0;
    for structure in [Structure::Even, Structure::Uneven] {
        let code = appr_at(family, k, 1, 2, h, structure)?;
        total += measure_decode_tiered(&code, f, 2)?;
    }
    Some(total / 2.0)
}

/// Times `reconstruct_tiered` for random `f`-node failures (plan cache
/// warmed first — steady-state, like the baselines).
pub fn measure_decode_tiered(code: &ApproxCode, f: usize, seed: u64) -> Option<f64> {
    use apec_ec::ErasureCode;
    let data = data_shards(code, seed);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = code.encode(&refs).ok()?;
    let full: Vec<Option<Vec<u8>>> = data.iter().cloned().chain(parity).map(Some).collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x7EA7ED);
    let n = code.total_nodes();
    let mut nodes: Vec<usize> = (0..n).collect();
    let patterns = 6usize;
    let mut total = 0.0;
    for _ in 0..patterns {
        nodes.shuffle(&mut rng);
        let victims = nodes[..f].to_vec();
        // Same steady-state methodology as `measure_decode`: warm the
        // plan cache, and keep the stripe clone out of the timed window.
        let mut stripe = full.clone();
        for &v in &victims {
            stripe[v] = None;
        }
        code.reconstruct_tiered(&mut stripe).ok()?;
        total += time_median(repetitions(), || {
            for &v in &victims {
                stripe[v] = None;
            }
            let _ = std::hint::black_box(
                code.reconstruct_tiered(&mut stripe).expect("valid stripe"),
            );
        });
    }
    Some(total / patterns as f64)
}

/// Baseline encode seconds (`None` at the paper's "/" holes).
fn baseline_encode_secs(family: BaseFamily, k: usize, l: usize) -> Option<f64> {
    let code = baseline_at(family, k, l)?;
    Some(measure_encode(code.as_ref(), 1).seconds)
}

fn baseline_decode_secs(family: BaseFamily, k: usize, l: usize, f: usize) -> Option<f64> {
    let code = baseline_at(family, k, l)?;
    Some(measure_decode(code.as_ref(), f, 2)?.seconds)
}

/// Paper Fig. 10: encoding time, one panel per base family.
pub fn fig_encoding() -> Vec<Table> {
    FAMILIES
        .into_iter()
        .map(|family| {
            let mut t = Table::new(
                format!("fig-encoding-{}", family.to_string().to_lowercase()),
                format!("Encoding time vs k — {family} panel of paper Fig. 10 (ms)"),
                &["k", "baseline", "APPR(k,1,2,4)", "APPR(k,1,2,6)", "improvement% (h=4)"],
            );
            for k in K_SWEEP {
                let base = baseline_encode_secs(family, k, 4);
                let a4 = appr_encode_secs(family, k, 4);
                let a6 = appr_encode_secs(family, k, 6);
                let imp = match (base, a4) {
                    (Some(b), Some(a)) => Some(improvement_pct(b, a)),
                    _ => None,
                };
                t.row(vec![
                    format!("{k}").into(),
                    base.map(|s| s * 1e3).into(),
                    a4.map(|s| s * 1e3).into(),
                    a6.map(|s| s * 1e3).into(),
                    imp.into(),
                ]);
            }
            t.note("Expected shape (paper): APPR encodes ~50% faster than RS/STAR/TIP and ~55-62% faster than LRC (parity volume drops from 3 to r+g/h per data unit).");
            t
        })
        .collect()
}

/// Paper Fig. 11 (f=2) / Fig. 12 (f=3): decoding time under multiple
/// node failures.
pub fn fig_decoding(f: usize) -> Vec<Table> {
    FAMILIES
        .into_iter()
        .map(|family| {
            let mut t = Table::new(
                format!("fig-decoding-{f}-{}", family.to_string().to_lowercase()),
                format!(
                    "Decoding time, {f} node failures — {family} panel of paper Fig. {} (ms)",
                    if f == 2 { 11 } else { 12 }
                ),
                &["k", "baseline", "APPR(k,1,2,4)", "APPR(k,1,2,6)", "improvement% (h=4)"],
            );
            for k in K_SWEEP {
                let base = baseline_decode_secs(family, k, 4, f);
                let a4 = appr_decode_secs(family, k, 4, f);
                let a6 = appr_decode_secs(family, k, 6, f);
                let imp = match (base, a4) {
                    (Some(b), Some(a)) => Some(improvement_pct(b, a)),
                    _ => None,
                };
                t.row(vec![
                    format!("{k}").into(),
                    base.map(|s| s * 1e3).into(),
                    a4.map(|s| s * 1e3).into(),
                    a6.map(|s| s * 1e3).into(),
                    imp.into(),
                ]);
            }
            t.note(format!(
                "Expected shape (paper): ~{}% faster than the base codes — the tiered decoder rebuilds the same dataset spread over h× more, h× smaller nodes{}.",
                if f == 2 { "73-79" } else { "73-88" },
                if f == 3 { ", and skips unrecoverable unimportant data" } else { "" }
            ));
            t
        })
        .collect()
}

/// Paper Table 5: improvement of APPR(k,1,2,4) over each base code.
pub fn tab_summary() -> Table {
    let mut t = Table::new(
        "tab-summary",
        "Improvement of Approximate Codes (k,1,2,4) over their base codes (paper Table 5), %",
        &["scenario", "method", "5", "7", "9", "11", "13"],
    );
    let scenarios: [(&str, Option<usize>); 4] = [
        ("Encoding", None),
        ("Decoding f=1", Some(1)),
        ("Decoding f=2", Some(2)),
        ("Decoding f=3", Some(3)),
    ];
    for (label, f) in scenarios {
        for family in [BaseFamily::Rs, BaseFamily::Star, BaseFamily::Tip, BaseFamily::Lrc] {
            let mut row: Vec<Cell> =
                vec![label.into(), baseline_name(family, 0, 4).replace("(0", "(k").into()];
            for k in K_TABLE5 {
                let (base, appr) = match f {
                    None => (
                        baseline_encode_secs(family, k, 4),
                        appr_encode_secs(family, k, 4),
                    ),
                    Some(f) => (
                        baseline_decode_secs(family, k, 4, f),
                        appr_decode_secs(family, k, 4, f),
                    ),
                };
                let imp = match (base, appr) {
                    (Some(b), Some(a)) => Some(improvement_pct(b, a)),
                    _ => None,
                };
                row.push(imp.into());
            }
            t.row(row);
        }
    }
    t.note("Paper Table 5: encoding ~47-62%; single-failure decode ≈ parity (±10%); double ~73-79%; triple ~73-88% (LRC highest).");
    t
}

/// Paper Fig. 13: all metrics at k=5 side by side.
pub fn fig_bar() -> Table {
    let mut t = Table::new(
        "fig-bar",
        "Encoding and decoding time at k=5, all codes (paper Fig. 13), ms",
        &["code", "encode", "decode f=1", "decode f=2", "decode f=3"],
    );
    let k = 5;
    // Baselines.
    let mut baselines: Vec<(String, apec_ec::BoxedCode)> = Vec::new();
    baselines.push((baseline_name(BaseFamily::Rs, k, 4), crate::codes::rs_at(k)));
    if let Some(c) = crate::codes::lrc_at(k, 4) {
        baselines.push((baseline_name(BaseFamily::Lrc, k, 4), c));
    }
    if let Some(c) = crate::codes::star_at(k) {
        baselines.push((baseline_name(BaseFamily::Star, k, 4), c));
    }
    if let Some(c) = crate::codes::tip_at(k) {
        baselines.push((baseline_name(BaseFamily::Tip, k, 4), c));
    }
    for (name, code) in &baselines {
        let enc = measure_encode(code.as_ref(), 1).seconds * 1e3;
        let d1 = measure_decode(code.as_ref(), 1, 2).map(|m| m.seconds * 1e3);
        let d2 = measure_decode(code.as_ref(), 2, 2).map(|m| m.seconds * 1e3);
        let d3 = measure_decode(code.as_ref(), 3, 2).map(|m| m.seconds * 1e3);
        t.row(vec![name.clone().into(), enc.into(), d1.into(), d2.into(), d3.into()]);
    }
    // Approximate codes (h=4, averaged structures).
    for family in FAMILIES {
        let Some(enc) = appr_encode_secs(family, k, 4) else {
            continue;
        };
        let d1 = appr_decode_secs(family, k, 4, 1);
        let d2 = appr_decode_secs(family, k, 4, 2);
        let d3 = appr_decode_secs(family, k, 4, 3);
        t.row(vec![
            format!("APPR.{family}({k},1,2,4)").into(),
            (enc * 1e3).into(),
            d1.map(|s| s * 1e3).into(),
            d2.map(|s| s * 1e3).into(),
            d3.map(|s| s * 1e3).into(),
        ]);
    }
    t.note("Expected shape (paper): the Approximate Codes post the best times in every column.");
    t
}
