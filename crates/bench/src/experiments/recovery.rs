//! Paper Fig. 14: cluster recovery time under double/triple node
//! failures, on the discrete-event timing model.
//!
//! Node size defaults to 1 GiB like the paper's testbed
//! (`APEC_BENCH_NODE_MB` overrides). Failure patterns are sampled
//! uniformly; Approximate-Code rows average Even and Uneven structures
//! over the sampled patterns, exactly as §4.1 prescribes.

use crate::table::Table;
use apec_cluster::{simulate_repair, ClusterConfig, RepairPlanner};
use apec_lrc::Lrc;
use apec_rs::ReedSolomon;
use apec_xor::{star, tip_like};
use approx_code::{ApproxCode, BaseFamily, Structure};
use rand::prelude::*;
use rand::rngs::StdRng;

fn node_bytes() -> u64 {
    std::env::var("APEC_BENCH_NODE_MB")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(|mb| mb << 20)
        .unwrap_or(1 << 30)
}

/// Average simulated recovery over random `f`-node patterns.
fn avg_recovery(
    planner: &dyn RepairPlanner,
    n_nodes: usize,
    f: usize,
    cfg: &ClusterConfig,
    seed: u64,
) -> (f64, f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<usize> = (0..n_nodes).collect();
    let samples = 8usize;
    let mut secs = 0.0;
    let mut read = 0.0;
    let mut written = 0.0;
    let mut counted = 0usize;
    for _ in 0..samples {
        nodes.shuffle(&mut rng);
        let mut failed = nodes[..f].to_vec();
        failed.sort_unstable();
        let Ok(profile) = planner.repair_profile(&failed) else {
            // Beyond-tolerance patterns exist only for the 2DFT-style
            // pieces; skip them like the paper's testbed would (data loss,
            // no recovery to time).
            continue;
        };
        let t = simulate_repair(cfg, &profile, node_bytes(), None);
        secs += t.seconds;
        read += t.bytes_read as f64;
        written += t.bytes_written as f64;
        counted += 1;
    }
    let c = counted.max(1) as f64;
    (secs / c, read / c / (1u64 << 30) as f64, written / c / (1u64 << 30) as f64)
}

/// Paper Fig. 14 (a: double failures, b: triple failures).
pub fn fig_recovery() -> Vec<Table> {
    let cfg = ClusterConfig::default();
    let k = 5;
    [2usize, 3]
        .into_iter()
        .map(|f| {
            let mut t = Table::new(
                format!("fig-recovery-{f}"),
                format!(
                    "Simulated recovery time, {f} node failures, k={k}, {} MiB/node (paper Fig. 14)",
                    node_bytes() >> 20
                ),
                &["code", "recovery s", "read GiB", "written GiB", "speedup vs RS"],
            );
            let rs = ReedSolomon::vandermonde(k, 3).unwrap();
            let (rs_secs, rs_r, rs_w) = avg_recovery(&rs, 8, f, &cfg, 3);
            t.row(vec![
                "RS(5,3)".into(),
                rs_secs.into(),
                rs_r.into(),
                rs_w.into(),
                1.0.into(),
            ]);

            if let Ok(lrc) = Lrc::new(k, 4, 2) {
                let (s, r, w) = avg_recovery(&lrc, lrc_nodes(&lrc), f, &cfg, 4);
                t.row(vec![
                    "LRC(5,4,2)".into(),
                    s.into(),
                    r.into(),
                    w.into(),
                    (rs_secs / s).into(),
                ]);
            }
            if let Ok(code) = star(5, 5) {
                use apec_ec::ErasureCode;
                let n = code.total_nodes();
                let (s, r, w) = avg_recovery(&code, n, f, &cfg, 5);
                t.row(vec![
                    "STAR(5,3)".into(),
                    s.into(),
                    r.into(),
                    w.into(),
                    (rs_secs / s).into(),
                ]);
            }
            if let Ok(code) = tip_like(7, 5) {
                use apec_ec::ErasureCode;
                let n = code.total_nodes();
                let (s, r, w) = avg_recovery(&code, n, f, &cfg, 6);
                t.row(vec![
                    "TIP(5,3)".into(),
                    s.into(),
                    r.into(),
                    w.into(),
                    (rs_secs / s).into(),
                ]);
            }
            for family in [BaseFamily::Rs, BaseFamily::Star, BaseFamily::Tip] {
                let mut secs = 0.0;
                let mut read = 0.0;
                let mut written = 0.0;
                let mut ok = true;
                for structure in [Structure::Even, Structure::Uneven] {
                    match ApproxCode::build_named(family, k, 1, 2, 4, structure) {
                        Ok(code) => {
                            let n = code.params().total_nodes();
                            let (s, r, w) = avg_recovery(&code, n, f, &cfg, 7);
                            secs += s / 2.0;
                            read += r / 2.0;
                            written += w / 2.0;
                        }
                        Err(_) => ok = false,
                    }
                }
                if ok {
                    t.row(vec![
                        format!("APPR.{family}(5,1,2,4) random").into(),
                        secs.into(),
                        read.into(),
                        written.into(),
                        (rs_secs / secs).into(),
                    ]);
                }
            }
            // The paper's headline case: all failures land in one stripe.
            // Under Even the tiered repair rebuilds only the important
            // 1/h of each lost node (the rest goes to video recovery), so
            // every stage moves ~4× less data — the source of the
            // "up to 4.7×" claim.
            for family in [BaseFamily::Rs, BaseFamily::Star, BaseFamily::Tip] {
                let Ok(code) = ApproxCode::build_named(family, k, 1, 2, 4, Structure::Even)
                else {
                    continue;
                };
                let pr = *code.params();
                let failed: Vec<usize> = (0..f).map(|j| pr.data_node(1, j)).collect();
                if let Ok(profile) = code.repair_profile(&failed) {
                    let time = simulate_repair(&cfg, &profile, node_bytes(), None);
                    t.row(vec![
                        format!("APPR.{family}(5,1,2,4) same-stripe").into(),
                        time.seconds.into(),
                        (time.bytes_read as f64 / (1u64 << 30) as f64).into(),
                        (time.bytes_written as f64 / (1u64 << 30) as f64).into(),
                        (rs_secs / time.seconds).into(),
                    ]);
                }
            }
            t.note("Expected shape (paper): Approximate Codes recover fastest; the same-stripe rows isolate the paper's headline case (up to 4.7×/95.9%) where only the important 1/h of each lost node is rebuilt.");
            t
        })
        .collect()
}

fn lrc_nodes(lrc: &Lrc) -> usize {
    use apec_ec::ErasureCode;
    lrc.total_nodes()
}
