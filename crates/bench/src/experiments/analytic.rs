//! Analytic experiments: Table 3 (properties), Fig. 8 (storage), Table 4
//! (storage improvement), Fig. 9 (single-write), §3.4 (reliability).

use crate::codes::{appr_at, K_SWEEP};
use crate::table::{Cell, Table};
use apec_analysis::{overhead, reliability, writecost};
use apec_ec::ErasureCode;
use approx_code::{ApproxCode, BaseFamily, Structure};

/// Paper Table 3: storage overhead, fault tolerance and single-write
/// overhead — formulas alongside the values measured from the generated
/// codes.
pub fn tab_properties() -> Table {
    let mut t = Table::new(
        "tab-properties",
        "Storage overhead / fault tolerance / avg. single-write (paper Table 3), k=5, h=4",
        &[
            "code",
            "overhead (formula)",
            "overhead (measured)",
            "tolerance",
            "single-write (formula)",
            "single-write (measured)",
        ],
    );
    let k = 5;
    let h = 4;

    let rs = crate::codes::rs_at(k);
    t.row(vec![
        rs.name().into(),
        overhead::rs_overhead(k, 3).into(),
        rs.storage_overhead().into(),
        format!("{}", rs.fault_tolerance()).into(),
        writecost::rs_single_write(3).into(),
        rs.update_pattern().node_writes.into(),
    ]);

    if let Some(lrc) = crate::codes::lrc_at(k, 4) {
        t.row(vec![
            lrc.name().into(),
            overhead::lrc_overhead(k, 4, 2).into(),
            lrc.storage_overhead().into(),
            format!("{}", lrc.fault_tolerance()).into(),
            writecost::lrc_single_write(2).into(),
            lrc.update_pattern().node_writes.into(),
        ]);
    }
    if let Some(star) = crate::codes::star_at(k) {
        t.row(vec![
            star.name().into(),
            overhead::star_overhead(k).into(),
            star.storage_overhead().into(),
            format!("{}", star.fault_tolerance()).into(),
            writecost::star_single_write(k).into(),
            star.update_pattern().node_writes.into(),
        ]);
    }
    if let Some(tip) = crate::codes::tip_at(k) {
        t.row(vec![
            tip.name().into(),
            overhead::tip_overhead(k + 2).into(),
            tip.storage_overhead().into(),
            format!("{}", tip.fault_tolerance()).into(),
            writecost::tip_single_write().into(),
            tip.update_pattern().node_writes.into(),
        ]);
    }

    let appr_rows: Vec<(BaseFamily, usize, usize, f64)> = vec![
        (BaseFamily::Rs, 1, 2, writecost::appr_rs_single_write(1, 2, h)),
        (BaseFamily::Lrc, 1, 2, writecost::appr_lrc_single_write(2, h)),
        (BaseFamily::Star, 2, 1, writecost::appr_star_single_write(k, h)),
        (BaseFamily::Tip, 1, 2, writecost::appr_tip_single_write(h)),
    ];
    for (family, r, g, sw_formula) in appr_rows {
        if let Some(code) = appr_at(family, k, r, g, h, Structure::Even) {
            t.row(vec![
                code.name().into(),
                overhead::appr_overhead(k, r, g, h).into(),
                code.storage_overhead().into(),
                format!("{} / {} (important)", code.fault_tolerance(), code.important_fault_tolerance())
                    .into(),
                sw_formula.into(),
                code.update_pattern().node_writes.into(),
            ]);
        }
    }
    t.note("Measured values come from the instantiated codes (update_pattern counts element writes per data update). TIP single-write uses the original paper's constant 4; our TIP-like stand-in carries EVENODD-style adjusters (see DESIGN.md).");
    t
}

/// Paper Fig. 8: storage overhead of RS(k,3) vs APPR.RS variants, one
/// panel per `h`.
pub fn fig_storage() -> Vec<Table> {
    [4usize, 6]
        .into_iter()
        .map(|h| {
            let mut t = Table::new(
                format!("fig-storage-h{h}"),
                format!("Storage overhead, RS(k,3) vs APPR.RS (h={h}) — paper Fig. 8"),
                &["k", "RS(k,3)", "APPR.RS(k,1,2,h)", "APPR.RS(k,2,1,h)"],
            );
            for k in 4..=9 {
                t.row(vec![
                    format!("{k}").into(),
                    overhead::rs_overhead(k, 3).into(),
                    overhead::appr_overhead(k, 1, 2, h).into(),
                    overhead::appr_overhead(k, 2, 1, h).into(),
                ]);
            }
            t.note("Lower is better. The APPR rows also apply to LRC/STAR/TIP bases (same node geometry).");
            t
        })
        .collect()
}

/// Paper Table 4: storage-overhead improvement of APPR.RS over RS(k,3).
pub fn tab_so() -> Table {
    let mut t = Table::new(
        "tab-so",
        "Improvement of APPR.RS over RS(k,3) on storage overhead (paper Table 4), %",
        &["method", "4", "5", "6", "7", "8", "9"],
    );
    for (r, g, h) in [(1usize, 2usize, 4usize), (2, 1, 4), (1, 2, 6), (2, 1, 6)] {
        let mut row: Vec<Cell> = vec![format!("APPR.RS(k,{r},{g},{h})").into()];
        for k in 4..=9 {
            row.push((overhead::appr_rs_improvement(k, r, g, h) * 100.0).into());
        }
        t.row(row);
    }
    t.note("Paper values: 21.4/18.8/16.7/15.0/13.6/12.5 for (1,2,4); 23.8/20.8/18.5/16.7/15.2/13.9 for (1,2,6).");
    t
}

/// Paper Fig. 9: single-write cost for RS, STAR, APPR.RS, APPR.STAR.
pub fn fig_single_write() -> Vec<Table> {
    [4usize, 6]
        .into_iter()
        .map(|h| {
            let mut t = Table::new(
                format!("fig-single-write-h{h}"),
                format!("Average single-write I/Os (h={h}) — paper Fig. 9"),
                &[
                    "k",
                    "RS(k,3)",
                    "STAR(k,3)",
                    "APPR.RS(k,1,2,h)",
                    "APPR.STAR(k,2,1,h) measured",
                ],
            );
            for k in K_SWEEP {
                let appr_star: Option<f64> = appr_at(BaseFamily::Star, k, 2, 1, h, Structure::Even)
                    .map(|c| c.update_pattern().node_writes);
                let star: Option<f64> = crate::codes::star_at(k)
                    .map(|c| c.update_pattern().node_writes);
                t.row(vec![
                    format!("{k}").into(),
                    writecost::rs_single_write(3).into(),
                    star.into(),
                    writecost::appr_rs_single_write(1, 2, h).into(),
                    appr_star.into(),
                ]);
            }
            t.note("Measured = element-level writes counted on the instantiated codes; matches the Table 3 formulas (6−4/p for STAR, 1+r+g/h for APPR.RS).");
            t
        })
        .collect()
}

/// §3.4: P_U / P_I — analytic, exhaustively enumerated against the real
/// decoder at small scale, and Monte-Carlo at evaluation scale.
pub fn reliability_table() -> Table {
    let mut t = Table::new(
        "reliability",
        "P_U (f=r+1) and P_I (f=r+g+1) — paper §3.4",
        &[
            "code",
            "P_U analytic %",
            "P_U measured %",
            "P_I analytic %",
            "P_I measured %",
            "method",
        ],
    );
    // Exact enumeration at the paper's (3,1,2,3) example.
    for structure in [Structure::Even, Structure::Uneven] {
        let code = ApproxCode::build_named(BaseFamily::Rs, 3, 1, 2, 3, structure).unwrap();
        let m2 = reliability::enumerate_reliability(&code, 2);
        let m4 = reliability::enumerate_reliability(&code, 4);
        t.row(vec![
            code.name().into(),
            (reliability::analytic_p_u(3, 1, 2, 3, structure) * 100.0).into(),
            (m2.p_u * 100.0).into(),
            (reliability::analytic_p_i(3, 1, 2, 3, structure).expect("3DFT") * 100.0).into(),
            (m4.p_i * 100.0).into(),
            "exhaustive".into(),
        ]);
    }
    // Monte-Carlo at evaluation scale (k=5, h=4).
    for family in [BaseFamily::Rs, BaseFamily::Star] {
        for structure in [Structure::Even, Structure::Uneven] {
            let code = ApproxCode::build_named(family, 5, 1, 2, 4, structure).unwrap();
            let m2 = reliability::sample_reliability(&code, 2, 1500, 7);
            let m4 = reliability::sample_reliability(&code, 4, 1500, 11);
            t.row(vec![
                code.name().into(),
                (reliability::analytic_p_u(5, 1, 2, 4, structure) * 100.0).into(),
                (m2.p_u * 100.0).into(),
                (reliability::analytic_p_i(5, 1, 2, 4, structure).expect("3DFT") * 100.0).into(),
                (m4.p_i * 100.0).into(),
                "monte-carlo (1500)".into(),
            ]);
        }
    }
    t.note("Paper §3.4 headline: APPR.RS(3,1,2,3): P_U 80.21% (Even) / 86.81% (Uneven); P_I 95.50% / 98.50%.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_experiments_produce_populated_tables() {
        // The measured experiments are exercised by the release-mode
        // harness; the closed-form ones are cheap enough for the unit
        // suite and pin the table shapes.
        let t = tab_properties();
        assert!(t.rows.len() >= 7, "tab-properties rows");
        for t in fig_storage() {
            assert_eq!(t.rows.len(), 6, "{}", t.id);
            assert_eq!(t.columns.len(), 4);
        }
        let t = tab_so();
        assert_eq!(t.rows.len(), 4);
        for t in fig_single_write() {
            assert_eq!(t.rows.len(), crate::codes::K_SWEEP.len());
        }
        let t = reliability_table();
        assert!(t.rows.len() >= 6);
    }

    #[test]
    fn reliability_table_matches_paper_numbers() {
        let t = reliability_table();
        // First row is APPR.RS(3,1,2,3,Even): P_U analytic column ≈ 80.22.
        let cell = t.rows[0][1].to_string();
        let v: f64 = cell.parse().unwrap();
        assert!((v - 80.22).abs() < 0.01, "{cell}");
    }
}
