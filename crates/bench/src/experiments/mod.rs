//! The experiment registry: one entry per table/figure of the paper.

mod ablations;
mod analytic;
mod recovery;
mod timing;
mod video;

use crate::Table;

pub use ablations::*;
pub use analytic::*;
pub use recovery::*;
pub use timing::*;
pub use video::*;

/// All experiment ids, in the order `all` runs them.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "tab-properties",
    "fig-storage",
    "tab-so",
    "fig-single-write",
    "reliability",
    "fig-encoding",
    "tab-summary",
    "fig-decoding-2",
    "fig-decoding-3",
    "fig-bar",
    "fig-recovery",
    "psnr",
    "ablation-structure",
    "ablation-h-sweep",
    "ablation-split",
    "ablation-cauchy",
    "ablation-parallel",
    "ablation-schedule",
];

/// Runs one experiment by id.
pub fn run(id: &str) -> Option<Vec<Table>> {
    Some(match id {
        "tab-properties" => vec![tab_properties()],
        "fig-storage" => fig_storage(),
        "tab-so" => vec![tab_so()],
        "fig-single-write" => fig_single_write(),
        "reliability" => vec![reliability_table()],
        "fig-encoding" => fig_encoding(),
        "tab-summary" => vec![tab_summary()],
        "fig-decoding-2" => fig_decoding(2),
        "fig-decoding-3" => fig_decoding(3),
        "fig-bar" => vec![fig_bar()],
        "fig-recovery" => fig_recovery(),
        "psnr" => vec![psnr_experiment()],
        "ablation-structure" => vec![ablation_structure()],
        "ablation-h-sweep" => vec![ablation_h_sweep()],
        "ablation-split" => vec![ablation_split()],
        "ablation-cauchy" => vec![ablation_cauchy()],
        "ablation-parallel" => vec![ablation_parallel()],
        "ablation-schedule" => vec![ablation_schedule()],
        _ => return None,
    })
}
