//! Ablations for the design choices called out in DESIGN.md §5.

use crate::table::Table;
use crate::workload::{data_shards, measure_encode, repetitions, time_median};
use apec_analysis::reliability;
use apec_ec::parallel::encode_segmented;
use apec_ec::ErasureCode;
use apec_rs::{MatrixKind, ReedSolomon};
use approx_code::{ApproxCode, BaseFamily, Structure};

/// Even vs Uneven: the reliability gap the structure-selection step
/// trades against load balance.
pub fn ablation_structure() -> Table {
    let mut t = Table::new(
        "ablation-structure",
        "Structure selection: Even vs Uneven (k=5, r=1, g=2, h=4)",
        &["structure", "P_U %", "P_I %", "important data nodes", "hot-read imbalance"],
    );
    for structure in [Structure::Even, Structure::Uneven] {
        let code = ApproxCode::build_named(BaseFamily::Rs, 5, 1, 2, 4, structure).unwrap();
        let params = code.params();
        let carrying = (0..params.data_nodes())
            .filter(|&n| params.node_has_important_data(n))
            .count();
        // Hot-read imbalance: serving the important stream loads each data
        // node in proportion to the important elements it hosts. max/mean
        // of 1.0 is a perfectly balanced hot set.
        let epn = code.layout().elements_per_node();
        let mut per_node = vec![0usize; params.data_nodes()];
        for &e in &code.layout().important_data_elements {
            per_node[e / epn] += 1;
        }
        let max = *per_node.iter().max().unwrap() as f64;
        let mean = per_node.iter().sum::<usize>() as f64 / per_node.len() as f64;
        t.row(vec![
            structure.to_string().into(),
            (reliability::analytic_p_u(5, 1, 2, 4, structure) * 100.0).into(),
            (reliability::analytic_p_i(5, 1, 2, 4, structure).expect("3DFT") * 100.0).into(),
            format!("{carrying}/{}", params.data_nodes()).into(),
            (max / mean).into(),
        ]);
    }
    t.note("§3.3's trade-off, quantified: Even serves hot (important) reads evenly (imbalance 1.0); Uneven concentrates them on stripe 0 (imbalance = h) but wins on both reliability expectations.");
    t
}

/// Sweeping the tiering depth h: the storage/reliability trade-off curve
/// behind the framework's central knob (the paper only samples h = 4, 6).
pub fn ablation_h_sweep() -> Table {
    let mut t = Table::new(
        "ablation-h-sweep",
        "Tiering depth sweep: APPR.RS(5,1,2,h), h = 2..12",
        &["h", "overhead", "saving vs RS(5,3) %", "single-write", "P_U %", "P_I %", "important ratio"],
    );
    use apec_analysis::overhead;
    for h in [2usize, 3, 4, 6, 8, 12] {
        t.row(vec![
            format!("{h}").into(),
            overhead::appr_overhead(5, 1, 2, h).into(),
            (overhead::appr_rs_improvement(5, 1, 2, h) * 100.0).into(),
            apec_analysis::writecost::appr_rs_single_write(1, 2, h).into(),
            (reliability::analytic_p_u(5, 1, 2, h, Structure::Uneven) * 100.0).into(),
            (reliability::analytic_p_i(5, 1, 2, h, Structure::Uneven).expect("3DFT") * 100.0).into(),
            format!("1/{h}").into(),
        ]);
    }
    t.note("Deeper tiering buys storage and write cost asymptotically (floor: (k+r)/k) and even improves the beyond-tolerance expectations — the price is paid in video quality, since a smaller fraction of data gets 3DFT protection.");
    t
}

/// (r, g) = (1, 2) vs (2, 1): the two 3DFT parity splits.
pub fn ablation_split() -> Table {
    let mut t = Table::new(
        "ablation-split",
        "Parity split (r,g)=(1,2) vs (2,1) — k=5, h=4, RS base, Even",
        &["(r,g)", "overhead", "single-write", "P_U %", "P_I %", "encode ms"],
    );
    for (r, g) in [(1usize, 2usize), (2, 1)] {
        let code = ApproxCode::build_named(BaseFamily::Rs, 5, r, g, 4, Structure::Even).unwrap();
        let enc = measure_encode(&code, 1).seconds * 1e3;
        t.row(vec![
            format!("({r},{g})").into(),
            code.storage_overhead().into(),
            code.update_pattern().node_writes.into(),
            (reliability::analytic_p_u(5, r, g, 4, Structure::Even) * 100.0).into(),
            (reliability::analytic_p_i(5, r, g, 4, Structure::Even).expect("3DFT") * 100.0).into(),
            enc.into(),
        ]);
    }
    t.note("(1,2) minimises storage and write cost; (2,1) buys much higher P_U (any 2 failures locally repairable).");
    t
}

/// Vandermonde vs Cauchy generator for RS.
pub fn ablation_cauchy() -> Table {
    let mut t = Table::new(
        "ablation-cauchy",
        "RS generator construction: systematic Vandermonde vs Cauchy (encode ms)",
        &["k", "Vandermonde", "Cauchy"],
    );
    for k in [5usize, 9, 13, 17] {
        let v = ReedSolomon::new(k, 3, MatrixKind::Vandermonde).unwrap();
        let c = ReedSolomon::new(k, 3, MatrixKind::Cauchy).unwrap();
        t.row(vec![
            format!("{k}").into(),
            (measure_encode(&v, 1).seconds * 1e3).into(),
            (measure_encode(&c, 1).seconds * 1e3).into(),
        ]);
    }
    t.note("Both run the same table-driven MAC kernels; differences reflect coefficient values only (zero/one coefficients short-circuit).");
    t
}

/// Crossbeam-segmented encode vs serial.
pub fn ablation_parallel() -> Table {
    let mut t = Table::new(
        "ablation-parallel",
        "Segmented parallel encode speedup (RS(9,3) and STAR(7,3))",
        &["code", "threads", "encode ms", "speedup"],
    );
    let codes: Vec<Box<dyn ErasureCode>> = vec![
        Box::new(ReedSolomon::vandermonde(9, 3).unwrap()),
        Box::new(apec_xor::star(7, 7).unwrap()),
    ];
    for code in &codes {
        let data = data_shards(code.as_ref(), 1);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let seg = (data[0].len() / 8).max(code.shard_alignment());
        let mut serial_ms = 0.0;
        for threads in [1usize, 2, 4, 8] {
            let _ = encode_segmented(code.as_ref(), &refs, seg, threads).unwrap();
            let secs = time_median(repetitions(), || {
                let _ = std::hint::black_box(
                    encode_segmented(code.as_ref(), &refs, seg, threads).unwrap(),
                );
            });
            let ms = secs * 1e3;
            if threads == 1 {
                serial_ms = ms;
            }
            t.row(vec![
                code.name().into(),
                format!("{threads}").into(),
                ms.into(),
                (serial_ms / ms).into(),
            ]);
        }
    }
    t.note("Gather/scatter segmentation keeps array-code diagonals intact (see apec-ec::parallel docs). NOTE: under a containerised CPU quota (~1 core sustained) thread scaling cannot materialise; on real multi-core hardware the 2-4 thread rows track core count.");
    t
}

/// Symbolic-plan compilation vs replay: the decode-architecture ablation.
pub fn ablation_schedule() -> Table {
    let mut t = Table::new(
        "ablation-schedule",
        "XOR-schedule compilation vs replay (STAR(13,3), f=3, per stripe)",
        &["phase", "ms"],
    );
    let code = apec_xor::star(13, 13).unwrap();
    let victims = [0usize, 5, 14];

    // Symbolic solve alone (what an uncached decoder would redo per
    // stripe): GF(2) elimination over the erasure pattern.
    let spec = code.spec();
    let erased = spec.erase_columns(&victims);
    let solve = time_median(repetitions(), || {
        let _ = std::hint::black_box(spec.recovery_plan(&erased).unwrap());
    });
    t.row(vec!["symbolic solve (per pattern)".into(), (solve * 1e3).into()]);

    // Replay over a real stripe (the cached steady state).
    let data = data_shards(&code, 1);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = code.encode(&refs).unwrap();
    let full: Vec<Option<Vec<u8>>> = data.iter().cloned().chain(parity).map(Some).collect();
    let mut stripe = full.clone();
    for &v in &victims {
        stripe[v] = None;
    }
    code.reconstruct(&mut stripe).unwrap();
    let warm = time_median(repetitions(), || {
        for &v in &victims {
            stripe[v] = None;
        }
        code.reconstruct(std::hint::black_box(&mut stripe)).unwrap();
    });
    t.row(vec![
        format!("plan replay ({} MiB stripe)", crate::workload::stripe_bytes() >> 20).into(),
        (warm * 1e3).into(),
    ]);
    t.note("A node repair re-decodes thousands of stripes with one failure pattern. Caching the compiled plan amortises the solve to zero; re-solving per stripe would add the first row to every stripe of the repair.");
    t
}
