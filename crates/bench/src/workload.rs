//! Workload generation and wall-clock measurement helpers.

use apec_ec::ErasureCode;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;

/// How much data each measured stripe carries, overridable with the
/// `APEC_BENCH_MB` environment variable (default 8 MiB — large enough for
/// stable timings, small enough that the full suite finishes in minutes).
pub fn stripe_bytes() -> usize {
    std::env::var("APEC_BENCH_MB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|mb| mb << 20)
        .unwrap_or(8 << 20)
}

/// Timing repetitions (median is reported), `APEC_BENCH_REPS` to override.
pub fn repetitions() -> usize {
    std::env::var("APEC_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

/// Generates `k` data shards whose total size approximates
/// [`stripe_bytes`], respecting the code's alignment.
pub fn data_shards(code: &dyn ErasureCode, seed: u64) -> Vec<Vec<u8>> {
    let k = code.data_nodes();
    let align = code.shard_alignment();
    let per_shard = (stripe_bytes() / k).div_ceil(align).max(1) * align;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k)
        .map(|_| {
            let mut v = vec![0u8; per_shard];
            rng.fill(v.as_mut_slice());
            v
        })
        .collect()
}

/// Containerised CPUs grant a short burst budget before throttling to the
/// sustained quota; measurements taken during the burst read ~4× faster
/// than steady state. Burn the budget once so every number in a run is
/// taken under the same (sustained) conditions.
fn burn_in() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut a = vec![0u8; 1 << 20];
        let b = vec![0x5Au8; 1 << 20];
        let start = Instant::now();
        while start.elapsed().as_secs_f64() < 3.0 {
            for (x, y) in a.iter_mut().zip(&b) {
                *x ^= *y; // raw-xor-ok: deliberate CPU burn-in, must not hit kernels
            }
            std::hint::black_box(&a);
        }
    });
}

/// Median wall time of `reps` runs of `f`, in seconds.
pub fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    burn_in();
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Measured encode performance of a code.
pub struct EncodeMeasurement {
    /// Median encode wall time, seconds.
    pub seconds: f64,
    /// Data bytes encoded per second.
    pub data_bps: f64,
}

/// Times a full-stripe encode.
pub fn measure_encode(code: &dyn ErasureCode, seed: u64) -> EncodeMeasurement {
    let data = data_shards(code, seed);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    // Warm-up builds caches (none for encode, but keeps parity with
    // decode measurement).
    let _ = code.encode(&refs).expect("encode");
    let seconds = time_median(repetitions(), || {
        let _ = std::hint::black_box(code.encode(&refs).expect("encode"));
    });
    let total: usize = data.iter().map(Vec::len).sum();
    EncodeMeasurement {
        seconds,
        data_bps: total as f64 / seconds,
    }
}

/// Measured decode performance for a fixed failure pattern.
pub struct DecodeMeasurement {
    /// Median reconstruct wall time, seconds.
    pub seconds: f64,
    /// Rebuilt bytes per second.
    pub rebuilt_bps: f64,
}

/// Times reconstruction of the given failed node pattern, averaging over
/// `patterns` random choices of `f` distinct nodes.
pub fn measure_decode(code: &dyn ErasureCode, f: usize, seed: u64) -> Option<DecodeMeasurement> {
    let data = data_shards(code, seed);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = code.encode(&refs).expect("encode");
    let full: Vec<Option<Vec<u8>>> = data.iter().cloned().chain(parity).map(Some).collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEC0DE);
    let n = code.total_nodes();
    let mut nodes: Vec<usize> = (0..n).collect();

    let patterns = 6usize;
    let mut total_time = 0.0;
    let mut rebuilt = 0usize;
    for _ in 0..patterns {
        nodes.shuffle(&mut rng);
        let victims = &nodes[..f];
        // Warm the symbolic plan cache: the paper's testbed amortises
        // decode planning across thousands of blocks per node, so steady
        // state is what matters. Re-erasing the victims between runs (a
        // few deallocations) keeps the stripe clone out of the timing
        // window — the clone would otherwise dominate and flatten the
        // differences between codes.
        let mut stripe = full.clone();
        for &v in victims {
            stripe[v] = None;
        }
        code.reconstruct(&mut stripe).ok()?;
        let seconds = time_median(repetitions(), || {
            for &v in victims {
                stripe[v] = None;
            }
            code.reconstruct(std::hint::black_box(&mut stripe)).expect("reconstruct");
        });
        total_time += seconds;
        rebuilt += f * data[0].len();
    }
    let seconds = total_time / patterns as f64;
    Some(DecodeMeasurement {
        seconds,
        rebuilt_bps: rebuilt as f64 / patterns as f64 / seconds,
    })
}

/// Relative improvement `(base − new) / base`, in percent.
pub fn improvement_pct(base: f64, new: f64) -> f64 {
    (base - new) / base * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use apec_rs::ReedSolomon;

    #[test]
    fn shards_respect_alignment_and_size() {
        let code = apec_xor::star(5, 5).unwrap();
        let data = data_shards(&code, 1);
        assert_eq!(data.len(), 5);
        assert_eq!(data[0].len() % code.shard_alignment(), 0);
    }

    #[test]
    fn time_median_is_positive() {
        let t = time_median(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t >= 0.0);
    }

    #[test]
    fn encode_and_decode_measurements_run() {
        // Shrink the workload for the unit test.
        std::env::set_var("APEC_BENCH_MB", "1");
        std::env::set_var("APEC_BENCH_REPS", "1");
        let code = ReedSolomon::vandermonde(4, 3).unwrap();
        let e = measure_encode(&code, 3);
        assert!(e.seconds > 0.0 && e.data_bps > 0.0);
        let d = measure_decode(&code, 2, 3).unwrap();
        assert!(d.seconds > 0.0 && d.rebuilt_bps > 0.0);
        std::env::remove_var("APEC_BENCH_MB");
        std::env::remove_var("APEC_BENCH_REPS");
    }

    #[test]
    fn improvement_math() {
        assert_eq!(improvement_pct(4.0, 2.0), 50.0);
        assert_eq!(improvement_pct(4.0, 5.0), -25.0);
    }
}
