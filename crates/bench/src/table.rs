//! Result tables: the harness's uniform output format (markdown +
//! machine-readable JSON).

use serde::Serialize;
use std::fmt;

/// A cell value: either text or a number formatted on output.
#[derive(Debug, Clone, Serialize)]
#[serde(untagged)]
pub enum Cell {
    /// Free-form text.
    Text(String),
    /// A numeric value, rendered with three significant decimals.
    Num(f64),
    /// A missing measurement (the paper's "/" entries, e.g. STAR at
    /// non-prime k).
    Missing,
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Text(s) => write!(f, "{s}"),
            Cell::Num(v) => {
                if v.abs() >= 1000.0 {
                    write!(f, "{v:.0}")
                } else if v.abs() >= 10.0 {
                    write!(f, "{v:.2}")
                } else {
                    write!(f, "{v:.3}")
                }
            }
            Cell::Missing => write!(f, "/"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v)
    }
}

impl From<Option<f64>> for Cell {
    fn from(v: Option<f64>) -> Self {
        v.map(Cell::Num).unwrap_or(Cell::Missing)
    }
}

/// One experiment's result table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment id (e.g. `fig-encoding`).
    pub id: String,
    /// Human title, mirrors the paper's caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row data.
    pub rows: Vec<Vec<Cell>>,
    /// Free-form notes (workload parameters, expected shape vs paper).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Self {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Renders as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|c| c.to_string()).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        out.push_str(&format!("| {} |\n", header.join(" | ")));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &rendered {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_and_aligns() {
        let mut t = Table::new("t1", "demo", &["k", "value"]);
        t.row(vec!["5".into(), 1.5.into()]);
        t.row(vec!["17".into(), Cell::Missing]);
        t.note("a note");
        let md = t.to_markdown();
        assert!(md.contains("### t1 — demo"));
        assert!(md.contains("| 5 "));
        assert!(md.contains("| /"));
        assert!(md.contains("> a note"));
    }

    #[test]
    fn cell_formatting() {
        assert_eq!(Cell::Num(1234.5).to_string(), "1234");
        assert_eq!(Cell::Num(45.678).to_string(), "45.68");
        assert_eq!(Cell::Num(1.23456).to_string(), "1.235");
        assert_eq!(Cell::from(None::<f64>).to_string(), "/");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new("t", "t", &["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn json_serialises() {
        let mut t = Table::new("t2", "json", &["a"]);
        t.row(vec![2.0.into()]);
        let s = serde_json::to_string(&t).unwrap();
        assert!(s.contains("\"id\":\"t2\""));
        assert!(s.contains("2.0"));
    }
}
