//! Code factories for the evaluation sweep.
//!
//! The paper's §4.1 selects, for `k ∈ {5, 7, 9, 11, 13, 15, 17}`:
//! `RS(k,3)`, `LRC(k,4,2)`, `LRC(k,6,2)`, `STAR(k,3)`, `TIP(k,3)` and the
//! Approximate forms `APPR.RS/LRC/TIP/STAR(k,1,2,4)` and `(k,1,2,6)`.
//! STAR requires `k` prime and TIP `k + 2` prime; the paper's Table 5
//! marks the impossible combinations "/" — [`star_at`]/[`tip_at`] return
//! `None` in exactly those spots so the harness reproduces the table's
//! holes. (Shortened codes exist in `apec-xor`, but the evaluation
//! follows the paper's native geometries.)

use apec_ec::{BoxedCode, ErasureCode};
use apec_lrc::Lrc;
use apec_rs::ReedSolomon;
use apec_xor::{is_prime, star, tip_like};
use approx_code::{ApproxCode, BaseFamily, Structure};

/// The k sweep of the evaluation.
pub const K_SWEEP: [usize; 7] = [5, 7, 9, 11, 13, 15, 17];

/// The k values Table 5 reports.
pub const K_TABLE5: [usize; 5] = [5, 7, 9, 11, 13];

/// `RS(k, 3)`.
pub fn rs_at(k: usize) -> BoxedCode {
    Box::new(ReedSolomon::vandermonde(k, 3).expect("valid RS geometry"))
}

/// `LRC(k, l, 2)`.
pub fn lrc_at(k: usize, l: usize) -> Option<BoxedCode> {
    Lrc::new(k, l, 2).ok().map(|c| Box::new(c) as BoxedCode)
}

/// `STAR(k, 3)` at native geometry: only when `k` is prime.
pub fn star_at(k: usize) -> Option<BoxedCode> {
    if is_prime(k) {
        Some(Box::new(star(k, k).expect("prime geometry")) as BoxedCode)
    } else {
        None
    }
}

/// `TIP(k, 3)` at native geometry: only when `k + 2` is prime.
pub fn tip_at(k: usize) -> Option<BoxedCode> {
    if is_prime(k + 2) {
        Some(Box::new(tip_like(k + 2, k).expect("prime geometry")) as BoxedCode)
    } else {
        None
    }
}

/// An Approximate Code for the sweep. Structures matter little for the
/// timing metrics (§4.1), so the harness uses one per call and the
/// experiments average the two.
pub fn appr_at(
    family: BaseFamily,
    k: usize,
    r: usize,
    g: usize,
    h: usize,
    structure: Structure,
) -> Option<ApproxCode> {
    // Match the baselines' geometry constraints so "/" holes line up.
    match family {
        BaseFamily::Star if !is_prime(k) => return None,
        BaseFamily::Tip if !is_prime(k + 2) => return None,
        _ => {}
    }
    ApproxCode::build_named(family, k, r, g, h, structure).ok()
}

/// The Approximate Code matching a baseline family name.
pub fn appr_pair_at(
    family: BaseFamily,
    k: usize,
    h: usize,
) -> Option<(ApproxCode, ApproxCode)> {
    Some((
        appr_at(family, k, 1, 2, h, Structure::Even)?,
        appr_at(family, k, 1, 2, h, Structure::Uneven)?,
    ))
}

/// Baseline display name for a family at `k` (paper notation).
pub fn baseline_name(family: BaseFamily, k: usize, l: usize) -> String {
    match family {
        BaseFamily::Rs => format!("RS({k},3)"),
        BaseFamily::Lrc => format!("LRC({k},{l},2)"),
        BaseFamily::Star => format!("STAR({k},3)"),
        BaseFamily::Tip => format!("TIP({k},3)"),
    }
}

/// The baseline codec a family compares against at `k` (LRC group count
/// `l` follows the paper: matched to the APPR `h`).
pub fn baseline_at(family: BaseFamily, k: usize, l: usize) -> Option<BoxedCode> {
    match family {
        BaseFamily::Rs => Some(rs_at(k)),
        BaseFamily::Lrc => lrc_at(k, l),
        BaseFamily::Star => star_at(k),
        BaseFamily::Tip => tip_at(k),
    }
}

/// Sanity helper: a code's geometry rendered for table rows.
pub fn describe(code: &dyn ErasureCode) -> String {
    format!(
        "{} [n={}, k={}, t={}]",
        code.name(),
        code.total_nodes(),
        code.data_nodes(),
        code.fault_tolerance()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_holes_match_table5() {
        // STAR: defined at 5, 7, 11, 13, 17; missing at 9 and 15.
        assert!(star_at(5).is_some());
        assert!(star_at(9).is_none());
        assert!(star_at(15).is_none());
        // TIP: k+2 prime → 5, 9, 11, 15, 17; missing at 7 and 13.
        assert!(tip_at(5).is_some());
        assert!(tip_at(7).is_none());
        assert!(tip_at(9).is_some());
        assert!(tip_at(13).is_none());
        assert!(tip_at(15).is_some());
    }

    #[test]
    fn appr_holes_follow_baselines() {
        use approx_code::Structure::*;
        assert!(appr_at(BaseFamily::Star, 9, 1, 2, 4, Even).is_none());
        assert!(appr_at(BaseFamily::Tip, 7, 1, 2, 4, Even).is_none());
        assert!(appr_at(BaseFamily::Rs, 9, 1, 2, 4, Even).is_some());
        assert!(appr_pair_at(BaseFamily::Star, 5, 4).is_some());
    }

    #[test]
    fn factories_build_working_codes() {
        for k in K_SWEEP {
            let code = rs_at(k);
            assert_eq!(code.data_nodes(), k);
            assert_eq!(code.parity_nodes(), 3);
            if let Some(code) = star_at(k) {
                assert_eq!(code.fault_tolerance(), 3);
            }
            if let Some(code) = tip_at(k) {
                assert_eq!(code.data_nodes(), k);
            }
            if let Some(code) = lrc_at(k, 4) {
                assert_eq!(code.parity_nodes(), 6);
            }
        }
    }
}
