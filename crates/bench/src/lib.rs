//! The evaluation harness: reproduces every table and figure of the
//! paper's §4 on top of the workspace's real codecs, the analytical
//! models and the cluster timing simulator.
//!
//! Run `cargo run --release -p apec-bench --bin experiments -- all` to
//! regenerate the complete evaluation, or pass an experiment id
//! (`fig-storage`, `tab-so`, `fig-single-write`, `fig-encoding`,
//! `tab-summary`, `fig-decoding-2`, `fig-decoding-3`, `fig-bar`,
//! `fig-recovery`, `reliability`, `psnr`, `tab-properties`, ablations) —
//! see `experiments --help`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codes;
pub mod experiments;
pub mod table;
pub mod workload;

pub use table::Table;
