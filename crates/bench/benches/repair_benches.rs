//! Repair-path benchmarks: legacy whole-stripe `reconstruct` versus the
//! plan-IR executor, full versus partial decode.
//!
//! Two outputs per run:
//!
//! 1. Criterion groups (`repair/*`) with statistically robust per-mode
//!    timings, for regression tracking.
//! 2. `BENCH_repair.json` at the repository root — a compact
//!    machine-readable summary (median repair latency per code x erasure
//!    pattern x mode, plus each plan's shard-read/rebuild footprint) used
//!    by the acceptance criteria: the pooled executor must not regress
//!    against `reconstruct`, and partial decode must beat full repair on
//!    single-erasure degraded reads.
//!
//! Modes:
//! - `reconstruct_full`: the pre-plan repair path — assemble an owned
//!   `Vec<Option<Vec<u8>>>` stripe (cloning every survivor, as the old
//!   cluster store did) and call [`ErasureCode::reconstruct`].
//! - `plan_full_pooled`: `plan_repair(erased, erased)` executed through
//!   the pooled [`RepairScratch`] arena — zero per-call allocation warm.
//! - `plan_partial_pooled`: `plan_repair(erased, wanted)` with
//!   `wanted` a strict subset of `erased` — the degraded-read shape.

use apec_ec::{ErasureCode, RepairPlan, RepairScratch};
use apec_lrc::Lrc;
use apec_rs::{MatrixKind, ReedSolomon};
use approx_code::{ApproxCode, BaseFamily, Structure};
use criterion::{BenchmarkId, Criterion, Throughput};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;

/// Target shard size; rounded down to the code's alignment.
const TARGET_SHARD: usize = 64 << 10;

/// One benchmarked repair situation: a code, a set of dead nodes, and the
/// decode targets exercised against it. A `None` wanted set means the
/// legacy whole-stripe `reconstruct` path.
struct Scenario {
    code: Box<dyn ErasureCode>,
    erased: Vec<usize>,
    modes: Vec<(&'static str, Option<Vec<usize>>)>,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        // MDS double failure: the plan executor must hold its own on the
        // worst case (every survivor read, both shards recomputed), and
        // partial decode of one of the two lost shards must be cheaper.
        Scenario {
            code: Box::new(ReedSolomon::new(6, 3, MatrixKind::Vandermonde).unwrap()),
            erased: vec![0, 8],
            modes: vec![
                ("reconstruct_full", None),
                ("plan_full_pooled", Some(vec![0, 8])),
                ("plan_partial_pooled", Some(vec![0])),
            ],
        },
        // Single-erasure degraded reads: one data shard down, the client
        // wants exactly that shard. RS still reads k survivors either way,
        // so this isolates the executor/allocation overhead...
        Scenario {
            code: Box::new(ReedSolomon::new(6, 3, MatrixKind::Vandermonde).unwrap()),
            erased: vec![0],
            modes: vec![
                ("reconstruct_full", None),
                ("plan_full_pooled", Some(vec![0])),
            ],
        },
        // ...while LRC's planner reads only the failed shard's local
        // group, so the plan path wins on I/O and on time.
        Scenario {
            code: Box::new(Lrc::new(6, 2, 2).unwrap()),
            erased: vec![0],
            modes: vec![
                ("reconstruct_full", None),
                ("plan_full_pooled", Some(vec![0])),
            ],
        },
        // Approximate framework code (STAR base): degraded read of one
        // important data node through the tiered planner.
        Scenario {
            code: Box::new(
                ApproxCode::build_named(BaseFamily::Star, 3, 1, 1, 2, Structure::Uneven).unwrap(),
            ),
            erased: vec![0],
            modes: vec![
                ("reconstruct_full", None),
                ("plan_full_pooled", Some(vec![0])),
            ],
        },
    ]
}

/// An encoded stripe shared by every mode of one scenario.
struct Fixture {
    stripe: Vec<Vec<u8>>,
    shard_len: usize,
}

fn encode_stripe(code: &dyn ErasureCode, seed: u64) -> Fixture {
    let align = code.shard_alignment();
    let shard_len = (TARGET_SHARD / align).max(1) * align;
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<Vec<u8>> = (0..code.data_nodes())
        .map(|_| {
            let mut v = vec![0u8; shard_len];
            rng.fill(v.as_mut_slice());
            v
        })
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = code.encode(&refs).unwrap();
    let stripe: Vec<Vec<u8>> = data.into_iter().chain(parity).collect();
    Fixture { stripe, shard_len }
}

/// The legacy repair path, including the stripe-assembly cost callers
/// used to pay on every degraded read.
fn run_reconstruct(code: &dyn ErasureCode, stripe: &[Vec<u8>], erased: &[usize]) {
    let mut working: Vec<Option<Vec<u8>>> = stripe
        .iter()
        .enumerate()
        .map(|(i, s)| (!erased.contains(&i)).then(|| s.clone()))
        .collect();
    code.reconstruct(&mut working).unwrap();
    std::hint::black_box(&working);
}

/// Warm plan execution state: the plan, borrowed survivors, and the
/// pooled scratch/output buffers reused across calls.
struct PlanRunner<'a> {
    code: &'a dyn ErasureCode,
    plan: RepairPlan,
    shards: Vec<Option<&'a [u8]>>,
    scratch: RepairScratch,
    out: Vec<Vec<u8>>,
}

impl<'a> PlanRunner<'a> {
    fn new(
        code: &'a dyn ErasureCode,
        stripe: &'a [Vec<u8>],
        erased: &[usize],
        wanted: &[usize],
    ) -> Self {
        let plan = code.plan_repair(erased, wanted).unwrap();
        let shards: Vec<Option<&[u8]>> = stripe
            .iter()
            .enumerate()
            .map(|(i, s)| (!erased.contains(&i)).then(|| s.as_slice()))
            .collect();
        let mut runner = PlanRunner {
            code,
            plan,
            shards,
            scratch: RepairScratch::new(),
            out: vec![Vec::new(); wanted.len()],
        };
        runner.run(); // warm the arena so steady-state calls allocate nothing
        runner
    }

    fn run(&mut self) {
        self.code
            .execute_plan(&self.plan, &self.shards, &mut self.scratch, &mut self.out)
            .unwrap();
        std::hint::black_box(&self.out);
    }
}

fn bench_repair(c: &mut Criterion) {
    for scenario in scenarios() {
        let code = scenario.code.as_ref();
        let fixture = encode_stripe(code, 17);
        let mut g = c.benchmark_group(format!("repair/{}", code.name()));
        g.throughput(Throughput::Bytes(
            (fixture.shard_len * scenario.erased.len()) as u64,
        ));
        for (mode, wanted) in &scenario.modes {
            match wanted {
                None => {
                    g.bench_function(
                        BenchmarkId::new(*mode, format!("{:?}", scenario.erased)),
                        |b| b.iter(|| run_reconstruct(code, &fixture.stripe, &scenario.erased)),
                    );
                }
                Some(wanted) => {
                    let mut runner =
                        PlanRunner::new(code, &fixture.stripe, &scenario.erased, wanted);
                    g.bench_function(
                        BenchmarkId::new(*mode, format!("{:?}", scenario.erased)),
                        |b| b.iter(|| runner.run()),
                    );
                }
            }
        }
        g.finish();
    }
}

/// Median wall-clock microseconds per repair over `reps` timed samples
/// (after one warm-up sample), `inner` repairs per sample.
fn median_micros(mut f: impl FnMut()) -> f64 {
    let inner = 8;
    let reps = 9;
    let mut samples = Vec::with_capacity(reps);
    for rep in 0..=reps {
        let t = Instant::now();
        for _ in 0..inner {
            f();
        }
        let micros = t.elapsed().as_secs_f64() * 1e6 / inner as f64;
        if rep > 0 {
            samples.push(micros);
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Writes the machine-readable summary consumed by the acceptance
/// criteria. Lives at the repo root so CI artifacts and humans find it
/// without digging through `target/criterion`.
fn write_bench_json() {
    let mut entries = Vec::new();
    for scenario in scenarios() {
        let code = scenario.code.as_ref();
        let fixture = encode_stripe(code, 17);
        let n = code.total_nodes();
        for (mode, wanted) in &scenario.modes {
            let (micros, read_shards, rebuilt_shards) = match wanted {
                None => {
                    let micros = median_micros(|| {
                        run_reconstruct(code, &fixture.stripe, &scenario.erased)
                    });
                    (
                        micros,
                        (n - scenario.erased.len()) as f64,
                        scenario.erased.len() as f64,
                    )
                }
                Some(wanted) => {
                    let mut runner =
                        PlanRunner::new(code, &fixture.stripe, &scenario.erased, wanted);
                    let reads = runner.plan.total_read_fraction();
                    let writes: f64 = (0..n).map(|i| runner.plan.write_fraction(i)).sum();
                    (median_micros(|| runner.run()), reads, writes)
                }
            };
            entries.push(format!(
                "    {{\"code\": \"{}\", \"erased\": {:?}, \"mode\": \"{mode}\", \
                 \"shard_bytes\": {}, \"micros_per_repair\": {micros:.1}, \
                 \"read_shards\": {read_shards:.2}, \"rebuilt_shards\": {rebuilt_shards:.2}}}",
                code.name(),
                scenario.erased,
                fixture.shard_len,
            ));
        }
    }
    let doc = format!(
        "{{\n  \"bench\": \"repair-plan-executor\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repair.json");
    match std::fs::write(path, doc) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    write_bench_json();
    let mut c = Criterion::default().configure_from_args();
    bench_repair(&mut c);
    c.final_summary();
}
