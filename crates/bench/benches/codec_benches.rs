//! Criterion micro-benchmarks for the hot kernels and codecs.
//!
//! These complement the `experiments` harness (which reproduces the
//! paper's tables/figures): Criterion gives statistically robust numbers
//! for the building blocks — GF kernels, encode/decode per code family,
//! parallel pipeline — so regressions in the substrate are caught
//! independently of the paper-level metrics.

use apec_ec::parallel::encode_segmented;
use apec_ec::ErasureCode;
use apec_gf::{mul_slice_xor, xor_slice};
use apec_rs::ReedSolomon;
use apec_xor::{star, tip_like};
use approx_code::{ApproxCode, BaseFamily, Structure};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::prelude::*;
use rand::rngs::StdRng;

const BLOCK: usize = 1 << 20;

fn random_block(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = vec![0u8; len];
    rng.fill(v.as_mut_slice());
    v
}

fn bench_gf_kernels(c: &mut Criterion) {
    let src = random_block(BLOCK, 1);
    let mut dst = random_block(BLOCK, 2);
    let mut g = c.benchmark_group("gf-kernels");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    g.bench_function("xor_slice/1MiB", |b| {
        b.iter(|| xor_slice(&src, &mut dst).unwrap());
    });
    g.bench_function("mul_slice_xor/1MiB", |b| {
        b.iter(|| mul_slice_xor(0xA7, &src, &mut dst).unwrap());
    });
    g.finish();
}

fn data_for(code: &dyn ErasureCode, total: usize) -> Vec<Vec<u8>> {
    let k = code.data_nodes();
    let align = code.shard_alignment();
    let per = (total / k).div_ceil(align).max(1) * align;
    (0..k).map(|i| random_block(per, i as u64)).collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode-4MiB");
    let codes: Vec<Box<dyn ErasureCode>> = vec![
        Box::new(ReedSolomon::vandermonde(5, 3).unwrap()),
        Box::new(star(5, 5).unwrap()),
        Box::new(tip_like(7, 5).unwrap()),
        Box::new(ApproxCode::build_named(BaseFamily::Rs, 5, 1, 2, 4, Structure::Uneven).unwrap()),
        Box::new(
            ApproxCode::build_named(BaseFamily::Star, 5, 1, 2, 4, Structure::Uneven).unwrap(),
        ),
    ];
    for code in &codes {
        let data = data_for(code.as_ref(), 4 << 20);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let total: usize = data.iter().map(Vec::len).sum();
        g.throughput(Throughput::Bytes(total as u64));
        g.bench_function(BenchmarkId::from_parameter(code.name()), |b| {
            b.iter(|| std::hint::black_box(code.encode(&refs).unwrap()));
        });
    }
    g.finish();
}

fn bench_decode_double_failure(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode-f2-4MiB");
    let codes: Vec<Box<dyn ErasureCode>> = vec![
        Box::new(ReedSolomon::vandermonde(5, 3).unwrap()),
        Box::new(star(5, 5).unwrap()),
    ];
    for code in &codes {
        let data = data_for(code.as_ref(), 4 << 20);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let full: Vec<Option<Vec<u8>>> =
            data.iter().cloned().chain(parity).map(Some).collect();
        // Warm plan caches.
        {
            let mut s = full.clone();
            s[0] = None;
            s[3] = None;
            code.reconstruct(&mut s).unwrap();
        }
        let mut stripe = full.clone();
        g.bench_function(BenchmarkId::from_parameter(code.name()), |b| {
            b.iter(|| {
                stripe[0] = None;
                stripe[3] = None;
                code.reconstruct(std::hint::black_box(&mut stripe)).unwrap();
            });
        });
    }
    g.finish();
}

fn bench_parallel_encode(c: &mut Criterion) {
    let code = ReedSolomon::vandermonde(9, 3).unwrap();
    let data = data_for(&code, 16 << 20);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let seg = data[0].len() / 8;
    let mut g = c.benchmark_group("parallel-encode-RS(9,3)-16MiB");
    for threads in [1usize, 2, 4] {
        g.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| std::hint::black_box(encode_segmented(&code, &refs, seg, threads).unwrap()));
        });
    }
    g.finish();
}

fn bench_tiered_reconstruct(c: &mut Criterion) {
    let code = ApproxCode::build_named(BaseFamily::Rs, 5, 1, 2, 4, Structure::Uneven).unwrap();
    let data = data_for(&code, 4 << 20);
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = code.encode(&refs).unwrap();
    let full: Vec<Option<Vec<u8>>> = data.iter().cloned().chain(parity).map(Some).collect();
    let p = *code.params();
    let victims = [p.data_node(1, 0), p.data_node(2, 1)];
    {
        let mut s = full.clone();
        for &v in &victims {
            s[v] = None;
        }
        code.reconstruct_tiered(&mut s).unwrap();
    }
    let mut stripe = full.clone();
    c.bench_function("tiered-reconstruct/APPR.RS(5,1,2,4)/f2-cross-stripe", |b| {
        b.iter(|| {
            for &v in &victims {
                stripe[v] = None;
            }
            std::hint::black_box(code.reconstruct_tiered(&mut stripe).unwrap());
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gf_kernels, bench_encode, bench_decode_double_failure,
              bench_parallel_encode, bench_tiered_reconstruct
}
criterion_main!(benches);
