//! Tier lifecycle benchmarks: whole-trace engine runs across demotion
//! policies and cold-code structures.
//!
//! Two outputs per run:
//!
//! 1. Criterion group (`tier/run`) timing one full trace replay per
//!    configuration — ingest, Zipf reads, failures, repairs, demotions
//!    and the report build, end to end.
//! 2. `BENCH_tier.json` at the repository root — the lifecycle outcomes
//!    the paper's cost argument rests on (storage saved vs the all-hot
//!    counterfactual, conversion traffic, read latency, approximate-read
//!    PSNR), one row per configuration, plus the report digest so a
//!    regression in determinism shows up as a changed digest under an
//!    unchanged seed.
//!
//! Configurations:
//! - `never`: demotion disabled — the all-hot baseline (savings ≈ 0).
//! - `access-uneven`: the demo access-count policy with the Uneven
//!   (importance-aware) cold structure — the paper's proposal.
//! - `age-even`: age-based demotion onto an Even cold structure — the
//!   conventional archival-tiering strawman.

use apec_ec::ErasureCode;
use apec_tier::{DemotionPolicy, TierConfig, TierEngine, TierReport, WorkloadConfig};
use approx_code::Structure;
use criterion::{BenchmarkId, Criterion};
use std::time::Instant;

/// One benchmarked lifecycle configuration.
struct Scenario {
    label: &'static str,
    cfg: TierConfig,
    workload: WorkloadConfig,
}

fn scenarios() -> Vec<Scenario> {
    let seed = 42;
    let workload = WorkloadConfig::small(seed);
    let base = TierConfig::demo(seed);

    let mut never = base;
    never.policy = DemotionPolicy::Never;

    let mut age_even = base;
    age_even.policy = DemotionPolicy::Age { min_age: 16 };
    age_even.cold.structure = Structure::Even;
    // Even sub-stripes every node h ways, so its alignment differs from
    // the Uneven demo default; re-derive the shard length.
    let align = age_even.cold.build().expect("even cold code").shard_alignment();
    age_even.cold_shard_len = align * 128;

    vec![
        Scenario {
            label: "never",
            cfg: never,
            workload,
        },
        Scenario {
            label: "access-uneven",
            cfg: base,
            workload,
        },
        Scenario {
            label: "age-even",
            cfg: age_even,
            workload,
        },
    ]
}

fn run_once(s: &Scenario) -> TierReport {
    let mut engine = TierEngine::new(s.cfg).expect("bench config is valid");
    engine.run(&s.workload).expect("trace executes")
}

fn bench_tier(c: &mut Criterion) {
    let mut g = c.benchmark_group("tier/run");
    // A full trace replay is seconds, not microseconds; keep the sample
    // count at criterion's floor.
    for s in scenarios() {
        g.bench_function(BenchmarkId::from_parameter(s.label), |b| {
            b.iter(|| std::hint::black_box(run_once(&s)))
        });
    }
    g.finish();
}

/// Writes the machine-readable lifecycle summary consumed by CI. Lives at
/// the repo root next to the other `BENCH_*.json` artifacts.
fn write_bench_json() {
    let mut entries = Vec::new();
    for s in scenarios() {
        let t = Instant::now();
        let report = run_once(&s);
        let micros = t.elapsed().as_secs_f64() * 1e6;
        let psnr = if report.psnr.samples > 0 {
            format!("{:.2}", report.psnr.mean_db)
        } else {
            "null".to_string()
        };
        entries.push(format!(
            "    {{\"config\": \"{}\", \"hot\": \"{}\", \"cold\": \"{}\", \
             \"micros_per_run\": {micros:.0}, \"demotions\": {}, \
             \"savings_pct\": {:.2}, \"conversion_write_kib\": {}, \
             \"read_p95_ms\": {:.3}, \"psnr_mean_db\": {psnr}, \
             \"digest\": \"{}\"}}",
            s.label,
            report.config.hot_code,
            report.config.cold_code,
            report.tiers.demotions,
            report.costs.savings_ratio() * 100.0,
            report.io.conversion.write_bytes / 1024,
            report.latency.p95_ns as f64 / 1e6,
            report.digest(),
        ));
    }
    let doc = format!(
        "{{\n  \"bench\": \"tier-lifecycle\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tier.json");
    match std::fs::write(path, doc) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    write_bench_json();
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    bench_tier(&mut c);
    c.final_summary();
}
