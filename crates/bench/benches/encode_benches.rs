//! Object-encode benchmarks: the legacy copy-then-encode path versus the
//! session-reuse streaming pipeline, anchored against the raw fused
//! [`GfMatrix::apply_into`] kernel.
//!
//! Two outputs per run:
//!
//! 1. Criterion groups (`encode/*`) with statistically robust per-mode
//!    timings, for regression tracking.
//! 2. `BENCH_encode.json` at the repository root — a compact
//!    machine-readable summary used by the acceptance criteria: on a
//!    ~64 MiB object under RS(5,3), session-reuse streaming encode must
//!    run at least 2x the legacy `split_into_shards` + `encode()` path
//!    and within ~10% of the raw fused kernel.
//!
//! Modes:
//! - `legacy_split_encode`: [`split_into_shards`] copies the whole object
//!   into `k` owned shards (one object-wide stripe), then `encode()`
//!   allocates fresh parity — the pre-session object path.
//! - `legacy_stripe_copy_encode`: the old cluster-store shape — per
//!   `shard_len` stripe, copy `k` windows into owned shards and call
//!   `encode()`, allocating parity every stripe.
//! - `session_streaming`: a warm [`EncodeSession::encode_object`] pass —
//!   borrowed data windows, parity written into the reused arena.
//! - `raw_kernel`: the same striping loop driving the fused
//!   [`GfMatrix::apply_into`] directly with the RS parity rows — the
//!   speed-of-light reference the streaming path is held to.

use apec_ec::stripe::split_into_shards;
use apec_ec::{EcError, EncodeSession, ErasureCode};
use apec_gf::GfMatrix;
use apec_rs::{MatrixKind, ReedSolomon};
use criterion::{Criterion, Throughput};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;

const K: usize = 5;
const R: usize = 3;
/// Streaming stripe granularity.
const SHARD_LEN: usize = 64 << 10;
/// A whole number of stripes nearest 64 MiB, so every mode (including
/// the raw kernel, which takes full windows only) sees identical bytes.
const OBJECT_BYTES: usize = 205 * K * SHARD_LEN;

fn object(seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = vec![0u8; OBJECT_BYTES];
    rng.fill(v.as_mut_slice());
    v
}

fn code() -> ReedSolomon {
    ReedSolomon::new(K, R, MatrixKind::Vandermonde).unwrap()
}

/// The parity submatrix RS(5,3) encodes with: the bottom `r` rows of the
/// code's own generator, so the kernel reference multiplies by exactly
/// the coefficients the trait path does. (A hand-rebuilt matrix risks
/// degenerate coefficients that hit the `mul_slice_xor` zero/one fast
/// paths and make the reference dishonestly fast.)
fn parity_rows(code: &ReedSolomon) -> GfMatrix {
    let rows = code.generator().select_rows(&(K..K + R).collect::<Vec<_>>());
    let nontrivial = (0..R)
        .flat_map(|r| (0..K).map(move |c| (r, c)))
        .filter(|&(r, c)| rows.get(r, c).value() > 1)
        .count();
    assert!(nontrivial > 0, "parity rows collapsed to 0/1 coefficients");
    rows
}

fn run_legacy_split(code: &ReedSolomon, object: &[u8]) {
    let shards = split_into_shards(object, K, code.shard_alignment());
    let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
    let parity = code.encode(&refs).unwrap();
    std::hint::black_box(&parity);
}

fn run_legacy_stripes(code: &ReedSolomon, object: &[u8]) {
    let stripe_bytes = K * SHARD_LEN;
    for base in (0..object.len()).step_by(stripe_bytes) {
        let shards: Vec<Vec<u8>> = (0..K)
            .map(|i| {
                let a = (base + i * SHARD_LEN).min(object.len());
                let b = (base + (i + 1) * SHARD_LEN).min(object.len());
                let mut v = object[a..b].to_vec();
                v.resize(SHARD_LEN, 0);
                v
            })
            .collect();
        let refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        std::hint::black_box(&parity);
    }
}

fn run_streaming(session: &mut EncodeSession, code: &ReedSolomon, object: &[u8]) {
    session
        .encode_object(code, object, SHARD_LEN, |_, data, parity| -> Result<(), EcError> {
            std::hint::black_box((data.len(), parity.len()));
            Ok(())
        })
        .unwrap();
}

fn run_kernel(rows: &GfMatrix, object: &[u8], arena: &mut [Vec<u8>]) {
    let stripe_bytes = K * SHARD_LEN;
    for base in (0..object.len()).step_by(stripe_bytes) {
        let views: [&[u8]; K] =
            std::array::from_fn(|i| &object[base + i * SHARD_LEN..base + (i + 1) * SHARD_LEN]);
        let mut outs: [&mut [u8]; R] = std::array::from_fn(|_| &mut [][..]);
        for (o, row) in outs.iter_mut().zip(arena.iter_mut()) {
            *o = row.as_mut_slice();
        }
        rows.apply_into(&views, &mut outs).unwrap();
        std::hint::black_box(&arena);
    }
}

/// Median wall-clock microseconds per whole-object encode over `reps`
/// timed samples (after one warm-up), `inner` encodes per sample. The
/// object is large, so fewer repetitions than the repair bench suffice.
fn median_micros(mut f: impl FnMut()) -> f64 {
    let inner = 2;
    let reps = 5;
    let mut samples = Vec::with_capacity(reps);
    for rep in 0..=reps {
        let t = Instant::now();
        for _ in 0..inner {
            f();
        }
        let micros = t.elapsed().as_secs_f64() * 1e6 / f64::from(inner);
        if rep > 0 {
            samples.push(micros);
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn gib_per_s(micros: f64) -> f64 {
    OBJECT_BYTES as f64 / (micros * 1e-6) / (1u64 << 30) as f64
}

fn bench_encode(c: &mut Criterion) {
    let code = code();
    let rows = parity_rows(&code);
    let obj = object(23);
    let mut g = c.benchmark_group(format!("encode/{}", code.name()));
    g.throughput(Throughput::Bytes(OBJECT_BYTES as u64));
    g.bench_function("legacy_split_encode", |b| {
        b.iter(|| run_legacy_split(&code, &obj))
    });
    g.bench_function("legacy_stripe_copy_encode", |b| {
        b.iter(|| run_legacy_stripes(&code, &obj))
    });
    let mut session = EncodeSession::new();
    g.bench_function("session_streaming", |b| {
        b.iter(|| run_streaming(&mut session, &code, &obj))
    });
    let mut arena = vec![vec![0u8; SHARD_LEN]; R];
    g.bench_function("raw_kernel", |b| b.iter(|| run_kernel(&rows, &obj, &mut arena)));
    g.finish();
}

/// Writes the machine-readable summary the acceptance criteria read.
fn write_bench_json() {
    let code = code();
    let rows = parity_rows(&code);
    let obj = object(23);

    let legacy = median_micros(|| run_legacy_split(&code, &obj));
    let per_stripe = median_micros(|| run_legacy_stripes(&code, &obj));
    let mut session = EncodeSession::new();
    run_streaming(&mut session, &code, &obj); // warm the arena
    let streaming = median_micros(|| run_streaming(&mut session, &code, &obj));
    let mut arena = vec![vec![0u8; SHARD_LEN]; R];
    let kernel = median_micros(|| run_kernel(&rows, &obj, &mut arena));

    let entries = [
        ("legacy_split_encode", legacy),
        ("legacy_stripe_copy_encode", per_stripe),
        ("session_streaming", streaming),
        ("raw_kernel", kernel),
    ]
    .map(|(mode, micros)| {
        format!(
            "    {{\"mode\": \"{mode}\", \"micros_per_object\": {micros:.1}, \
             \"gib_per_s\": {:.3}}}",
            gib_per_s(micros),
        )
    });
    let doc = format!(
        "{{\n  \"bench\": \"encode-sessions\",\n  \"code\": \"{}\",\n  \
         \"object_bytes\": {OBJECT_BYTES},\n  \"shard_len\": {SHARD_LEN},\n  \
         \"results\": [\n{}\n  ],\n  \
         \"speedup_streaming_vs_legacy\": {:.2},\n  \
         \"streaming_micros_over_kernel\": {:.3}\n}}\n",
        code.name(),
        entries.join(",\n"),
        legacy / streaming,
        streaming / kernel,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_encode.json");
    match std::fs::write(path, doc) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    write_bench_json();
    let mut c = Criterion::default().configure_from_args();
    bench_encode(&mut c);
    c.final_summary();
}
