//! Kernel-layer ablation benchmarks: GF(2^8) bulk kernels, backend ×
//! block size.
//!
//! Two outputs per run:
//!
//! 1. Criterion groups (`gf-kernel-abl/*`) with statistically robust
//!    per-backend timings, for regression tracking.
//! 2. `BENCH_kernels.json` at the repository root — a compact
//!    machine-readable summary (median MiB/s per backend × kernel ×
//!    block size) used by the acceptance criteria: the best backend must
//!    beat scalar on `xor_slice` and `mul_slice_xor` at 4 KiB+ blocks.
//!
//! Backends are forced per-call through the `*_slice_with` entry points,
//! so the ablation never mutates the process-global backend that other
//! benches rely on.

use apec_gf::{mul_slice_with, mul_slice_xor_with, xor_slice_with, GfBackend};
use criterion::{BenchmarkId, Criterion, Throughput};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;

/// Block sizes swept by both the Criterion groups and the JSON summary.
const SIZES: [usize; 4] = [1 << 10, 4 << 10, 64 << 10, 1 << 20];

/// Non-trivial coefficient: both nibbles set, so the split-table path
/// does real lo/hi work (0x01 and 0x02 would flatter table lookups).
const COEFF: u8 = 0xA7;

fn random_block(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = vec![0u8; len];
    rng.fill(v.as_mut_slice());
    v
}

/// Backends that can actually run on this machine (Simd is absent when
/// the CPU lacks SSSE3/NEON; `best_backend` clamps accordingly).
fn available_backends() -> Vec<GfBackend> {
    GfBackend::ALL
        .iter()
        .copied()
        .filter(|&b| b != GfBackend::Simd || apec_gf::best_backend() == GfBackend::Simd)
        .collect()
}

fn run_kernel(kernel: &str, backend: GfBackend, src: &[u8], dst: &mut [u8]) {
    match kernel {
        "xor_slice" => xor_slice_with(backend, src, dst).unwrap(),
        "mul_slice" => mul_slice_with(backend, COEFF, src, dst).unwrap(),
        "mul_slice_xor" => mul_slice_xor_with(backend, COEFF, src, dst).unwrap(),
        other => unreachable!("unknown kernel {other}"),
    }
}

const KERNELS: [&str; 3] = ["xor_slice", "mul_slice", "mul_slice_xor"];

fn bench_kernel_ablation(c: &mut Criterion) {
    for kernel in KERNELS {
        let mut g = c.benchmark_group(format!("gf-kernel-abl/{kernel}"));
        for &size in &SIZES {
            let src = random_block(size, 11);
            let mut dst = random_block(size, 22);
            g.throughput(Throughput::Bytes(size as u64));
            for backend in available_backends() {
                g.bench_with_input(
                    BenchmarkId::new(backend.to_string(), size),
                    &size,
                    |b, _| b.iter(|| run_kernel(kernel, backend, &src, &mut dst)),
                );
            }
        }
        g.finish();
    }
}

/// Median wall-clock MiB/s over `reps` timed repetitions (after one
/// warm-up), using enough inner iterations that each sample is >= ~1 ms.
fn median_mibps(kernel: &str, backend: GfBackend, size: usize) -> f64 {
    let src = random_block(size, 33);
    let mut dst = random_block(size, 44);
    let inner = (1_500_000 / size).clamp(4, 4096);
    let reps = 9;
    let mut samples = Vec::with_capacity(reps);
    for rep in 0..=reps {
        let t = Instant::now();
        for _ in 0..inner {
            run_kernel(kernel, backend, &src, &mut dst);
        }
        let secs = t.elapsed().as_secs_f64();
        if rep > 0 {
            samples.push((size * inner) as f64 / secs / (1024.0 * 1024.0));
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Writes the machine-readable summary consumed by the acceptance
/// criteria. Lives at the repo root so CI artifacts and humans find it
/// without digging through `target/criterion`.
fn write_bench_json() {
    let mut entries = Vec::new();
    for kernel in KERNELS {
        for backend in available_backends() {
            for &size in &SIZES {
                let mibps = median_mibps(kernel, backend, size);
                entries.push(format!(
                    "    {{\"kernel\": \"{kernel}\", \"backend\": \"{backend}\", \
                     \"block_bytes\": {size}, \"mib_per_s\": {:.1}}}",
                    mibps
                ));
            }
        }
    }
    let doc = format!(
        "{{\n  \"bench\": \"gf-kernel-ablation\",\n  \"coeff\": {COEFF},\n  \
         \"best_backend\": \"{}\",\n  \"results\": [\n{}\n  ]\n}}\n",
        apec_gf::best_backend(),
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    match std::fs::write(path, doc) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    write_bench_json();
    let mut c = Criterion::default().configure_from_args();
    bench_kernel_ablation(&mut c);
    c.final_summary();
}
