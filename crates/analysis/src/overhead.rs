//! Storage-overhead models (paper Table 3, Table 4, Fig. 8).

/// Storage overhead of `RS(k, r)`: `(k + r) / k`.
pub fn rs_overhead(k: usize, r: usize) -> f64 {
    (k + r) as f64 / k as f64
}

/// Storage overhead of `LRC(k, l, r)`: `1 + (l + r)/k`.
pub fn lrc_overhead(k: usize, l: usize, r: usize) -> f64 {
    1.0 + (l + r) as f64 / k as f64
}

/// Storage overhead of `STAR(p)` at `k = p` data columns: `(p + 3)/p`.
pub fn star_overhead(p: usize) -> f64 {
    (p + 3) as f64 / p as f64
}

/// Storage overhead of the TIP geometry: `(p + 1)/(p − 2)` (Table 3).
pub fn tip_overhead(p: usize) -> f64 {
    (p + 1) as f64 / (p - 2) as f64
}

/// Storage overhead of any `APPR.*(k, r, g, h)`: `((k+r)h + g)/(kh)`.
pub fn appr_overhead(k: usize, r: usize, g: usize, h: usize) -> f64 {
    ((k + r) * h + g) as f64 / (k * h) as f64
}

/// Table 4: relative reduction of storage overhead of
/// `APPR.RS(k, r, g, h)` versus `RS(k, 3)`.
pub fn appr_rs_improvement(k: usize, r: usize, g: usize, h: usize) -> f64 {
    let base = rs_overhead(k, 3);
    (base - appr_overhead(k, r, g, h)) / base
}

/// Parity-node count of a traditional 3DFT deployment covering `h`
/// stripes: `3h`.
pub fn parity_nodes_3dft(h: usize) -> usize {
    3 * h
}

/// Parity-node count of `APPR.*(k, r, g, h)`: `r·h + g`.
pub fn parity_nodes_appr(r: usize, g: usize, h: usize) -> usize {
    r * h + g
}

/// The abstract's "reduces the number of parities by up to 55 %":
/// relative parity reduction of the Approximate layout.
pub fn parity_reduction(r: usize, g: usize, h: usize) -> f64 {
    let base = parity_nodes_3dft(h) as f64;
    (base - parity_nodes_appr(r, g, h) as f64) / base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values_reproduce() {
        // Paper Table 4 (improvement of APPR.RS over RS(k,3), percent).
        let cases = [
            // (k, r, g, h, expected %)
            (4, 1, 2, 4, 21.4),
            (5, 1, 2, 4, 18.8),
            (6, 1, 2, 4, 16.7),
            (7, 1, 2, 4, 15.0),
            (8, 1, 2, 4, 13.6),
            (9, 1, 2, 4, 12.5),
            (4, 2, 1, 4, 10.7),
            (9, 2, 1, 4, 6.2),
            (4, 1, 2, 6, 23.8),
            (5, 1, 2, 6, 20.8),
            (9, 1, 2, 6, 13.9),
            (4, 2, 1, 6, 11.9),
            (9, 2, 1, 6, 6.9),
        ];
        for (k, r, g, h, want) in cases {
            let got = appr_rs_improvement(k, r, g, h) * 100.0;
            assert!(
                (got - want).abs() < 0.06,
                "k={k} r={r} g={g} h={h}: got {got:.2}%, paper {want}%"
            );
        }
    }

    #[test]
    fn headline_claims() {
        // "saves the storage cost by up to 20.8%" — APPR.RS(5,1,2,6) over
        // the evaluation's k range (k >= 5).
        let best = appr_rs_improvement(5, 1, 2, 6) * 100.0;
        assert!((best - 20.8).abs() < 0.1, "{best}");
        // "reduces the number of parities by up to 55%" — (1,2,6): 18 → 8.
        let red = parity_reduction(1, 2, 6) * 100.0;
        assert!((red - 55.55).abs() < 0.1, "{red}");
    }

    #[test]
    fn appr_overhead_reduces_to_rs_at_h1() {
        // One stripe, r+g parities: identical to RS(k, r+g).
        for k in [4usize, 8] {
            assert!((appr_overhead(k, 1, 2, 1) - rs_overhead(k, 3)).abs() < 1e-12);
        }
    }

    #[test]
    fn average_parity_count_example_from_paper() {
        // §4.2: "APPR.RS(6,1,2,4) reduces the average number of parity
        // nodes from 3 to 1.33" (per stripe: (1·4+2)/4 = 1.5? The paper
        // counts parities per k data nodes: (rh+g)/h = 1.5 … it reports
        // 1.33 counting per 4.5 stripes-equivalent). We check the
        // unambiguous quantity: parity nodes drop from 12 to 6.
        assert_eq!(parity_nodes_3dft(4), 12);
        assert_eq!(parity_nodes_appr(1, 2, 4), 6);
    }

    #[test]
    fn monotonicity_in_k() {
        // Overheads decrease as k grows for every family.
        for k in 4..16 {
            assert!(rs_overhead(k + 1, 3) < rs_overhead(k, 3));
            assert!(appr_overhead(k + 1, 1, 2, 4) < appr_overhead(k, 1, 2, 4));
            assert!(lrc_overhead(k + 1, 4, 2) < lrc_overhead(k, 4, 2));
        }
        assert!(star_overhead(7) < star_overhead(5));
        assert!(tip_overhead(7) < tip_overhead(5));
    }
}
