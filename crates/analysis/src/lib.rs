//! Analytical models for the Approximate Code evaluation.
//!
//! Three kinds of model, each paired with a ground-truth check elsewhere in
//! the workspace:
//!
//! * [`reliability`] — the paper's §3.4 expectations `P_U` (unimportant
//!   data surviving `f = r + 1` failures) and `P_I` (important data
//!   surviving `f = r + g + 1` failures), both as closed forms and as
//!   exhaustive/Monte-Carlo measurements against the real decoder;
//! * [`overhead`] — storage-overhead and parity-count formulas behind
//!   Fig. 8 and Table 4;
//! * [`writecost`] — the single-write I/O cost formulas of Table 3 and
//!   Fig. 9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combinatorics;
pub mod overhead;
pub mod reliability;
pub mod writecost;
