//! Reliability expectations beyond nominal fault tolerance (paper §3.4).
//!
//! With `f = r + 1` failures (just past the unimportant-data tolerance)
//! and `f = r + g + 1` failures (just past the important-data tolerance),
//! the paper derives closed-form expectations for the fraction of failure
//! patterns that still preserve unimportant (`P_U`) and important (`P_I`)
//! data. This module implements the formulas and validates them against
//! the real decoder both exhaustively and by Monte-Carlo.

use crate::combinatorics::{binomial, combinations};
use approx_code::{ApproxCode, Structure};
use rand::prelude::*;
use std::fmt;

/// Parameter combinations outside a closed-form model's assumptions.
///
/// The CLI and the experiment harness accept arbitrary `(k, r, g, h)`
/// tuples; models that only hold for part of that space report why with
/// this error instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReliabilityError {
    /// The paper's `P_I` derivation fixes the important fault tolerance at
    /// `r + g = 3` (3DFT); other tolerances have no published closed form.
    UnsupportedTolerance {
        /// Local parities per stripe.
        r: usize,
        /// Global parities.
        g: usize,
    },
}

impl fmt::Display for ReliabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReliabilityError::UnsupportedTolerance { r, g } => write!(
                f,
                "P_I closed form needs 3DFT (r + g = 3), got r = {r}, g = {g}; \
                 use enumerate_reliability/sample_reliability instead"
            ),
        }
    }
}

impl std::error::Error for ReliabilityError {}

/// `P_U`: expectation that **unimportant** data survives `f = r + 1`
/// arbitrary node failures (paper Eq. 1–2).
pub fn analytic_p_u(k: usize, r: usize, g: usize, h: usize, structure: Structure) -> f64 {
    let n = h * (k + r) + g;
    let f = r + 1;
    let per_stripe = binomial(k + r, f) as f64;
    let all = binomial(n, f) as f64;
    let stripes_with_unimportant = match structure {
        Structure::Even => h,
        Structure::Uneven => h - 1,
    } as f64;
    1.0 - stripes_with_unimportant * per_stripe / all
}

/// `P_I`: expectation that **important** data survives `f = r + g + 1 = 4`
/// arbitrary node failures (paper Eq. 3–4; the paper fixes `r + g = 3`).
///
/// Returns [`ReliabilityError::UnsupportedTolerance`] outside the 3DFT
/// setting — the measured counterparts ([`enumerate_reliability`],
/// [`sample_reliability`]) work for any geometry.
pub fn analytic_p_i(
    k: usize,
    r: usize,
    g: usize,
    h: usize,
    structure: Structure,
) -> Result<f64, ReliabilityError> {
    if r + g != 3 {
        return Err(ReliabilityError::UnsupportedTolerance { r, g });
    }
    let n = h * (k + r) + g;
    let f = 4;
    let all = binomial(n, f) as f64;
    Ok(match structure {
        Structure::Even => {
            // Σ_{i=0..g} C(k+r, 4-i)·C(g, i): the failures split between
            // one stripe and the global nodes.
            let sum: u128 = (0..=g).map(|i| binomial(k + r, f - i) * binomial(g, i)).sum();
            1.0 - h as f64 * sum as f64 / all
        }
        Structure::Uneven => 1.0 - binomial(k + 3, 4) as f64 / all,
    })
}

/// Measured counterpart of `P_U`/`P_I`: evaluates every `C(N, f)` failure
/// pattern against the real decoder's symbolic solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredReliability {
    /// Fraction of patterns preserving all unimportant data.
    pub p_u: f64,
    /// Fraction of patterns preserving all important data.
    pub p_i: f64,
    /// Number of patterns evaluated.
    pub patterns: usize,
}

/// Exhaustively measures survival fractions at exactly `f` node failures.
pub fn enumerate_reliability(code: &ApproxCode, f: usize) -> MeasuredReliability {
    let n = code.params().total_nodes();
    let mut ok_u = 0usize;
    let mut ok_i = 0usize;
    let mut total = 0usize;
    for pattern in combinations(n, f) {
        total += 1;
        if code.can_recover_unimportant(&pattern) {
            ok_u += 1;
        }
        if code.can_recover_important(&pattern) {
            ok_i += 1;
        }
    }
    MeasuredReliability {
        p_u: ok_u as f64 / total.max(1) as f64,
        p_i: ok_i as f64 / total.max(1) as f64,
        patterns: total,
    }
}

/// Monte-Carlo estimate of the same quantities, for geometries where
/// exhaustive enumeration is too large.
pub fn sample_reliability(
    code: &ApproxCode,
    f: usize,
    trials: usize,
    seed: u64,
) -> MeasuredReliability {
    let n = code.params().total_nodes();
    let mut rng = apec_ec::rng::fork(seed, "sample_reliability");
    let mut ok_u = 0usize;
    let mut ok_i = 0usize;
    let mut nodes: Vec<usize> = (0..n).collect();
    for _ in 0..trials {
        nodes.shuffle(&mut rng);
        let mut pattern = nodes[..f].to_vec();
        pattern.sort_unstable();
        if code.can_recover_unimportant(&pattern) {
            ok_u += 1;
        }
        if code.can_recover_important(&pattern) {
            ok_i += 1;
        }
    }
    MeasuredReliability {
        p_u: ok_u as f64 / trials.max(1) as f64,
        p_i: ok_i as f64 / trials.max(1) as f64,
        patterns: trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approx_code::BaseFamily;

    #[test]
    fn paper_headline_numbers_for_appr_rs_3123() {
        // §3.4: APPR.RS(3,1,2,3,Even): P_U = 80.21 %, P_I = 95.50 %;
        //        APPR.RS(3,1,2,3,Uneven): P_U = 86.81 %, P_I = 98.50 %.
        let pu_even = analytic_p_u(3, 1, 2, 3, Structure::Even);
        let pi_even = analytic_p_i(3, 1, 2, 3, Structure::Even).unwrap();
        let pu_uneven = analytic_p_u(3, 1, 2, 3, Structure::Uneven);
        let pi_uneven = analytic_p_i(3, 1, 2, 3, Structure::Uneven).unwrap();
        assert!((pu_even - 0.8021978).abs() < 1e-4, "{pu_even}");
        assert!((pi_even - 0.9550450).abs() < 1e-4, "{pi_even}");
        assert!((pu_uneven - 0.8681319).abs() < 1e-4, "{pu_uneven}");
        assert!((pi_uneven - 0.9850150).abs() < 1e-4, "{pi_uneven}");
    }

    #[test]
    fn formulas_match_real_decoder_for_rs() {
        for structure in [Structure::Even, Structure::Uneven] {
            let code = ApproxCode::build_named(BaseFamily::Rs, 3, 1, 2, 3, structure).unwrap();
            let at_r1 = enumerate_reliability(&code, 2);
            let want_pu = analytic_p_u(3, 1, 2, 3, structure);
            assert!(
                (at_r1.p_u - want_pu).abs() < 1e-12,
                "{structure}: enumerated P_U {} vs analytic {want_pu}",
                at_r1.p_u
            );
            let at_rg1 = enumerate_reliability(&code, 4);
            let want_pi = analytic_p_i(3, 1, 2, 3, structure).unwrap();
            assert!(
                (at_rg1.p_i - want_pi).abs() < 1e-12,
                "{structure}: enumerated P_I {} vs analytic {want_pi}",
                at_rg1.p_i
            );
        }
    }

    #[test]
    fn formulas_match_real_decoder_for_star() {
        // The formulas are code-agnostic for MDS bases; check APPR.STAR.
        let code =
            ApproxCode::build_named(BaseFamily::Star, 3, 1, 2, 3, Structure::Uneven).unwrap();
        let at_r1 = enumerate_reliability(&code, 2);
        let want_pu = analytic_p_u(3, 1, 2, 3, Structure::Uneven);
        assert!((at_r1.p_u - want_pu).abs() < 1e-12, "{} vs {want_pu}", at_r1.p_u);
        let at_rg1 = enumerate_reliability(&code, 4);
        let want_pi = analytic_p_i(3, 1, 2, 3, Structure::Uneven).unwrap();
        assert!((at_rg1.p_i - want_pi).abs() < 1e-12, "{} vs {want_pi}", at_rg1.p_i);
    }

    #[test]
    fn uneven_beats_even_on_reliability() {
        // §3.3: Uneven aggregates important data, improving both P_U and
        // P_I — the structure-selection trade-off.
        for k in [3usize, 4, 6] {
            for h in [3usize, 4, 6] {
                assert!(
                    analytic_p_u(k, 1, 2, h, Structure::Uneven)
                        > analytic_p_u(k, 1, 2, h, Structure::Even)
                );
                assert!(
                    analytic_p_i(k, 1, 2, h, Structure::Uneven).unwrap()
                        > analytic_p_i(k, 1, 2, h, Structure::Even).unwrap()
                );
            }
        }
    }

    #[test]
    fn monte_carlo_converges_to_enumeration() {
        let code = ApproxCode::build_named(BaseFamily::Rs, 3, 1, 2, 3, Structure::Even).unwrap();
        let exact = enumerate_reliability(&code, 2);
        let sampled = sample_reliability(&code, 2, 4000, 99);
        assert!(
            (exact.p_u - sampled.p_u).abs() < 0.03,
            "exact {} vs sampled {}",
            exact.p_u,
            sampled.p_u
        );
    }

    #[test]
    fn p_i_rejects_non_3dft_parameters_gracefully() {
        // CLI-reachable combos outside the paper's 3DFT assumption must
        // fail with a typed, descriptive error — not a panic.
        let err = analytic_p_i(4, 2, 2, 3, Structure::Even).unwrap_err();
        assert_eq!(err, ReliabilityError::UnsupportedTolerance { r: 2, g: 2 });
        assert!(err.to_string().contains("r + g = 3"), "{err}");
        assert!(analytic_p_i(4, 1, 1, 3, Structure::Uneven).is_err());
        // The supported boundary still succeeds for both structures.
        for s in [Structure::Even, Structure::Uneven] {
            assert!(analytic_p_i(4, 2, 1, 3, s).is_ok());
        }
    }
}
