//! Single-write cost models (paper Table 3, Fig. 9).
//!
//! "Single write cost" is the average number of element I/O writes caused
//! by updating one data element: the data write itself plus every parity
//! element that depends on it. The formulas here are Table 3's closed
//! forms; `apec-bench`'s `fig-single-write` experiment cross-checks them
//! against the counted [`apec_ec::ErasureCode::update_pattern`] of the
//! real codecs.

/// `RS(k, r)`: `r + 1`.
pub fn rs_single_write(r: usize) -> f64 {
    (r + 1) as f64
}

/// `LRC(k, l, r)`: `r + 2` (data, its group's local parity, r globals).
pub fn lrc_single_write(r: usize) -> f64 {
    (r + 2) as f64
}

/// `STAR(p)` at `k = p`: `6 − 4/p` (the adjuster diagonals make some
/// updates touch every diagonal/anti-diagonal parity element).
pub fn star_single_write(p: usize) -> f64 {
    6.0 - 4.0 / p as f64
}

/// TIP (independent parities, paper Table 3): flat `4`.
pub fn tip_single_write() -> f64 {
    4.0
}

/// `EVENODD(p)` at `k = p`: `4 − 2/p` (one adjuster family).
pub fn evenodd_single_write(p: usize) -> f64 {
    4.0 - 2.0 / p as f64
}

/// `APPR.RS(k, r, g, h)`: `1 + r + g/h` — every update writes the local
/// parities, but only the `1/h` important updates touch the `g` globals.
pub fn appr_rs_single_write(r: usize, g: usize, h: usize) -> f64 {
    1.0 + r as f64 + g as f64 / h as f64
}

/// `APPR.LRC(k, r, g, h)`: `2 + g/h`.
pub fn appr_lrc_single_write(g: usize, h: usize) -> f64 {
    2.0 + g as f64 / h as f64
}

/// `APPR.STAR(k, 2, 1, h)` (Table 3): `2(k − h − 1)/(kh) + 4`.
pub fn appr_star_single_write(k: usize, h: usize) -> f64 {
    2.0 * (k as f64 - h as f64 - 1.0) / (k as f64 * h as f64) + 4.0
}

/// `APPR.TIP(k, 1, 2, h)` (Table 3): `2 + 2/h`.
pub fn appr_tip_single_write(h: usize) -> f64 {
    2.0 + 2.0 / h as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use apec_ec::ErasureCode;

    #[test]
    fn table3_spot_values() {
        assert_eq!(rs_single_write(3), 4.0);
        assert_eq!(lrc_single_write(2), 4.0);
        assert!((star_single_write(5) - 5.2).abs() < 1e-12);
        assert_eq!(tip_single_write(), 4.0);
        assert!((appr_rs_single_write(1, 2, 4) - 2.5).abs() < 1e-12);
        assert!((appr_lrc_single_write(2, 4) - 2.5).abs() < 1e-12);
        assert!((appr_tip_single_write(4) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn appr_always_beats_its_base_for_3dft() {
        for h in [4usize, 6] {
            assert!(appr_rs_single_write(1, 2, h) < rs_single_write(3));
            assert!(appr_lrc_single_write(2, h) < lrc_single_write(2));
            for k in [5usize, 9, 13] {
                assert!(appr_star_single_write(k, h) < star_single_write(k));
            }
            assert!(appr_tip_single_write(h) < tip_single_write());
        }
    }

    #[test]
    fn fig9_improvement_ratio_matches_paper_bound() {
        // §4.2: APPR.RS "decreases the average number of I/Os by up to
        // 41.3%" versus RS(k,3) — at (r,g,h) = (1,2,6): (4 − 7/3)/4.
        let improvement = (rs_single_write(3) - appr_rs_single_write(1, 2, 6)) / rs_single_write(3);
        assert!((improvement - 0.4166).abs() < 2e-3, "{improvement}");
    }

    #[test]
    fn appr_rs_measured_update_cost_tracks_formula() {
        for (r, g, h) in [(1usize, 2usize, 4usize), (2, 1, 4), (1, 2, 6)] {
            let code = approx_code::ApproxCode::build_named(
                approx_code::BaseFamily::Rs,
                6,
                r,
                g,
                h,
                approx_code::Structure::Even,
            )
            .unwrap();
            let got = code.update_pattern().node_writes;
            let want = appr_rs_single_write(r, g, h);
            assert!((got - want).abs() < 1e-9, "({r},{g},{h}): {got} vs {want}");
        }
    }
}
