//! Exact small-scale combinatorics.

/// Binomial coefficient `C(n, k)` as an exact `u128`.
///
/// # Panics
/// Panics on intermediate overflow, which cannot happen for the node
/// counts this workspace deals in (n ≤ a few hundred, k ≤ 5).
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc
            .checked_mul((n - i) as u128)
            .expect("binomial overflow") / (i as u128 + 1);
    }
    acc
}

/// Iterator over all `k`-subsets of `0..n` in lexicographic order.
pub fn combinations(n: usize, k: usize) -> Combinations {
    Combinations {
        n,
        k,
        next: if k <= n { Some((0..k).collect()) } else { None },
    }
}

/// See [`combinations`].
pub struct Combinations {
    n: usize,
    k: usize,
    next: Option<Vec<usize>>,
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.clone()?;
        // Advance to the lexicographic successor.
        let mut combo = current.clone();
        let (n, k) = (self.n, self.k);
        if k == 0 {
            self.next = None;
            return Some(current);
        }
        let mut i = k;
        loop {
            if i == 0 {
                self.next = None;
                return Some(current);
            }
            i -= 1;
            if combo[i] != i + n - k {
                break;
            }
            if i == 0 {
                self.next = None;
                return Some(current);
            }
        }
        combo[i] += 1;
        for j in i + 1..k {
            combo[j] = combo[j - 1] + 1;
        }
        self.next = Some(combo);
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(14, 2), 91);
        assert_eq!(binomial(14, 4), 1001);
        assert_eq!(binomial(4, 7), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }

    #[test]
    fn binomial_symmetry_and_pascal() {
        for n in 0..20 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
                if n > 0 && k > 0 {
                    assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
                }
            }
        }
    }

    #[test]
    fn combinations_count_and_order() {
        let all: Vec<Vec<usize>> = combinations(5, 3).collect();
        assert_eq!(all.len() as u128, binomial(5, 3));
        assert_eq!(all.first().unwrap(), &vec![0, 1, 2]);
        assert_eq!(all.last().unwrap(), &vec![2, 3, 4]);
        // Strictly increasing within each combo and lexicographic across.
        for combo in &all {
            assert!(combo.windows(2).all(|w| w[0] < w[1]));
        }
        for pair in all.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn degenerate_combinations() {
        assert_eq!(combinations(3, 0).count(), 1);
        assert_eq!(combinations(0, 0).count(), 1);
        assert_eq!(combinations(2, 3).count(), 0);
        assert_eq!(combinations(4, 4).count(), 1);
    }
}
