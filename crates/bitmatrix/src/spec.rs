//! Declarative XOR-code specifications and compiled recovery plans.
//!
//! The symbolic solve runs over word-packed [`BitMatrix`] rows; the data
//! path (encode and plan replay) streams through [`apec_gf::xor_slice`],
//! which dispatches to the wide-word/SIMD XOR kernels.

use crate::matrix::BitMatrix;
use apec_gf::xor_slice;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Index of one *element* of a stripe.
///
/// An XOR array code lays a stripe out as `n_cols` columns (storage nodes)
/// of `rows_per_col` equal-size blocks each; an element is one such block.
/// Element `e` lives at column `e / rows_per_col`, row `e % rows_per_col`.
pub type ElementIndex = usize;

/// Errors from the symbolic solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The erasure pattern exceeds what the parity equations can repair.
    Unrecoverable {
        /// Elements that could not be expressed in terms of known elements.
        unsolved: Vec<ElementIndex>,
    },
    /// An element index was out of range for this spec.
    ElementOutOfRange {
        /// The offending index.
        index: ElementIndex,
        /// Total number of elements in the spec.
        total: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Unrecoverable { unsolved } => {
                write!(f, "erasure pattern unrecoverable; unsolved elements: {unsolved:?}")
            }
            SolveError::ElementOutOfRange { index, total } => {
                write!(f, "element index {index} out of range (total {total})")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// A single recovery step: `target = sources[0] ^ sources[1] ^ ...`.
///
/// All sources are guaranteed to be non-erased elements, so steps are
/// independent and may be applied in any order (or in parallel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryStep {
    /// The erased element this step reconstructs.
    pub target: ElementIndex,
    /// The surviving elements whose XOR equals the target.
    pub sources: Vec<ElementIndex>,
}

/// A compiled plan reconstructing a set of erased elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPlan {
    /// One step per recovered element.
    pub steps: Vec<RecoveryStep>,
}

impl RecoveryPlan {
    /// Total number of source-element XORs the plan performs — the paper's
    /// "length of parity chains" cost in element units.
    pub fn xor_cost(&self) -> usize {
        self.steps.iter().map(|s| s.sources.len()).sum()
    }

    /// Replays the plan over real data: `elements[i]` is the block of
    /// element `i`; erased targets are overwritten with recovered bytes.
    ///
    /// # Panics
    /// Panics if blocks have inconsistent lengths or indices are out of
    /// range — both indicate misuse, not data-dependent failure.
    pub fn apply(&self, elements: &mut [Vec<u8>]) {
        for step in &self.steps {
            let (first, rest) = step
                .sources
                .split_first()
                // panic-ok: the planner never emits an empty-source step
                .expect("recovery step always has at least one source");
            // Reuse the target's existing allocation as the accumulator
            // (taken out first so the source borrows below are clean).
            let mut acc = std::mem::take(&mut elements[step.target]);
            let len = elements[*first].len();
            acc.clear();
            acc.extend_from_slice(&elements[*first]);
            for &s in rest {
                let src = &elements[s];
                assert_eq!(src.len(), len, "inconsistent element block sizes");
                xor_slice(src, &mut acc).expect("lengths asserted equal"); // panic-ok: assert_eq! above pins the lengths
            }
            elements[step.target] = acc;
        }
    }
}

/// A declarative description of an XOR array code.
///
/// The spec says nothing about *how* parities were derived (diagonals,
/// anti-diagonals, adjusters...) — only which elements XOR to zero. That is
/// all encoding and decoding need.
#[derive(Debug, Clone)]
pub struct XorCodeSpec {
    /// Number of columns (storage nodes) in the stripe.
    pub n_cols: usize,
    /// Number of element rows per column.
    pub rows_per_col: usize,
    /// Elements that carry user data, ascending.
    pub data_elements: Vec<ElementIndex>,
    /// Elements that carry parity, in *encoding order* (a parity's support
    /// may reference earlier parities but never later ones).
    pub parity_elements: Vec<ElementIndex>,
    /// `parity_support[i]` lists the elements XORed to form
    /// `parity_elements[i]`.
    pub parity_support: Vec<Vec<ElementIndex>>,
}

impl XorCodeSpec {
    /// Total number of elements in the stripe.
    pub fn total_elements(&self) -> usize {
        self.n_cols * self.rows_per_col
    }

    /// The elements of one column, ascending.
    pub fn column_elements(&self, col: usize) -> Vec<ElementIndex> {
        (0..self.rows_per_col)
            .map(|r| col * self.rows_per_col + r)
            .collect()
    }

    /// The column an element lives in.
    pub fn column_of(&self, e: ElementIndex) -> usize {
        e / self.rows_per_col
    }

    /// Expands a set of failed columns into the erased element set.
    pub fn erase_columns(&self, cols: &[usize]) -> Vec<ElementIndex> {
        let mut out = Vec::with_capacity(cols.len() * self.rows_per_col);
        for &c in cols {
            out.extend(self.column_elements(c));
        }
        out
    }

    /// Structural validation; returns a human-readable description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let total = self.total_elements();
        if self.parity_elements.len() != self.parity_support.len() {
            return Err(format!(
                "{} parity elements but {} support sets",
                self.parity_elements.len(),
                self.parity_support.len()
            ));
        }
        let data: HashSet<_> = self.data_elements.iter().copied().collect();
        let parity: HashSet<_> = self.parity_elements.iter().copied().collect();
        if data.len() != self.data_elements.len() {
            return Err("duplicate data elements".into());
        }
        if parity.len() != self.parity_elements.len() {
            return Err("duplicate parity elements".into());
        }
        if let Some(&e) = data.intersection(&parity).next() {
            return Err(format!("element {e} is both data and parity"));
        }
        if data.len() + parity.len() != total {
            return Err(format!(
                "{} data + {} parity != {} total elements",
                data.len(),
                parity.len(),
                total
            ));
        }
        for (i, support) in self.parity_support.iter().enumerate() {
            if support.is_empty() {
                return Err(format!("parity {i} has empty support"));
            }
            let uniq: HashSet<_> = support.iter().copied().collect();
            if uniq.len() != support.len() {
                return Err(format!("parity {i} has duplicate support elements"));
            }
            for &e in support {
                if e >= total {
                    return Err(format!("parity {i} references out-of-range element {e}"));
                }
                if parity.contains(&e) {
                    // Referencing an earlier parity is fine (RDP's diagonal
                    // parity crosses the row-parity column); forward
                    // references would make encoding order-ill-defined.
                    let pos = self
                        .parity_elements
                        .iter()
                        .position(|&p| p == e)
                        // panic-ok: guarded by the contains() membership check above
                        .expect("checked membership");
                    if pos >= i {
                        return Err(format!(
                            "parity {i} references parity element {e} that is not yet encoded"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Encodes in place: computes every parity element from the data
    /// elements already present in `elements`.
    ///
    /// # Panics
    /// Panics on inconsistent block sizes or if `elements.len()` differs
    /// from [`XorCodeSpec::total_elements`].
    pub fn encode(&self, elements: &mut [Vec<u8>]) {
        assert_eq!(elements.len(), self.total_elements(), "element count mismatch");
        for (i, &p) in self.parity_elements.iter().enumerate() {
            let support = &self.parity_support[i];
            // panic-ok: XorCodeSpec::validate rejects empty parity supports at construction
            let (first, rest) = support.split_first().expect("validated non-empty support");
            let mut acc = std::mem::take(&mut elements[p]);
            let len = elements[*first].len();
            acc.clear();
            acc.extend_from_slice(&elements[*first]);
            for &s in rest {
                let src = &elements[s];
                assert_eq!(src.len(), len, "inconsistent element block sizes");
                xor_slice(src, &mut acc).expect("lengths asserted equal"); // panic-ok: assert_eq! above pins the lengths
            }
            elements[p] = acc;
        }
    }

    /// Number of XOR source reads performed by a full encode — used by the
    /// analytical cost models.
    pub fn encode_xor_cost(&self) -> usize {
        self.parity_support.iter().map(|s| s.len()).sum()
    }

    /// Every parity's support expanded to **data elements only**, in
    /// encoding order.
    ///
    /// A support may reference earlier-encoded parities (RDP's diagonal
    /// crosses the row-parity column); substituting each such reference by
    /// its own expansion — a symmetric difference over GF(2), since an
    /// element appearing twice cancels — yields a flat program where every
    /// parity is a plain XOR of data elements. This is what lets
    /// `encode_into` write parity straight into caller-owned slices with
    /// no element materialization and no parity-reads-parity aliasing.
    ///
    /// Expansion may include *virtual* data elements living in non-data
    /// columns (shortened codes); callers that treat those as
    /// identically zero should filter them out.
    pub fn expanded_parity_support(&self) -> Vec<(ElementIndex, Vec<ElementIndex>)> {
        let total = self.total_elements();
        let mut expanded: HashMap<ElementIndex, Vec<bool>> = HashMap::new();
        let mut out = Vec::with_capacity(self.parity_elements.len());
        for (i, &p) in self.parity_elements.iter().enumerate() {
            let mut mask = vec![false; total];
            for &e in &self.parity_support[i] {
                if let Some(prev) = expanded.get(&e) {
                    for (m, b) in mask.iter_mut().zip(prev) {
                        *m ^= *b; // raw-xor-ok: bool support masks, not shard bytes
                    }
                } else {
                    mask[e] = !mask[e];
                }
            }
            let support: Vec<ElementIndex> = mask
                .iter()
                .enumerate()
                .filter(|(_, &m)| m)
                .map(|(e, _)| e)
                .collect();
            expanded.insert(p, mask);
            out.push((p, support));
        }
        out
    }

    /// Solves the erasure pattern symbolically and compiles a
    /// [`RecoveryPlan`].
    ///
    /// The solver builds one GF(2) equation per parity (the parity element
    /// plus its support XOR to zero), splits each equation into erased
    /// (unknown) and surviving (known) parts, and row-reduces the unknown
    /// side. A pivot row whose unknown support is a single element yields a
    /// recovery step; if any erased element ends up without such a row the
    /// pattern is unrecoverable and the error lists the stuck elements.
    pub fn recovery_plan(&self, erased: &[ElementIndex]) -> Result<RecoveryPlan, SolveError> {
        let (plan, unsolved) = self.partial_recovery_plan(erased)?;
        if unsolved.is_empty() {
            Ok(plan)
        } else {
            Err(SolveError::Unrecoverable { unsolved })
        }
    }

    /// Like [`XorCodeSpec::recovery_plan`], but never fails on
    /// unrecoverable patterns: it returns the plan for every erased element
    /// that *can* be expressed in surviving elements, plus the list of
    /// elements that cannot. This drives the Approximate-Code tiered
    /// recovery path, where losing unimportant elements is acceptable.
    pub fn partial_recovery_plan(
        &self,
        erased: &[ElementIndex],
    ) -> Result<(RecoveryPlan, Vec<ElementIndex>), SolveError> {
        let total = self.total_elements();
        for &e in erased {
            if e >= total {
                return Err(SolveError::ElementOutOfRange { index: e, total });
            }
        }
        if erased.is_empty() {
            return Ok((RecoveryPlan { steps: Vec::new() }, Vec::new()));
        }

        // Map element -> unknown column.
        let mut unknown_col = vec![usize::MAX; total];
        let mut unknowns: Vec<ElementIndex> = erased.to_vec();
        unknowns.sort_unstable();
        unknowns.dedup();
        for (i, &e) in unknowns.iter().enumerate() {
            unknown_col[e] = i;
        }
        let u = unknowns.len();

        // Augmented system: [unknown part | known part], known part indexed
        // by raw element id.
        let n_eq = self.parity_elements.len();
        let mut m = BitMatrix::new(n_eq, u + total);
        for (row, (&p, support)) in self
            .parity_elements
            .iter()
            .zip(&self.parity_support)
            .enumerate()
        {
            for &e in support.iter().chain(std::iter::once(&p)) {
                if unknown_col[e] != usize::MAX {
                    m.flip(row, unknown_col[e]);
                } else {
                    m.flip(row, u + e);
                }
            }
        }

        // Eliminate on the unknown columns only.
        let mut rank = 0;
        for col in 0..u {
            let Some(pivot) = (rank..n_eq).find(|&r| m.get(r, col)) else {
                continue;
            };
            m.swap_rows(pivot, rank);
            for r in 0..n_eq {
                if r != rank && m.get(r, col) {
                    m.xor_rows(rank, r);
                }
            }
            rank += 1;
        }

        // Harvest rows that solve exactly one unknown.
        let mut steps = Vec::with_capacity(u);
        let mut solved = vec![false; u];
        for r in 0..rank.min(n_eq) {
            let ones = m.row_ones(r);
            let unknown_ones: Vec<usize> = ones.iter().copied().filter(|&c| c < u).collect();
            if unknown_ones.len() != 1 {
                continue;
            }
            let target_col = unknown_ones[0];
            let sources: Vec<ElementIndex> =
                ones.iter().copied().filter(|&c| c >= u).map(|c| c - u).collect();
            if sources.is_empty() {
                // Equation says the element is identically zero; encode that
                // as an empty-source step is not representable, and it can
                // only arise from degenerate specs. Treat as unsolved.
                continue;
            }
            steps.push(RecoveryStep {
                target: unknowns[target_col],
                sources,
            });
            solved[target_col] = true;
        }

        let unsolved: Vec<ElementIndex> = unknowns
            .iter()
            .zip(&solved)
            .filter(|(_, &s)| !s)
            .map(|(&e, _)| e)
            .collect();
        Ok((RecoveryPlan { steps }, unsolved))
    }

    /// `true` when the erasure pattern is fully recoverable.
    pub fn can_recover(&self, erased: &[ElementIndex]) -> bool {
        self.recovery_plan(erased).is_ok()
    }

    /// `true` when losing exactly the given columns is recoverable.
    pub fn can_recover_columns(&self, cols: &[usize]) -> bool {
        self.can_recover(&self.erase_columns(cols))
    }

    /// Exhaustively verifies that *every* combination of `f` failed columns
    /// is recoverable. Returns the first failing combination, if any.
    pub fn verify_column_fault_tolerance(&self, f: usize) -> Option<Vec<usize>> {
        let n = self.n_cols;
        let mut combo: Vec<usize> = (0..f).collect();
        if f == 0 || f > n {
            return None;
        }
        loop {
            if !self.can_recover_columns(&combo) {
                return Some(combo);
            }
            // Next combination in lexicographic order.
            let mut i = f;
            loop {
                if i == 0 {
                    return None;
                }
                i -= 1;
                if combo[i] != i + n - f {
                    break;
                }
                if i == 0 {
                    return None;
                }
            }
            combo[i] += 1;
            for j in i + 1..f {
                combo[j] = combo[j - 1] + 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    /// A toy RAID-4 over 3 data columns + 1 parity column, 2 rows.
    fn raid4() -> XorCodeSpec {
        let rows = 2;
        XorCodeSpec {
            n_cols: 4,
            rows_per_col: rows,
            data_elements: (0..6).collect(),
            parity_elements: vec![6, 7],
            parity_support: vec![vec![0, 2, 4], vec![1, 3, 5]],
        }
    }

    fn random_elements(spec: &XorCodeSpec, block: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut elems = vec![vec![0u8; block]; spec.total_elements()];
        for &d in &spec.data_elements {
            rng.fill(elems[d].as_mut_slice());
        }
        let mut full = elems.clone();
        spec.encode(&mut full);
        full
    }

    #[test]
    fn raid4_validates() {
        raid4().validate().unwrap();
    }

    #[test]
    fn raid4_single_column_recovery() {
        let spec = raid4();
        let full = random_elements(&spec, 64, 1);
        for col in 0..4 {
            let erased = spec.erase_columns(&[col]);
            let plan = spec.recovery_plan(&erased).unwrap();
            let mut damaged = full.clone();
            for &e in &erased {
                damaged[e] = vec![0xAA; 64];
            }
            plan.apply(&mut damaged);
            assert_eq!(damaged, full, "column {col} not recovered");
        }
    }

    #[test]
    fn raid4_double_column_fails() {
        let spec = raid4();
        let erased = spec.erase_columns(&[0, 1]);
        match spec.recovery_plan(&erased) {
            Err(SolveError::Unrecoverable { unsolved }) => assert!(!unsolved.is_empty()),
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
        assert_eq!(spec.verify_column_fault_tolerance(1), None);
        assert!(spec.verify_column_fault_tolerance(2).is_some());
    }

    #[test]
    fn partial_element_erasure_within_one_column() {
        let spec = raid4();
        let full = random_elements(&spec, 16, 2);
        // Erase one element from col 0 and one from col 1 — different rows,
        // so both parities can still repair them.
        let erased = vec![0usize, 3];
        let plan = spec.recovery_plan(&erased).unwrap();
        let mut damaged = full.clone();
        damaged[0] = vec![0; 16];
        damaged[3] = vec![0; 16];
        plan.apply(&mut damaged);
        assert_eq!(damaged, full);
    }

    #[test]
    fn same_row_double_erasure_unrecoverable() {
        let spec = raid4();
        // Elements 0 and 2 share the row-0 parity; with only one equation
        // covering both, recovery must fail.
        assert!(!spec.can_recover(&[0, 2]));
    }

    #[test]
    fn empty_erasure_gives_empty_plan() {
        let spec = raid4();
        let plan = spec.recovery_plan(&[]).unwrap();
        assert!(plan.steps.is_empty());
        assert_eq!(plan.xor_cost(), 0);
    }

    #[test]
    fn out_of_range_element_rejected() {
        let spec = raid4();
        assert!(matches!(
            spec.recovery_plan(&[99]),
            Err(SolveError::ElementOutOfRange { index: 99, total: 8 })
        ));
    }

    #[test]
    fn parity_referencing_earlier_parity_is_valid() {
        // Two rows, 3 cols: col2 row0 = p0 over data, col2 row1 = p1 that
        // includes p0 (like RDP's diagonal crossing the row parity).
        let spec = XorCodeSpec {
            n_cols: 3,
            rows_per_col: 2,
            data_elements: vec![0, 1, 2, 3],
            parity_elements: vec![4, 5],
            parity_support: vec![vec![0, 2], vec![1, 3, 4]],
        };
        spec.validate().unwrap();
        let full = random_elements(&spec, 8, 3);
        // Losing the parity column is recoverable by re-encoding.
        let erased = spec.erase_columns(&[2]);
        let plan = spec.recovery_plan(&erased).unwrap();
        let mut damaged = full.clone();
        for &e in &erased {
            damaged[e] = vec![0; 8];
        }
        plan.apply(&mut damaged);
        assert_eq!(damaged, full);
    }

    #[test]
    fn forward_parity_reference_rejected() {
        let spec = XorCodeSpec {
            n_cols: 3,
            rows_per_col: 1,
            data_elements: vec![0],
            parity_elements: vec![1, 2],
            parity_support: vec![vec![0, 2], vec![0]],
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_catches_overlap_and_gaps() {
        let mut spec = raid4();
        spec.data_elements.push(6); // 6 is parity
        assert!(spec.validate().is_err());

        let mut spec = raid4();
        spec.data_elements.pop(); // element 5 now unassigned
        assert!(spec.validate().is_err());

        let mut spec = raid4();
        spec.parity_support[0] = vec![]; // empty support
        assert!(spec.validate().is_err());

        let mut spec = raid4();
        spec.parity_support[0] = vec![0, 0]; // duplicate support
        assert!(spec.validate().is_err());
    }

    #[test]
    fn expanded_parity_support_matches_encode() {
        let rdp_like = XorCodeSpec {
            n_cols: 3,
            rows_per_col: 2,
            data_elements: vec![0, 1, 2, 3],
            parity_elements: vec![4, 5],
            parity_support: vec![vec![0, 2], vec![1, 3, 4]],
        };
        for (spec, seed) in [(raid4(), 9), (rdp_like, 10)] {
            spec.validate().unwrap();
            let full = random_elements(&spec, 32, seed);
            for (p, support) in spec.expanded_parity_support() {
                let mut acc = vec![0u8; 32];
                for &e in &support {
                    assert!(
                        spec.data_elements.contains(&e),
                        "expanded support of parity {p} still references element {e}"
                    );
                    xor_slice(&full[e], &mut acc).unwrap();
                }
                assert_eq!(acc, full[p], "parity element {p} from expanded support");
            }
        }
    }

    #[test]
    fn xor_cost_counts_sources() {
        let spec = raid4();
        assert_eq!(spec.encode_xor_cost(), 6);
        let plan = spec.recovery_plan(&spec.erase_columns(&[0])).unwrap();
        // Each of the two erased elements is rebuilt from 3 sources.
        assert_eq!(plan.xor_cost(), 6);
    }
}

// Skipped under Miri: the proptest runner is far too slow there; the unit
// tests above cover the same code paths for aliasing/UB purposes.
#[cfg(all(test, not(miri)))]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// Builds a randomized "LRC-ish" spec: `cols` data columns of `rows`
    /// elements, plus one parity column whose elements each cover a random
    /// non-empty subset of data elements in their row, plus one extra
    /// parity column covering random diagonal-ish subsets.
    fn random_spec(cols: usize, rows: usize, seed: u64) -> XorCodeSpec {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_cols = cols + 2;
        let data_elements: Vec<usize> = (0..cols * rows).collect();
        let mut parity_elements = Vec::new();
        let mut parity_support = Vec::new();
        for pcol in [cols, cols + 1] {
            for t in 0..rows {
                parity_elements.push(pcol * rows + t);
                let mut support: Vec<usize> = (0..cols)
                    .filter(|_| rng.random_bool(0.7))
                    .map(|j| j * rows + (t + j * (pcol - cols)) % rows)
                    .collect();
                if support.is_empty() {
                    support.push((t * rows) % (cols * rows));
                }
                support.sort_unstable();
                support.dedup();
                parity_support.push(support);
            }
        }
        XorCodeSpec {
            n_cols,
            rows_per_col: rows,
            data_elements,
            parity_elements,
            parity_support,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Soundness: whatever the solver claims to recover must be
        /// byte-exact, for arbitrary random codes and erasure sets —
        /// even when parts of the pattern are unrecoverable.
        #[test]
        fn partial_plans_are_always_sound(
            seed: u64,
            cols in 2usize..6,
            rows in 1usize..4,
            n_erased in 1usize..8,
        ) {
            let spec = random_spec(cols, rows, seed);
            prop_assume!(spec.validate().is_ok());

            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            let block = 16usize;
            let mut elements = vec![vec![0u8; block]; spec.total_elements()];
            for &d in &spec.data_elements {
                rng.fill(elements[d].as_mut_slice());
            }
            spec.encode(&mut elements);
            let truth = elements.clone();

            let mut all: Vec<usize> = (0..spec.total_elements()).collect();
            all.shuffle(&mut rng);
            let erased: Vec<usize> = all[..n_erased.min(all.len())].to_vec();

            let (plan, unsolved) = spec.partial_recovery_plan(&erased).unwrap();
            // Solved + unsolved partitions the erased set.
            let mut accounted: Vec<usize> =
                plan.steps.iter().map(|s| s.target).chain(unsolved.iter().copied()).collect();
            accounted.sort_unstable();
            let mut want = erased.clone();
            want.sort_unstable();
            want.dedup();
            prop_assert_eq!(accounted, want);

            // Sources never reference erased elements.
            for step in &plan.steps {
                for &s in &step.sources {
                    prop_assert!(!erased.contains(&s), "plan reads erased element {s}");
                }
            }

            // Applying the plan restores exactly the solved elements.
            let mut damaged = truth.clone();
            for &e in &erased {
                damaged[e] = vec![0xEE; block];
            }
            plan.apply(&mut damaged);
            for step in &plan.steps {
                prop_assert_eq!(
                    &damaged[step.target], &truth[step.target],
                    "solved element {} wrong", step.target
                );
            }
        }

        /// Completeness on a known-good family: EVENODD-style single-column
        /// erasures always produce a full plan.
        #[test]
        fn single_column_erasure_of_random_spec_with_row_parity(seed: u64, cols in 2usize..6) {
            // Row-parity-only spec: every data column recoverable from the
            // parity column.
            let rows = 3usize;
            let data_elements: Vec<usize> = (0..cols * rows).collect();
            let spec = XorCodeSpec {
                n_cols: cols + 1,
                rows_per_col: rows,
                data_elements,
                parity_elements: (0..rows).map(|t| cols * rows + t).collect(),
                parity_support: (0..rows)
                    .map(|t| (0..cols).map(|j| j * rows + t).collect())
                    .collect(),
            };
            spec.validate().unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let col = rng.random_range(0..cols + 1);
            prop_assert!(spec.can_recover_columns(&[col]));
        }
    }
}
