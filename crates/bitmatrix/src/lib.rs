//! GF(2) bit matrices and compiled XOR recovery schedules.
//!
//! Every XOR-based array code in this workspace (EVENODD, RDP, STAR and the
//! TIP-like code) is *declared* rather than hand-decoded: a code provides an
//! [`XorCodeSpec`] listing, for each parity element, the set of data
//! elements XORed into it. This crate then does the rest generically:
//!
//! * **encoding** follows the parity supports directly,
//! * **decoding** builds the parity-check system over GF(2) for the given
//!   erasure pattern, Gauss-eliminates it symbolically *once*, and emits a
//!   [`RecoveryPlan`] — a straight-line list of "target = XOR of known
//!   elements" steps that is then replayed over megabyte-sized blocks.
//!
//! This mirrors how production libraries (e.g. Jerasure's bit-matrix
//! scheduling) separate the symbolic solve from the data path, and it means
//! triple-erasure STAR decoding needs no bespoke chain-walking code: its
//! correctness reduces to the rank of a small bit matrix, which the test
//! suites verify exhaustively for every parameter the paper's evaluation
//! uses.
//!
//! ```
//! use apec_bitmatrix::XorCodeSpec;
//!
//! // A 2-row RAID-4: columns 0-2 data, column 3 row parity.
//! let spec = XorCodeSpec {
//!     n_cols: 4,
//!     rows_per_col: 2,
//!     data_elements: (0..6).collect(),
//!     parity_elements: vec![6, 7],
//!     parity_support: vec![vec![0, 2, 4], vec![1, 3, 5]],
//! };
//! spec.validate().unwrap();
//!
//! // Encode a stripe of 4-byte elements, erase column 1, recover it.
//! let mut elements: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 4]).collect();
//! spec.encode(&mut elements);
//! let truth = elements.clone();
//!
//! let erased = spec.erase_columns(&[1]);
//! let plan = spec.recovery_plan(&erased).unwrap();
//! for &e in &erased {
//!     elements[e] = vec![0; 4];
//! }
//! plan.apply(&mut elements);
//! assert_eq!(elements, truth);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
mod spec;

pub use matrix::BitMatrix;
pub use spec::{ElementIndex, RecoveryPlan, RecoveryStep, SolveError, XorCodeSpec};
