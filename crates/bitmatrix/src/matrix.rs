//! A dense bit matrix over GF(2) with word-packed rows.

/// A dense matrix over GF(2).
///
/// Rows are packed into `u64` words, so row XOR — the only operation
/// Gaussian elimination needs — runs 64 columns at a time. Matrices here are
/// small (a few hundred columns at most: one column per stripe *element*),
/// so no further blocking is needed.
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl std::fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{}", u8::from(self.get(r, c)))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl BitMatrix {
    /// Creates an all-zero matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64).max(1);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads the bit at (r, c).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        let w = self.data[r * self.words_per_row + c / 64];
        (w >> (c % 64)) & 1 == 1
    }

    /// Sets the bit at (r, c).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        debug_assert!(r < self.rows && c < self.cols);
        let w = &mut self.data[r * self.words_per_row + c / 64];
        if v {
            *w |= 1 << (c % 64);
        } else {
            *w &= !(1 << (c % 64));
        }
    }

    /// Flips the bit at (r, c).
    #[inline]
    pub fn flip(&mut self, r: usize, c: usize) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "flip({r}, {c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        let w = &mut self.data[r * self.words_per_row + c / 64];
        *w ^= 1 << (c % 64); // raw-xor-ok: single packed GF(2) bit, not shard bytes
    }

    /// `row[dst] ^= row[src]`.
    pub fn xor_rows(&mut self, src: usize, dst: usize) {
        assert_ne!(src, dst, "cannot xor a row into itself");
        debug_assert!(
            src < self.rows && dst < self.rows,
            "xor_rows({src}, {dst}) out of bounds for {} rows",
            self.rows
        );
        let wpr = self.words_per_row;
        let (lo, hi) = (src.min(dst), src.max(dst));
        let (head, tail) = self.data.split_at_mut(hi * wpr);
        let lo_row = &head[lo * wpr..lo * wpr + wpr];
        let hi_row = &mut tail[..wpr];
        if src < dst {
            for (d, s) in hi_row.iter_mut().zip(lo_row) {
                *d ^= *s; // raw-xor-ok: GF(2) row words (u64), not shard bytes
            }
        } else {
            // dst < src: we need the high row as source; re-split immutably.
            let src_copy: Vec<u64> = hi_row.to_vec();
            let dst_row = &mut head[lo * wpr..lo * wpr + wpr];
            for (d, s) in dst_row.iter_mut().zip(&src_copy) {
                *d ^= *s; // raw-xor-ok: GF(2) row words (u64), not shard bytes
            }
        }
    }

    /// Swaps two rows.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        debug_assert!(
            a < self.rows && b < self.rows,
            "swap_rows({a}, {b}) out of bounds for {} rows",
            self.rows
        );
        if a == b {
            return;
        }
        let wpr = self.words_per_row;
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(hi * wpr);
        head[lo * wpr..lo * wpr + wpr].swap_with_slice(&mut tail[..wpr]);
    }

    /// Returns `true` if row `r` is entirely zero.
    pub fn row_is_zero(&self, r: usize) -> bool {
        self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
            .iter()
            .all(|&w| w == 0)
    }

    /// Column indices of the set bits in row `r`, ascending.
    pub fn row_ones(&self, r: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for (wi, &w) in self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
            .iter()
            .enumerate()
        {
            let mut w = w;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                let c = wi * 64 + bit;
                if c < self.cols {
                    out.push(c);
                }
                w &= w - 1;
            }
        }
        out
    }

    /// Rank of the matrix (destructive elimination on a copy).
    pub fn rank(&self) -> usize {
        let mut work = self.clone();
        let mut rank = 0;
        for col in 0..work.cols {
            if rank == work.rows {
                break;
            }
            let Some(pivot) = (rank..work.rows).find(|&r| work.get(r, col)) else {
                continue;
            };
            work.swap_rows(pivot, rank);
            debug_assert!(work.get(rank, col), "pivot bit lost after row swap");
            for r in 0..work.rows {
                if r != rank && work.get(r, col) {
                    work.xor_rows(rank, r);
                }
            }
            rank += 1;
        }
        rank
    }

    /// Reduced row echelon form, in place. Returns the pivot column of each
    /// pivot row (so `pivots.len()` is the rank).
    pub fn rref(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut rank = 0;
        for col in 0..self.cols {
            if rank == self.rows {
                break;
            }
            let Some(pivot) = (rank..self.rows).find(|&r| self.get(r, col)) else {
                continue;
            };
            self.swap_rows(pivot, rank);
            debug_assert!(self.get(rank, col), "pivot bit lost after row swap");
            for r in 0..self.rows {
                if r != rank && self.get(r, col) {
                    self.xor_rows(rank, r);
                }
            }
            pivots.push(col);
            rank += 1;
        }
        pivots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn set_get_flip() {
        let mut m = BitMatrix::new(3, 130);
        assert!(!m.get(2, 129));
        m.set(2, 129, true);
        assert!(m.get(2, 129));
        m.flip(2, 129);
        assert!(!m.get(2, 129));
        m.flip(0, 0);
        assert!(m.get(0, 0));
    }

    #[test]
    fn xor_rows_both_directions() {
        let mut m = BitMatrix::new(2, 70);
        m.set(0, 3, true);
        m.set(0, 69, true);
        m.set(1, 3, true);
        m.xor_rows(0, 1); // forward: src < dst
        assert!(!m.get(1, 3));
        assert!(m.get(1, 69));
        m.xor_rows(1, 0); // backward: src > dst
        assert!(m.get(0, 3));
        assert!(!m.get(0, 69));
    }

    #[test]
    fn row_ones_reports_sorted_columns() {
        let mut m = BitMatrix::new(1, 200);
        for c in [0, 63, 64, 127, 128, 199] {
            m.set(0, c, true);
        }
        assert_eq!(m.row_ones(0), vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn identity_has_full_rank() {
        let mut m = BitMatrix::new(10, 10);
        for i in 0..10 {
            m.set(i, i, true);
        }
        assert_eq!(m.rank(), 10);
    }

    #[test]
    fn dependent_rows_reduce_rank() {
        let mut m = BitMatrix::new(3, 4);
        // r0 = 1100, r1 = 0110, r2 = r0 ^ r1 = 1010
        m.set(0, 0, true);
        m.set(0, 1, true);
        m.set(1, 1, true);
        m.set(1, 2, true);
        m.set(2, 0, true);
        m.set(2, 2, true);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn rref_produces_unit_pivot_columns() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = BitMatrix::new(6, 9);
        for r in 0..6 {
            for c in 0..9 {
                m.set(r, c, rng.random());
            }
        }
        let pivots = m.rref();
        for (prow, &pcol) in pivots.iter().enumerate() {
            for r in 0..m.rows() {
                assert_eq!(m.get(r, pcol), r == prow, "pivot col {pcol} not unit");
            }
        }
    }

    #[test]
    fn zero_rows_detected() {
        let mut m = BitMatrix::new(2, 65);
        assert!(m.row_is_zero(0));
        m.set(0, 64, true);
        assert!(!m.row_is_zero(0));
        assert!(m.row_is_zero(1));
    }

    // Property tests are skipped under Miri: the proptest runner is far too
    // slow there and adds no aliasing coverage beyond the unit tests above.
    #[cfg(not(miri))]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        #[test]
        fn rank_invariant_under_row_shuffles(seed in 0u64..500, rows in 1usize..8, cols in 1usize..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = BitMatrix::new(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    m.set(r, c, rng.random());
                }
            }
            let base = m.rank();
            let mut shuffled = m.clone();
            for _ in 0..8 {
                let a = rng.random_range(0..rows);
                let b = rng.random_range(0..rows);
                shuffled.swap_rows(a, b);
            }
            prop_assert_eq!(shuffled.rank(), base);

            // xoring one row into another is also rank-preserving
            if rows >= 2 {
                let mut xored = m.clone();
                xored.xor_rows(0, rows - 1);
                if rows - 1 != 0 {
                    prop_assert_eq!(xored.rank(), base);
                }
            }
        }

        #[test]
        fn rref_rank_matches_rank(seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rows = rng.random_range(1..10usize);
            let cols = rng.random_range(1..80usize);
            let mut m = BitMatrix::new(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    m.set(r, c, rng.random_bool(0.3));
                }
            }
            let rank = m.rank();
            let mut rrefed = m.clone();
            let pivots = rrefed.rref();
            prop_assert_eq!(pivots.len(), rank);
        }
        }
    }
}
