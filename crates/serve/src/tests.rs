//! End-to-end daemon tests: live TCP servers on ephemeral ports, real
//! stores on disk, concurrent clients.

#![cfg(test)]

use crate::client::{Client, ClientError};
use crate::load::{self, LoadConfig};
use crate::protocol::Status;
use crate::server::{serve, ServerConfig, ServerHandle};
use apec_ec::ErasureCode;
use apec_maint::{MaintConfig, MaintStatus};
use apec_store::{Store, StoreConfig};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "apec-serve-test-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ))
}

fn start_daemon(tag: &str, config: ServerConfig) -> (ServerHandle, Arc<Store>, PathBuf) {
    let root = temp_root(tag);
    let store = Arc::new(Store::init(&root, StoreConfig::demo("rs")).unwrap());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve(Arc::clone(&store), listener, config).unwrap();
    (handle, store, root)
}

#[test]
fn concurrent_clients_round_trip_byte_identical() {
    let (handle, _store, root) = start_daemon("smoke", ServerConfig::default());
    let addr = handle.addr();

    // A shared object every thread reads, plus per-thread objects.
    let (shared_imp, shared_unimp) = load::payload_for(99, 0, 500, 1200);
    let mut seed_client = Client::connect(addr).unwrap();
    seed_client.put("shared", &shared_imp, &shared_unimp).unwrap();

    let mut threads = Vec::new();
    for t in 0..6u64 {
        let shared_imp = shared_imp.clone();
        let shared_unimp = shared_unimp.clone();
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            for i in 0..4u64 {
                let video = t * 100 + i;
                let id = format!("t{t}-o{i}");
                let (imp, unimp) = load::payload_for(42, video, 300 + i as usize * 37, 900);
                client.put(&id, &imp, &unimp).unwrap();
                let reply = client.get(&id).unwrap();
                assert_eq!(reply.important, imp, "{id} important bytes");
                assert_eq!(reply.unimportant, unimp, "{id} unimportant bytes");
                assert!(!reply.degraded && !reply.approximate);
                assert_eq!(reply.integrity_failures, 0);
                let shared = client.get("shared").unwrap();
                assert_eq!(shared.important, shared_imp);
                assert_eq!(shared.unimportant, shared_unimp);
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }

    // Errors are typed, not fatal: a missing id and a duplicate put.
    match seed_client.get("no-such-object") {
        Err(ClientError::Server(Status::ErrUser, msg)) => assert!(msg.contains("no such object")),
        other => panic!("expected ErrUser, got {other:?}"),
    }
    match seed_client.put("shared", &shared_imp, &shared_unimp) {
        Err(ClientError::Server(Status::ErrUser, _)) => {}
        other => panic!("expected duplicate-put ErrUser, got {other:?}"),
    }

    let metrics = handle.metrics();
    assert_eq!(metrics.integrity_failures(), 0);
    assert_eq!(metrics.degraded_reads(), 0);
    assert!(metrics.total_requests() >= (6 * 4 * 3 + 1) as u64);
    assert_eq!(metrics.errors(), 2, "the two typed errors above");
    seed_client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn overloaded_connections_are_shed_with_a_status() {
    // No workers and a single queue slot: of two connections, exactly
    // one sits queued forever and the other is answered `Overloaded`.
    let config = ServerConfig {
        workers: 0,
        queue_cap: 1,
        ..ServerConfig::default()
    };
    let (mut handle, _store, root) = start_daemon("overload", config);
    let addr = handle.addr();

    // Raw sockets: the Overloaded frame is *pushed* by the acceptor at
    // admission time, before any request is sent.
    let mut first = std::net::TcpStream::connect(addr).unwrap();
    let mut second = std::net::TcpStream::connect(addr).unwrap();
    for s in [&first, &second] {
        s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
    }

    // Wait until the acceptor has disposed of both connections.
    let metrics = Arc::clone(handle.metrics());
    for _ in 0..100 {
        if metrics.rejected_connections() == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(metrics.rejected_connections(), 1);

    // One socket receives the Overloaded frame; the queued one (no
    // worker will ever pop it) stays silent until the read times out.
    let outcomes = [
        crate::protocol::read_frame(&mut first),
        crate::protocol::read_frame(&mut second),
    ];
    let overloaded = outcomes
        .iter()
        .filter(|r| {
            matches!(r, Ok(Some(body))
                if body.first() == Some(&(Status::Overloaded as u8)))
        })
        .count();
    let timed_out = outcomes.iter().filter(|r| r.is_err()).count();
    assert_eq!((overloaded, timed_out), (1, 1), "{outcomes:?}");

    handle.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn corruption_on_disk_is_detected_and_served_around() {
    let (handle, _store, root) = start_daemon("corrupt", ServerConfig::default());
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();

    let (imp, unimp) = load::payload_for(5, 1, 400, 1000);
    client.put("clip", &imp, &unimp).unwrap();

    // Flip one payload bit in a data shard, behind the daemon's back.
    let victim = root.join("nodes").join("1").join("clip_0.shard");
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[apec_store::crc::CRC_BYTES + 3] ^= 0x10; // raw-xor-ok: test fault injection, single byte
    std::fs::write(&victim, &bytes).unwrap();

    // The read detects the lie, reconstructs around it, and still
    // returns byte-identical data.
    let reply = client.get("clip").unwrap();
    assert_eq!(reply.important, imp);
    assert_eq!(reply.unimportant, unimp);
    assert!(reply.degraded, "read had to reconstruct");
    assert!(!reply.approximate);
    assert_eq!(reply.integrity_failures, 1);

    // The server-side counters saw it too.
    let metrics = handle.metrics();
    assert_eq!(metrics.integrity_failures(), 1);
    assert_eq!(metrics.degraded_reads(), 1);

    // Repair over the wire rewrites the shard; the next read is clean.
    client.repair().unwrap();
    let reply = client.get("clip").unwrap();
    assert!(!reply.degraded);
    assert_eq!(reply.integrity_failures, 0);

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn degraded_get_masks_nodes_per_request() {
    let (handle, store, root) = start_daemon("mask", ServerConfig::default());
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();

    let (imp, unimp) = load::payload_for(11, 2, 350, 800);
    client.put("clip", &imp, &unimp).unwrap();

    // Mask a live node: the read must reconstruct without it, exactly.
    let node = store.code().params().data_node(0, 0);
    let reply = client.degraded_get("clip", &[node]).unwrap();
    assert_eq!(reply.important, imp);
    assert_eq!(reply.unimportant, unimp);
    assert!(reply.degraded && !reply.approximate);

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn shutdown_verb_stops_the_daemon() {
    let (handle, _store, root) = start_daemon("bye", ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.shutdown().unwrap();
    // join() returns only once the acceptor and all workers exited.
    handle.join();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn kill_mid_run_keeps_reads_exact_within_tolerance() {
    let (handle, store, root) = start_daemon("kill", ServerConfig::default());
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();

    let (imp, unimp) = load::payload_for(13, 7, 640, 1664);
    client.put("clip", &imp, &unimp).unwrap();
    client.kill(2).unwrap();

    // One dead node is within every stripe's tolerance (r=1, g=2):
    // reads stay exact, flagged degraded only if the node held a shard
    // this read needed.
    let reply = client.get("clip").unwrap();
    assert_eq!(reply.important, imp);
    assert_eq!(reply.unimportant, unimp);
    assert!(!reply.approximate);

    // Writes are refused while degraded; repair re-admits them.
    match client.put("clip2", &imp, &unimp) {
        Err(ClientError::Server(Status::ErrUser, _)) => {}
        other => panic!("expected degraded-write refusal, got {other:?}"),
    }
    client.repair().unwrap();
    client.put("clip2", &imp, &unimp).unwrap();
    let reply = client.get("clip2").unwrap();
    assert!(!reply.degraded);
    assert_eq!(store.state().unwrap().dead_nodes, Vec::<usize>::new());

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn scrub_status_without_maintenance_is_a_user_error() {
    let (handle, _store, root) = start_daemon("no-maint", ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    match client.scrub_status() {
        Err(ClientError::Server(Status::ErrUser, msg)) => {
            assert!(msg.contains("maintenance"), "{msg}")
        }
        other => panic!("expected ErrUser, got {other:?}"),
    }
    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn maint_daemon_self_heals_injected_bitrot_over_the_wire() {
    let config = ServerConfig {
        maint: Some(MaintConfig {
            seed: 33,
            tick_ms: 5,
            ..MaintConfig::default()
        }),
        ..ServerConfig::default()
    };
    let (handle, _store, root) = start_daemon("maint", config);
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();

    let mut payloads = Vec::new();
    for video in 0..4u64 {
        let (imp, unimp) = load::payload_for(21, video, 320, 960);
        client.put(&load::video_id(video), &imp, &unimp).unwrap();
        payloads.push((imp, unimp));
    }

    // Seeded bit-rot behind the foreground path; the daemon must find
    // and heal every flip without being asked.
    let reply = client.inject_bitrot(4242, 3).unwrap();
    let injected = apec_store::json::parse(&reply)
        .unwrap()
        .get("injected")
        .and_then(|v| v.as_num())
        .unwrap();
    assert!(injected > 0, "injection found committed shards");

    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let status = loop {
        let status = MaintStatus::from_json(&client.scrub_status().unwrap()).unwrap();
        if status.injected_detected >= injected && status.injected_healed >= injected {
            break status;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "self-heal timed out: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(status.injected, injected);
    assert!(status.corrupt_detected >= injected);
    assert!(status.repairs_completed > 0);
    assert!(status.scrub_passes > 0);

    // Every healed object reads back byte-identical and clean; the
    // repeated read of the same id exercises the hot cache.
    for (video, (imp, unimp)) in payloads.iter().enumerate() {
        for _ in 0..2 {
            let reply = client.get(&load::video_id(video as u64)).unwrap();
            assert_eq!(&reply.important, imp, "vid-{video} important bytes");
            assert_eq!(&reply.unimportant, unimp, "vid-{video} unimportant bytes");
            assert!(!reply.approximate);
            assert_eq!(reply.integrity_failures, 0);
        }
    }

    // The metrics snapshot carries the new gauges.
    let snap = apec_store::json::parse(&client.metrics().unwrap()).unwrap();
    for key in [
        "uptime_ms",
        "queue_depth",
        "cache_hits",
        "cache_misses",
        "cache_evictions",
        "cache_insertions",
        "cache_objects",
        "cache_bytes",
    ] {
        assert!(snap.get(key).is_some(), "metrics snapshot missing {key}");
    }
    assert!(
        snap.get("cache_hits").and_then(|v| v.as_num()).unwrap() > 0,
        "second read of each object hits the cache"
    );
    assert_eq!(snap.get("queue_depth").and_then(|v| v.as_num()), Some(0));

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn load_harness_self_heals_seeded_bitrot_mid_run() {
    let config = ServerConfig {
        maint: Some(MaintConfig {
            seed: 9,
            tick_ms: 5,
            ..MaintConfig::default()
        }),
        ..ServerConfig::default()
    };
    let (handle, store, root) = start_daemon("load-heal", config);
    let nodes = store.code().total_nodes();

    let mut cfg = LoadConfig::smoke(19, nodes);
    cfg.clients = 2;
    cfg.bitrot_flips = 4;
    cfg.shutdown_after = true;
    let report = load::run(handle.addr(), &cfg).unwrap();
    assert_eq!(report.mismatches, 0, "byte-identical replies throughout");
    assert_eq!(report.errors, 0);

    let scrub = report.scrub.as_ref().expect("self-heal phase ran");
    assert!(scrub.injected > 0);
    assert!(scrub.status.injected_detected >= scrub.injected);
    assert!(scrub.status.injected_healed >= scrub.injected);
    assert_eq!(scrub.sweep_mismatches, 0, "healed objects read back exact");
    assert!(scrub.sweep_reads > 0);
    assert!(scrub.time_to_heal_ms >= 0.0);

    let bench = report.scrub_bench_json().expect("scrub bench document");
    assert!(bench.contains("\"bench\": \"scrub\""));
    assert!(bench.contains("\"metric\": \"shards_rebuilt\""));

    handle.join();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn load_harness_smoke_run_is_clean() {
    let (handle, store, root) = start_daemon("load", ServerConfig::default());
    let nodes = store.code().total_nodes();

    // Failure-free smoke: every read must be exact and un-degraded.
    let mut cfg = LoadConfig::smoke(7, nodes);
    cfg.clients = 3;
    cfg.shutdown_after = true;
    let report = load::run(handle.addr(), &cfg).unwrap();
    assert_eq!(report.mismatches, 0, "byte-identical replies");
    assert_eq!(report.errors, 0);
    assert_eq!(report.integrity_failures, 0);
    assert!(report.degraded_ratio.abs() < f64::EPSILON);
    assert!(report.total_requests > 0);
    assert!(report.ops.iter().any(|o| o.op == "get" && o.requests > 0));
    assert!(report.ops.iter().any(|o| o.op == "put" && o.requests > 0));

    // The bench document and the server snapshot are well-formed.
    let bench = report.to_bench_json();
    assert!(bench.contains("\"bench\": \"serve-load\""));
    let snap = apec_store::json::parse(&report.server_metrics).unwrap();
    assert_eq!(snap.get("integrity_failures").and_then(|v| v.as_num()), Some(0));
    assert_eq!(snap.get("degraded_reads").and_then(|v| v.as_num()), Some(0));

    handle.join();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn load_harness_survives_failures_mid_run() {
    let (handle, store, root) = start_daemon("load-fail", ServerConfig::default());
    let nodes = store.code().total_nodes();

    // Failures on: nodes die and are repaired mid-run; every reply must
    // still be byte-identical (single failures are within tolerance).
    let mut cfg = LoadConfig::small(11, nodes);
    cfg.clients = 2;
    cfg.shutdown_after = true;
    let report = load::run(handle.addr(), &cfg).unwrap();
    assert_eq!(report.mismatches, 0, "byte-identical replies under failures");
    assert_eq!(report.errors, 0);
    assert_eq!(report.approx_reads, 0, "single failures stay exact");

    handle.join();
    std::fs::remove_dir_all(&root).unwrap();
}
