//! Closed-loop load harness: replay a seeded tier-engine workload trace
//! against a live daemon and report client-observed latencies.
//!
//! The harness is *closed-loop*: every client thread holds exactly one
//! in-flight request and issues the next only after the previous reply
//! arrives, so measured latency is genuine service latency, not queueing
//! delay invented by an open-loop generator outrunning the server.
//!
//! Roles:
//!
//! - the **coordinator** (the thread calling [`run`]) owns one
//!   connection and applies the trace's control events in order —
//!   ingests become `put`s, node failures become `kill`s, repairs
//!   become `repair`s — so the cluster state a read observes is
//!   well-defined up to the reads still draining;
//! - `clients` **reader threads** each own one connection and consume
//!   `Read` events round-robin from bounded channels, verifying every
//!   reply byte-for-byte against the deterministic payload for that
//!   video (skipping the comparison only when the server flagged the
//!   bytes approximate).
//!
//! Payloads are derived from the seed by a splitmix64 filler — client
//! and verifier recompute them independently, nothing is stored — and
//! all latencies are kept exactly (client-side `Instant` pairs), so the
//! report's percentiles are true sample quantiles, not histogram
//! bounds.

use crate::client::{Client, ClientError};
use apec_maint::MaintStatus;
use apec_tier::{EventKind, WorkloadConfig};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Seed for the workload trace and the payload filler.
    pub seed: u64,
    /// Closed-loop reader threads (each owns one connection). The
    /// harness holds `clients + 1` persistent connections (readers plus
    /// the coordinator), so the daemon must run at least that many
    /// workers or the run parks in the admission queue forever.
    pub clients: usize,
    /// Important-stream bytes per object.
    pub important_bytes: usize,
    /// Unimportant-stream bytes per object.
    pub unimportant_bytes: usize,
    /// Node count the trace's failure events index into. Must match the
    /// serving store's code (`total_nodes`).
    pub nodes: usize,
    /// The trace generator configuration.
    pub workload: WorkloadConfig,
    /// Send a `shutdown` verb once the run completes.
    pub shutdown_after: bool,
    /// Bit flips to inject halfway through the trace (0 disables the
    /// self-healing phase). Requires the daemon to run with maintenance
    /// enabled; the run then waits for the scrubber to detect and heal
    /// every injected corruption and re-verifies every object.
    pub bitrot_flips: u32,
    /// Seed for the injected bit flips (independent of the trace seed).
    pub bitrot_seed: u64,
    /// How long to wait for detection + heal before giving up, ms.
    pub heal_timeout_ms: u64,
}

impl LoadConfig {
    /// The small smoke preset: the tier engine's `WorkloadConfig::small`
    /// trace, 4 reader threads, failures enabled.
    pub fn small(seed: u64, nodes: usize) -> Self {
        LoadConfig {
            seed,
            clients: 4,
            important_bytes: 640,
            unimportant_bytes: 1664,
            nodes,
            workload: WorkloadConfig::small(seed),
            shutdown_after: false,
            bitrot_flips: 0,
            bitrot_seed: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
            heal_timeout_ms: 60_000,
        }
    }

    /// The same preset with node failures disabled (CI smoke lane: the
    /// degraded-read ratio must then be exactly zero).
    pub fn smoke(seed: u64, nodes: usize) -> Self {
        let mut cfg = Self::small(seed, nodes);
        cfg.workload.failure_every = 0;
        cfg
    }
}

/// One op's client-observed latency summary.
#[derive(Debug, Clone)]
pub struct OpSummary {
    /// Op name (`put`, `get`, `kill`, `repair`, `stat`).
    pub op: String,
    /// Requests issued.
    pub requests: u64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
}

/// The outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Seed the run used.
    pub seed: u64,
    /// Reader threads.
    pub clients: usize,
    /// Wall-clock duration of the replay, milliseconds.
    pub elapsed_ms: f64,
    /// Requests across all connections (coordinator + readers).
    pub total_requests: u64,
    /// Requests per wall-clock second.
    pub throughput_rps: f64,
    /// Reads the server answered degraded, over all reads.
    pub degraded_ratio: f64,
    /// Reads the server flagged approximate.
    pub approx_reads: u64,
    /// Integrity failures the server reported across all reads.
    pub integrity_failures: u64,
    /// Replies whose bytes did not match the expected payload.
    pub mismatches: u64,
    /// Requests that returned an error status.
    pub errors: u64,
    /// Per-op latency summaries (`put`, `get`, `kill`, `repair`,
    /// `stat`).
    pub ops: Vec<OpSummary>,
    /// The server's own metrics snapshot (JSON), fetched at the end.
    pub server_metrics: String,
    /// Self-healing phase outcome (`bitrot_flips > 0` runs only).
    pub scrub: Option<ScrubOutcome>,
}

/// What the self-healing phase of a bit-rot run observed: the harness
/// injects seeded corruption mid-trace, waits for the daemon's scrubber
/// to detect and heal all of it, then re-reads every ingested object.
#[derive(Debug, Clone)]
pub struct ScrubOutcome {
    /// Corruptions the server injected (and registered for tracking).
    pub injected: u64,
    /// Wall-clock from injection until every corruption was healed, ms.
    pub time_to_heal_ms: f64,
    /// Objects re-read in the final verification sweep.
    pub sweep_reads: u64,
    /// Sweep replies whose bytes did not match the expected payload.
    pub sweep_mismatches: u64,
    /// The daemon's final maintenance status.
    pub status: MaintStatus,
    /// Cache hits at the end of the run (from the server metrics).
    pub cache_hits: u64,
    /// Cache misses at the end of the run (from the server metrics).
    pub cache_misses: u64,
}

impl ScrubOutcome {
    /// Cache hit rate over the whole run, in [0,1].
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// What one reader thread accumulated.
#[derive(Default)]
struct ReaderTally {
    latencies_us: Vec<u64>,
    reads: u64,
    degraded: u64,
    approx: u64,
    integrity_failures: u64,
    mismatches: u64,
    errors: u64,
}

/// Deterministic payload bytes: splitmix64 stream keyed off the run
/// seed and the video id, truncated to `len`.
fn fill_deterministic(key: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len.saturating_add(8));
    let mut z = key;
    while out.len() < len {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31; // raw-xor-ok: splitmix64 bit mixing, not shard bytes
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// The expected payload pair for one video under one run seed.
pub fn payload_for(seed: u64, video: u64, important: usize, unimportant: usize) -> (Vec<u8>, Vec<u8>) {
    let key = apec_ec::rng::derive(seed, &format!("load-payload-{video}"));
    (
        fill_deterministic(key, important),
        fill_deterministic(key.rotate_left(17) ^ 0xa5a5_a5a5_a5a5_a5a5, unimportant),
    )
}

/// The object id a video is stored under.
pub fn video_id(video: u64) -> String {
    format!("vid-{video}")
}

fn quantile_ms(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us
        .get(rank - 1)
        .map(|&us| us as f64 / 1000.0)
        .unwrap_or(0.0)
}

fn summarize(op: &str, mut us: Vec<u64>) -> OpSummary {
    us.sort_unstable();
    let requests = us.len() as u64;
    let mean_ms = if us.is_empty() {
        0.0
    } else {
        us.iter().sum::<u64>() as f64 / us.len() as f64 / 1000.0
    };
    OpSummary {
        op: op.to_string(),
        requests,
        p50_ms: quantile_ms(&us, 0.50),
        p99_ms: quantile_ms(&us, 0.99),
        mean_ms,
    }
}

fn reader_thread(
    addr: SocketAddr,
    cfg: LoadConfig,
    jobs: mpsc::Receiver<u64>,
) -> Result<ReaderTally, ClientError> {
    let mut client = Client::connect(addr)?;
    let mut tally = ReaderTally::default();
    while let Ok(video) = jobs.recv() {
        let start = Instant::now();
        let reply = client.get(&video_id(video));
        let us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        tally.latencies_us.push(us);
        tally.reads += 1;
        match reply {
            Ok(reply) => {
                if reply.degraded {
                    tally.degraded += 1;
                }
                if reply.approximate {
                    tally.approx += 1;
                }
                tally.integrity_failures += reply.integrity_failures as u64;
                let (imp, unimp) =
                    payload_for(cfg.seed, video, cfg.important_bytes, cfg.unimportant_bytes);
                // Approximate replies may hold zero-filled holes; the
                // important stream must still be exact, the unimportant
                // stream is only checked on exact replies.
                let ok = reply.important == imp && (reply.approximate || reply.unimportant == unimp);
                if !ok {
                    tally.mismatches += 1;
                }
            }
            Err(ClientError::Server(..)) => tally.errors += 1,
            Err(e) => return Err(e),
        }
    }
    Ok(tally)
}

/// Parses one numeric field out of an all-integer JSON document.
fn json_num(text: &str, key: &str) -> Option<u64> {
    apec_store::json::parse(text)
        .ok()?
        .get(key)
        .and_then(|v| v.as_num())
}

/// Replays the seeded workload against a daemon at `addr`.
///
/// Trace semantics: `Ingest` → `put` then `stat` (coordinator),
/// `Read` → `get` (round-robin across reader threads), `FailNode` →
/// `kill`, `RepairNode` → `repair` — all control verbs issued by the
/// coordinator on its own connection, synchronously.
///
/// With `bitrot_flips > 0` the coordinator additionally injects seeded
/// bit-rot halfway through the trace, then after the replay polls
/// `scrub-status` until the daemon has detected and healed every
/// injected corruption, and finally re-reads every ingested object to
/// prove byte-exactness end to end ([`ScrubOutcome`]).
pub fn run(addr: SocketAddr, cfg: &LoadConfig) -> Result<LoadReport, ClientError> {
    let trace = cfg.workload.generate(cfg.nodes);
    let mut coordinator = Client::connect(addr)?;

    // Reader threads, each with its own bounded job channel. The
    // channel bound keeps the dispatch loop from racing unboundedly far
    // ahead of slow readers (closed-loop discipline at the run level).
    let mut senders = Vec::with_capacity(cfg.clients.max(1));
    let mut handles = Vec::with_capacity(cfg.clients.max(1));
    for i in 0..cfg.clients.max(1) {
        let (tx, rx) = mpsc::sync_channel::<u64>(16);
        let cfg = cfg.clone();
        senders.push(tx);
        handles.push(
            std::thread::Builder::new()
                .name(format!("apec-load-{i}"))
                .spawn(move || reader_thread(addr, cfg, rx))
                .map_err(ClientError::Io)?,
        );
    }

    let started = Instant::now();
    let mut put_us: Vec<u64> = Vec::new();
    let mut kill_us: Vec<u64> = Vec::new();
    let mut repair_us: Vec<u64> = Vec::new();
    let mut stat_us: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    let mut next_reader = 0usize;
    let mut ingested: Vec<u64> = Vec::new();
    // Bit-rot injection point: halfway through the trace, when objects
    // exist to corrupt but plenty of reads are still in flight.
    let inject_at = trace.events.len() / 2;
    let mut injected = 0u64;
    let mut injected_at: Option<Instant> = None;
    for (i, ev) in trace.events.iter().enumerate() {
        if cfg.bitrot_flips > 0 && i == inject_at {
            let reply = coordinator.inject_bitrot(cfg.bitrot_seed, cfg.bitrot_flips)?;
            injected = json_num(&reply, "injected").unwrap_or(0);
            injected_at = Some(Instant::now());
        }
        match ev.kind {
            EventKind::Ingest { video } => {
                let (imp, unimp) =
                    payload_for(cfg.seed, video, cfg.important_bytes, cfg.unimportant_bytes);
                let start = Instant::now();
                match coordinator.put(&video_id(video), &imp, &unimp) {
                    Ok(_) => ingested.push(video),
                    Err(ClientError::Server(..)) => errors += 1,
                    Err(e) => return Err(e),
                }
                put_us.push(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
                // A stat rides along with every put, giving the metadata
                // path its own latency row.
                let start = Instant::now();
                match coordinator.stat(&video_id(video)) {
                    Ok(_) => {}
                    Err(ClientError::Server(..)) => errors += 1,
                    Err(e) => return Err(e),
                }
                stat_us.push(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
            }
            EventKind::Read { video } => {
                let idx = next_reader % senders.len().max(1);
                next_reader = next_reader.wrapping_add(1);
                if let Some(tx) = senders.get(idx) {
                    if tx.send(video).is_err() {
                        // Reader died; its error surfaces at join.
                        break;
                    }
                }
            }
            EventKind::FailNode { node } => {
                let start = Instant::now();
                match coordinator.kill(node) {
                    Ok(()) => {}
                    Err(ClientError::Server(..)) => errors += 1,
                    Err(e) => return Err(e),
                }
                kill_us.push(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
            }
            EventKind::RepairNode { .. } => {
                let start = Instant::now();
                match coordinator.repair() {
                    Ok(_) => {}
                    Err(ClientError::Server(..)) => errors += 1,
                    Err(e) => return Err(e),
                }
                repair_us.push(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
            }
        }
    }

    // Close the job channels and drain the readers.
    drop(senders);
    let mut read_tally = ReaderTally::default();
    for h in handles {
        match h.join() {
            Ok(Ok(t)) => {
                read_tally.latencies_us.extend(t.latencies_us);
                read_tally.reads += t.reads;
                read_tally.degraded += t.degraded;
                read_tally.approx += t.approx;
                read_tally.integrity_failures += t.integrity_failures;
                read_tally.mismatches += t.mismatches;
                read_tally.errors += t.errors;
            }
            Ok(Err(e)) => return Err(e),
            Err(_) => return Err(ClientError::Proto("reader thread panicked".to_string())),
        }
    }
    let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;

    // Self-healing settle phase: wait for the maintenance daemon to
    // detect and heal every injected corruption, then re-read every
    // object to prove the heals are byte-exact.
    let mut scrub = None;
    if cfg.bitrot_flips > 0 {
        let inject_instant = injected_at.unwrap_or(started);
        // Failure-injecting workloads can end with a node still dead;
        // shards there are the repair-all admin's job, not the
        // scrubber's, so mop up before asking the daemon to converge.
        if cfg.workload.failure_every > 0 {
            coordinator.repair()?;
        }
        let deadline = Instant::now() + Duration::from_millis(cfg.heal_timeout_ms.max(1));
        let status = loop {
            let status = MaintStatus::from_json(&coordinator.scrub_status()?)?;
            if status.injected_detected >= injected && status.injected_healed >= injected {
                break status;
            }
            if Instant::now() > deadline {
                return Err(ClientError::Proto(format!(
                    "self-heal timed out after {}ms: {} of {injected} detected, {} healed",
                    cfg.heal_timeout_ms, status.injected_detected, status.injected_healed
                )));
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        let time_to_heal_ms = inject_instant.elapsed().as_secs_f64() * 1000.0;
        let mut sweep_reads = 0u64;
        let mut sweep_mismatches = 0u64;
        for &video in &ingested {
            let reply = coordinator.get(&video_id(video))?;
            sweep_reads += 1;
            let (imp, unimp) =
                payload_for(cfg.seed, video, cfg.important_bytes, cfg.unimportant_bytes);
            let ok = reply.important == imp && (reply.approximate || reply.unimportant == unimp);
            if !ok {
                sweep_mismatches += 1;
            }
        }
        scrub = Some((status, time_to_heal_ms, sweep_reads, sweep_mismatches));
    }

    let server_metrics = coordinator.metrics()?;
    if cfg.shutdown_after {
        coordinator.shutdown()?;
    }
    let scrub = scrub.map(|(status, time_to_heal_ms, sweep_reads, sweep_mismatches)| {
        ScrubOutcome {
            injected,
            time_to_heal_ms,
            sweep_reads,
            sweep_mismatches,
            status,
            cache_hits: json_num(&server_metrics, "cache_hits").unwrap_or(0),
            cache_misses: json_num(&server_metrics, "cache_misses").unwrap_or(0),
        }
    });

    let total_requests = put_us.len() as u64
        + stat_us.len() as u64
        + kill_us.len() as u64
        + repair_us.len() as u64
        + read_tally.reads
        + 1; // the final metrics fetch
    let degraded_ratio = if read_tally.reads == 0 {
        0.0
    } else {
        read_tally.degraded as f64 / read_tally.reads as f64
    };
    Ok(LoadReport {
        seed: cfg.seed,
        clients: cfg.clients.max(1),
        elapsed_ms,
        total_requests,
        throughput_rps: if elapsed_ms > 0.0 {
            total_requests as f64 / (elapsed_ms / 1000.0)
        } else {
            0.0
        },
        degraded_ratio,
        approx_reads: read_tally.approx,
        integrity_failures: read_tally.integrity_failures,
        mismatches: read_tally.mismatches,
        errors: errors + read_tally.errors,
        ops: vec![
            summarize("put", put_us),
            summarize("get", read_tally.latencies_us),
            summarize("kill", kill_us),
            summarize("repair", repair_us),
            summarize("stat", stat_us),
        ],
        server_metrics,
        scrub,
    })
}

impl LoadReport {
    /// Render the `BENCH_serve.json` document (`bench: "serve-load"`
    /// schema, registered with `cargo xtask bench-check`).
    pub fn to_bench_json(&self) -> String {
        let mut rows = String::new();
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"op\": \"{}\", \"requests\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_ms\": {:.3}}}",
                op.op, op.requests, op.p50_ms, op.p99_ms, op.mean_ms
            ));
        }
        format!(
            "{{\n  \"bench\": \"serve-load\",\n  \"seed\": {},\n  \"clients\": {},\n  \
             \"elapsed_ms\": {:.3},\n  \"total_requests\": {},\n  \"throughput_rps\": {:.3},\n  \
             \"degraded_ratio\": {:.6},\n  \"integrity_failures\": {},\n  \"mismatches\": {},\n  \
             \"errors\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
            self.seed,
            self.clients,
            self.elapsed_ms,
            self.total_requests,
            self.throughput_rps,
            self.degraded_ratio,
            self.integrity_failures,
            self.mismatches,
            self.errors,
            rows
        )
    }

    /// Render the `BENCH_scrub.json` document (`bench: "scrub"` schema,
    /// registered with `cargo xtask bench-check`) — `None` unless this
    /// run had a self-healing phase (`bitrot_flips > 0`).
    pub fn scrub_bench_json(&self) -> Option<String> {
        let s = self.scrub.as_ref()?;
        let st = &s.status;
        let counters: &[(&str, u64)] = &[
            ("scrub_passes", st.scrub_passes),
            ("objects_scanned", st.objects_scanned),
            ("bytes_scanned", st.bytes_scanned),
            ("corrupt_detected", st.corrupt_detected),
            ("missing_detected", st.missing_detected),
            ("repairs_completed", st.repairs_completed),
            ("repairs_critical", st.repairs_critical),
            ("repairs_tolerance1", st.repairs_tolerance1),
            ("repairs_degraded", st.repairs_degraded),
            ("shards_rebuilt", st.shards_rebuilt),
            ("deferrals", st.deferrals),
            ("cache_hits", s.cache_hits),
            ("cache_misses", s.cache_misses),
            ("sweep_reads", s.sweep_reads),
        ];
        let mut rows = String::new();
        for (i, (metric, value)) in counters.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"metric\": \"{metric}\", \"value\": {value}}}"
            ));
        }
        Some(format!(
            "{{\n  \"bench\": \"scrub\",\n  \"seed\": {},\n  \"injected\": {},\n  \
             \"detected\": {},\n  \"healed\": {},\n  \"detection_latency_ms\": {:.3},\n  \
             \"heal_latency_ms\": {:.3},\n  \"time_to_heal_ms\": {:.3},\n  \
             \"scrub_mib_per_s\": {:.3},\n  \"cache_hit_rate\": {:.6},\n  \
             \"sweep_mismatches\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
            self.seed,
            s.injected,
            st.injected_detected,
            st.injected_healed,
            st.mean_detection_latency_us() as f64 / 1000.0,
            st.mean_heal_latency_us() as f64 / 1000.0,
            s.time_to_heal_ms,
            st.scrub_bytes_per_sec() as f64 / (1u64 << 20) as f64,
            s.cache_hit_rate(),
            s.sweep_mismatches,
            rows
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_are_deterministic_and_distinct() {
        let (a_imp, a_unimp) = payload_for(7, 3, 100, 200);
        let (b_imp, b_unimp) = payload_for(7, 3, 100, 200);
        assert_eq!(a_imp, b_imp);
        assert_eq!(a_unimp, b_unimp);
        assert_eq!(a_imp.len(), 100);
        assert_eq!(a_unimp.len(), 200);
        let (c_imp, _) = payload_for(7, 4, 100, 200);
        assert_ne!(a_imp, c_imp, "videos get distinct payloads");
        let (d_imp, _) = payload_for(8, 3, 100, 200);
        assert_ne!(a_imp, d_imp, "seeds get distinct payloads");
    }

    #[test]
    fn quantiles_are_exact_sample_quantiles() {
        let us: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        assert!((quantile_ms(&us, 0.50) - 50.0).abs() < 1e-9);
        assert!((quantile_ms(&us, 0.99) - 99.0).abs() < 1e-9);
        assert!((quantile_ms(&us, 1.0) - 100.0).abs() < 1e-9);
        assert_eq!(quantile_ms(&[], 0.5), 0.0);
    }

    #[test]
    fn bench_json_has_the_registered_shape() {
        let report = LoadReport {
            seed: 7,
            clients: 4,
            elapsed_ms: 123.456,
            total_requests: 500,
            throughput_rps: 4050.1,
            degraded_ratio: 0.0,
            approx_reads: 0,
            integrity_failures: 0,
            mismatches: 0,
            errors: 0,
            ops: vec![
                summarize("put", vec![1000, 2000]),
                summarize("get", vec![500, 600, 700]),
                summarize("kill", vec![800]),
                summarize("repair", vec![4000]),
                summarize("stat", vec![100, 150]),
            ],
            server_metrics: String::new(),
            scrub: None,
        };
        // The store parser rejects floats by design, so the bench
        // document (which carries millisecond floats) is shape-checked
        // textually; xtask bench-check does the schema-level parse.
        let text = report.to_bench_json();
        assert!(text.contains("\"bench\": \"serve-load\""));
        assert!(text.contains("\"results\": ["));
        for key in [
            "seed",
            "clients",
            "elapsed_ms",
            "total_requests",
            "throughput_rps",
            "degraded_ratio",
            "integrity_failures",
            "mismatches",
            "errors",
        ] {
            assert!(text.contains(&format!("\"{key}\"")), "missing {key}");
        }
        for key in ["op", "requests", "p50_ms", "p99_ms", "mean_ms"] {
            assert!(text.contains(&format!("\"{key}\"")), "missing row key {key}");
        }
        for op in ["put", "get", "kill", "repair", "stat"] {
            assert!(text.contains(&format!("\"op\": \"{op}\"")), "missing op row {op}");
        }
        assert!(report.scrub_bench_json().is_none(), "no self-heal phase");
    }

    #[test]
    fn scrub_bench_json_has_the_registered_shape() {
        let report = LoadReport {
            seed: 7,
            clients: 4,
            elapsed_ms: 100.0,
            total_requests: 10,
            throughput_rps: 100.0,
            degraded_ratio: 0.0,
            approx_reads: 0,
            integrity_failures: 0,
            mismatches: 0,
            errors: 0,
            ops: vec![summarize("put", vec![1000])],
            server_metrics: String::new(),
            scrub: Some(ScrubOutcome {
                injected: 6,
                time_to_heal_ms: 250.5,
                sweep_reads: 12,
                sweep_mismatches: 0,
                status: MaintStatus {
                    injected: 6,
                    injected_detected: 6,
                    injected_healed: 6,
                    bytes_scanned: 1 << 20,
                    scrub_busy_us: 100_000,
                    detection_latency_us_sum: 60_000,
                    heal_latency_us_sum: 120_000,
                    scrub_passes: 3,
                    repairs_completed: 4,
                    shards_rebuilt: 6,
                    ..MaintStatus::default()
                },
                cache_hits: 30,
                cache_misses: 10,
            }),
        };
        let text = report.scrub_bench_json().expect("self-heal phase ran");
        assert!(text.contains("\"bench\": \"scrub\""));
        for key in [
            "seed",
            "injected",
            "detected",
            "healed",
            "detection_latency_ms",
            "heal_latency_ms",
            "time_to_heal_ms",
            "scrub_mib_per_s",
            "cache_hit_rate",
            "sweep_mismatches",
        ] {
            assert!(text.contains(&format!("\"{key}\"")), "missing {key}");
        }
        assert!(text.contains("\"metric\": \"scrub_passes\""));
        assert!(text.contains("\"metric\": \"cache_hits\""));
        assert!(text.contains("\"cache_hit_rate\": 0.75"));
    }
}
