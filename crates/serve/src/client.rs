//! A blocking client for the serving protocol: one TCP connection,
//! request–response in lockstep (the closed-loop unit the load harness
//! multiplies).

use crate::protocol::{
    read_frame, write_frame, Op, Reader, Status, Writer, FLAG_APPROXIMATE, FLAG_DEGRADED,
};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered with an error status.
    Server(Status, String),
    /// The server's reply did not parse.
    Proto(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Server(status, msg) => write!(f, "server error {status:?}: {msg}"),
            ClientError::Proto(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<String> for ClientError {
    fn from(m: String) -> Self {
        ClientError::Proto(m)
    }
}

/// A get/degraded-get reply.
#[derive(Debug, PartialEq, Eq)]
pub struct GetReply {
    /// The important byte stream.
    pub important: Vec<u8>,
    /// The unimportant byte stream.
    pub unimportant: Vec<u8>,
    /// At least one shard was reconstructed.
    pub degraded: bool,
    /// The bytes are approximate (zero-filled holes).
    pub approximate: bool,
    /// Integrity failures the server detected during this read.
    pub integrity_failures: u32,
}

/// One blocking connection to the daemon.
pub struct Client {
    conn: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        let conn = TcpStream::connect(addr)?;
        let _ = conn.set_nodelay(true);
        Ok(Client { conn })
    }

    /// Applies a read/write timeout to the connection (`None` blocks
    /// forever, the default).
    pub fn set_timeout(&mut self, dur: Option<std::time::Duration>) -> Result<(), ClientError> {
        self.conn.set_read_timeout(dur)?;
        self.conn.set_write_timeout(dur)?;
        Ok(())
    }

    fn round_trip(&mut self, op: Op, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        write_frame(&mut self.conn, op as u8, payload)?;
        let body = read_frame(&mut self.conn)?
            .ok_or_else(|| ClientError::Proto("connection closed mid-request".to_string()))?;
        let Some((&status_byte, reply)) = body.split_first() else {
            return Err(ClientError::Proto("empty response body".to_string()));
        };
        let status = Status::from_byte(status_byte)
            .ok_or_else(|| ClientError::Proto(format!("unknown status byte {status_byte}")))?;
        if status == Status::Ok {
            Ok(reply.to_vec())
        } else {
            Err(ClientError::Server(
                status,
                String::from_utf8_lossy(reply).into_owned(),
            ))
        }
    }

    /// Stores an object; returns the server's metadata JSON.
    pub fn put(
        &mut self,
        id: &str,
        important: &[u8],
        unimportant: &[u8],
    ) -> Result<String, ClientError> {
        let mut w = Writer::new();
        w.str16(id).buf32(important).buf32(unimportant);
        let reply = self.round_trip(Op::Put, &w.into_bytes())?;
        Ok(String::from_utf8_lossy(&reply).into_owned())
    }

    /// Fetches an object.
    pub fn get(&mut self, id: &str) -> Result<GetReply, ClientError> {
        let mut w = Writer::new();
        w.str16(id);
        let reply = self.round_trip(Op::Get, &w.into_bytes())?;
        parse_get_reply(&reply)
    }

    /// Fetches an object while masking `mask` nodes as dead for this
    /// read only.
    pub fn degraded_get(&mut self, id: &str, mask: &[usize]) -> Result<GetReply, ClientError> {
        let mut w = Writer::new();
        w.str16(id).nodes16(mask);
        let reply = self.round_trip(Op::DegradedGet, &w.into_bytes())?;
        parse_get_reply(&reply)
    }

    /// Object metadata as the server's JSON.
    pub fn stat(&mut self, id: &str) -> Result<String, ClientError> {
        let mut w = Writer::new();
        w.str16(id);
        let reply = self.round_trip(Op::Stat, &w.into_bytes())?;
        Ok(String::from_utf8_lossy(&reply).into_owned())
    }

    /// Metrics snapshot as the server's JSON.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let reply = self.round_trip(Op::Metrics, &[])?;
        Ok(String::from_utf8_lossy(&reply).into_owned())
    }

    /// Kills a node (its shard files are deleted server-side).
    pub fn kill(&mut self, node: usize) -> Result<(), ClientError> {
        let mut w = Writer::new();
        w.u16(node.min(u16::MAX as usize) as u16);
        self.round_trip(Op::Kill, &w.into_bytes())?;
        Ok(())
    }

    /// Repairs every object; returns the server's summary JSON.
    pub fn repair(&mut self) -> Result<String, ClientError> {
        let reply = self.round_trip(Op::Repair, &[])?;
        Ok(String::from_utf8_lossy(&reply).into_owned())
    }

    /// Maintenance-daemon status snapshot as the server's JSON. Errors
    /// with `ErrUser` when the daemon runs without maintenance.
    pub fn scrub_status(&mut self) -> Result<String, ClientError> {
        let reply = self.round_trip(Op::ScrubStatus, &[])?;
        Ok(String::from_utf8_lossy(&reply).into_owned())
    }

    /// Injects seeded bit-rot into committed shard files server-side
    /// (deterministic fault injection for self-healing tests); returns
    /// the server's summary JSON.
    pub fn inject_bitrot(&mut self, seed: u64, flips: u32) -> Result<String, ClientError> {
        let mut w = Writer::new();
        w.u64(seed).u32(flips);
        let reply = self.round_trip(Op::InjectBitrot, &w.into_bytes())?;
        Ok(String::from_utf8_lossy(&reply).into_owned())
    }

    /// Asks the daemon to stop after acknowledging.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.round_trip(Op::Shutdown, &[])?;
        Ok(())
    }
}

fn parse_get_reply(reply: &[u8]) -> Result<GetReply, ClientError> {
    let mut r = Reader::new(reply);
    let flags = r.u8()?;
    let integrity_failures = r.u32()?;
    let important = r.buf32()?.to_vec();
    let unimportant = r.buf32()?.to_vec();
    r.finish()?;
    Ok(GetReply {
        important,
        unimportant,
        degraded: flags & FLAG_DEGRADED != 0,
        approximate: flags & FLAG_APPROXIMATE != 0,
        integrity_failures,
    })
}
