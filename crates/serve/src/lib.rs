//! Concurrent object-serving daemon over the apec store, plus the
//! closed-loop load harness that drives it.
//!
//! This crate is the paper's "storage system" boundary made live: where
//! `apec-store` owns durable state (CRC-framed shards, Merkle
//! manifests, atomic metadata), this crate puts a concurrent serving
//! surface in front of it — a std-thread TCP daemon speaking a small
//! length-prefixed binary protocol, with bounded admission control,
//! per-worker warm codec sessions, and lock-free request metrics.
//!
//! | module | role |
//! |---|---|
//! | [`protocol`] | wire format: frames, opcodes, statuses, payload codec |
//! | [`server`] | acceptor + bounded queue + worker pool ([`serve`]) |
//! | [`client`] | blocking request–response [`Client`] |
//! | [`metrics`] | relaxed-atomic counters and log-scale latency histograms |
//! | [`load`] | closed-loop trace replay emitting `BENCH_serve.json` |
//!
//! ```no_run
//! use apec_serve::{serve, Client, ServerConfig};
//! use apec_store::{Store, StoreConfig};
//! use std::net::TcpListener;
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join("apec-serve-doc");
//! let store = Arc::new(Store::init(&dir, StoreConfig::demo("rs")).unwrap());
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let handle = serve(store, listener, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client.put("clip-1", b"important", b"unimportant").unwrap();
//! let reply = client.get("clip-1").unwrap();
//! assert_eq!(reply.important, b"important");
//! handle.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod load;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, GetReply};
pub use load::{LoadConfig, LoadReport, OpSummary, ScrubOutcome};
pub use metrics::{CacheGauges, Metrics, OpStats};
pub use protocol::{Op, Status};
pub use server::{serve, ServerConfig, ServerHandle};

#[cfg(test)]
mod tests;
