//! The wire protocol: small, length-prefixed, binary, std-only.
//!
//! Every message is one frame: a `u32` little-endian body length
//! followed by the body. A request body is an opcode byte plus its
//! payload; a response body is a status byte plus its payload. Within
//! payloads, strings are `u16`-length-prefixed UTF-8, byte buffers are
//! `u32`-length-prefixed, and node lists are a `u16` count of `u16`
//! indices — everything little-endian, nothing self-describing, so a
//! request can be parsed with zero allocation beyond its own buffers.
//!
//! Frames are capped at [`MAX_FRAME`]; an oversized length prefix is a
//! protocol error, not an allocation — a garbage client cannot make the
//! daemon reserve gigabytes.

use std::io::{self, Read, Write};

/// Hard ceiling on one frame's body, requests and responses alike.
pub const MAX_FRAME: usize = 64 << 20;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Store an object: `id`, important buf, unimportant buf.
    Put = 1,
    /// Fetch an object: `id`.
    Get = 2,
    /// Fetch while masking nodes as dead: `id`, node list.
    DegradedGet = 3,
    /// Object metadata: `id`.
    Stat = 4,
    /// Serving metrics snapshot (JSON).
    Metrics = 5,
    /// Kill a node: `u16` index.
    Kill = 6,
    /// Repair all objects.
    Repair = 7,
    /// Stop the daemon after responding.
    Shutdown = 8,
    /// Maintenance-daemon status snapshot (JSON).
    ScrubStatus = 9,
    /// Seeded bit-rot fault injection: `u64` seed, `u32` flip count.
    InjectBitrot = 10,
}

impl Op {
    /// Decode an opcode byte.
    pub fn from_byte(b: u8) -> Option<Op> {
        match b {
            1 => Some(Op::Put),
            2 => Some(Op::Get),
            3 => Some(Op::DegradedGet),
            4 => Some(Op::Stat),
            5 => Some(Op::Metrics),
            6 => Some(Op::Kill),
            7 => Some(Op::Repair),
            8 => Some(Op::Shutdown),
            9 => Some(Op::ScrubStatus),
            10 => Some(Op::InjectBitrot),
            _ => None,
        }
    }
}

/// Response status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Success; payload is op-specific.
    Ok = 0,
    /// Caller mistake (bad id, duplicate, out of range); payload is a
    /// UTF-8 message.
    ErrUser = 1,
    /// Store-side corruption detected; payload is a UTF-8 message.
    ErrCorrupt = 2,
    /// I/O failure; payload is a UTF-8 message.
    ErrIo = 3,
    /// Admission control rejected the connection; retry later.
    Overloaded = 4,
    /// Malformed request; payload is a UTF-8 message.
    ErrProto = 5,
}

impl Status {
    /// Decode a status byte.
    pub fn from_byte(b: u8) -> Option<Status> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::ErrUser),
            2 => Some(Status::ErrCorrupt),
            3 => Some(Status::ErrIo),
            4 => Some(Status::Overloaded),
            5 => Some(Status::ErrProto),
            _ => None,
        }
    }
}

/// Bit set in a get-reply flags byte when the read was degraded.
pub const FLAG_DEGRADED: u8 = 1 << 0;
/// Bit set when the returned bytes are approximate (zero-filled holes).
pub const FLAG_APPROXIMATE: u8 = 1 << 1;

/// Read one frame body. `Ok(None)` is a clean EOF before any byte of the
/// frame (connection closed between requests).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match r.read(&mut len_bytes) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_bytes[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            r.read_exact(&mut len_bytes)?;
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside 1..={MAX_FRAME}"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Write one frame: `head` byte (opcode or status) + `payload`.
pub fn write_frame(w: &mut impl Write, head: u8, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() + 1;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame length {len} exceeds {MAX_FRAME}"),
        ));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&[head])?;
    w.write_all(payload)?;
    w.flush()
}

/// Incremental reader over a request/response payload. Every accessor
/// fails soft with a message — garbage input is a protocol error, never
/// a panic.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a payload.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("truncated payload at byte {}", self.pos))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Next `u8`.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, String> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Next little-endian `u64` (fault-injection seeds).
    pub fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Next `u16`-prefixed UTF-8 string.
    pub fn str16(&mut self) -> Result<&'a str, String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| "string field is not UTF-8".to_string())
    }

    /// Next `u32`-prefixed byte buffer.
    pub fn buf32(&mut self) -> Result<&'a [u8], String> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Next `u16`-count-prefixed list of `u16` node indices.
    pub fn nodes16(&mut self) -> Result<Vec<usize>, String> {
        let count = self.u16()? as usize;
        let mut out = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            out.push(self.u16()? as usize);
        }
        Ok(out)
    }

    /// Error unless the payload was consumed exactly.
    pub fn finish(&self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.pos
            ))
        }
    }
}

/// Payload builder mirroring [`Reader`].
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty payload builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u16`-prefixed string (truncating past `u16::MAX` bytes
    /// is a caller bug; ids are short by construction).
    pub fn str16(&mut self, s: &str) -> &mut Self {
        let len = s.len().min(u16::MAX as usize);
        self.u16(len as u16);
        self.buf.extend_from_slice(&s.as_bytes()[..len]);
        self
    }

    /// Append a `u32`-prefixed buffer.
    pub fn buf32(&mut self, b: &[u8]) -> &mut Self {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
        self
    }

    /// Append a node list.
    pub fn nodes16(&mut self, nodes: &[usize]) -> &mut Self {
        self.u16(nodes.len() as u16);
        for &n in nodes {
            self.u16(n as u16);
        }
        self
    }

    /// The finished payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, Op::Put as u8, b"payload").unwrap();
        let mut cursor = io::Cursor::new(wire);
        let body = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(body[0], Op::Put as u8);
        assert_eq!(&body[1..], b"payload");
        // Clean EOF after the frame.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_and_zero_frames_are_rejected() {
        let mut wire = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&[0; 8]);
        assert!(read_frame(&mut io::Cursor::new(wire)).is_err());
        let wire = 0u32.to_le_bytes().to_vec();
        assert!(read_frame(&mut io::Cursor::new(wire)).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, b"full payload").unwrap();
        wire.truncate(wire.len() - 3);
        assert!(read_frame(&mut io::Cursor::new(wire)).is_err());
    }

    #[test]
    fn reader_writer_round_trip() {
        let mut w = Writer::new();
        w.u8(7)
            .u16(513)
            .u32(70_000)
            .u64(0xdead_beef_0042_4242)
            .str16("clip-1")
            .buf32(&[9, 8, 7])
            .nodes16(&[3, 11]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8(), Ok(7));
        assert_eq!(r.u16(), Ok(513));
        assert_eq!(r.u32(), Ok(70_000));
        assert_eq!(r.u64(), Ok(0xdead_beef_0042_4242));
        assert_eq!(r.str16(), Ok("clip-1"));
        assert_eq!(r.buf32(), Ok(&[9u8, 8, 7][..]));
        assert_eq!(r.nodes16(), Ok(vec![3, 11]));
        assert_eq!(r.finish(), Ok(()));
    }

    #[test]
    fn reader_fails_soft_on_garbage() {
        let mut r = Reader::new(&[5, 0]);
        assert!(r.str16().is_err(), "length prefix past end");
        let mut r = Reader::new(&[1, 0, 0xff]);
        assert!(r.str16().is_err(), "invalid utf-8");
        let mut r = Reader::new(&[1, 2, 3]);
        let _ = r.u8();
        assert!(r.finish().is_err(), "trailing bytes detected");
    }

    #[test]
    fn op_and_status_bytes_round_trip() {
        for op in [
            Op::Put,
            Op::Get,
            Op::DegradedGet,
            Op::Stat,
            Op::Metrics,
            Op::Kill,
            Op::Repair,
            Op::Shutdown,
            Op::ScrubStatus,
            Op::InjectBitrot,
        ] {
            assert_eq!(Op::from_byte(op as u8), Some(op));
        }
        assert_eq!(Op::from_byte(0), None);
        assert_eq!(Op::from_byte(99), None);
        for st in [
            Status::Ok,
            Status::ErrUser,
            Status::ErrCorrupt,
            Status::ErrIo,
            Status::Overloaded,
            Status::ErrProto,
        ] {
            assert_eq!(Status::from_byte(st as u8), Some(st));
        }
        assert_eq!(Status::from_byte(42), None);
    }
}
