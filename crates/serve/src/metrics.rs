//! Lock-free serving metrics: monotonic counters and log-scale latency
//! histograms, all plain `AtomicU64`s with relaxed ordering.
//!
//! Relaxed is sufficient here by design: every cell is an independent
//! monotonic counter — no reader infers cross-cell ordering, and the
//! snapshot is explicitly a *statistical* view (taken while workers keep
//! serving), not a consistent cut. Using anything stronger would add
//! fence traffic on the hot request path for no observable benefit.
//!
//! Latencies land in 64 power-of-two microsecond buckets (bucket `i`
//! covers `[2^i, 2^(i+1))` µs), so recording is one `fetch_add` and
//! quantiles are a 64-step walk with at most 2× bucket error — plenty
//! for p50/p99 over a serving run, at zero allocation and zero locking.

use apec_store::json::{obj, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const BUCKETS: usize = 64;

/// One op's latency histogram plus request count and sum.
pub struct OpStats {
    count: AtomicU64,
    sum_us: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for OpStats {
    fn default() -> Self {
        OpStats {
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl OpStats {
    /// Record one request latency in microseconds.
    pub fn record(&self, us: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        // Bit length of the value picks the power-of-two bucket.
        let idx = (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Requests recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        let n = self.count();
        if n == 0 {
            0
        } else {
            self.sum_us.load(Ordering::Relaxed) / n
        }
    }

    /// Approximate quantile (upper bucket bound) in microseconds.
    /// `q` is in [0,1]; returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Upper bound of bucket i: 2^(i+1) - 1 µs.
                return if i + 1 >= 64 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
            }
        }
        u64::MAX
    }

    fn to_json(&self, op: &str) -> Value {
        obj(vec![
            ("op", Value::Str(op.to_string())),
            ("requests", Value::Num(self.count())),
            ("p50_us", Value::Num(self.quantile_us(0.50))),
            ("p99_us", Value::Num(self.quantile_us(0.99))),
            ("mean_us", Value::Num(self.mean_us())),
        ])
    }
}

/// Hot-read cache gauges as published in the metrics snapshot. The
/// server refreshes these from the cache's own counters at snapshot
/// time — the cache stays the single source of truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheGauges {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the store.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Successful inserts.
    pub insertions: u64,
    /// Objects currently resident.
    pub objects: u64,
    /// Payload bytes currently resident.
    pub bytes: u64,
}

/// The daemon's full metrics surface. One instance per server, shared
/// across workers behind an `Arc`; every update is a single relaxed
/// `fetch_add`.
pub struct Metrics {
    /// Per-op latency histograms.
    pub put: OpStats,
    /// Get latencies.
    pub get: OpStats,
    /// Degraded-get latencies.
    pub degraded_get: OpStats,
    /// Stat latencies.
    pub stat: OpStats,
    /// Admin verbs (metrics, kill, repair, shutdown, scrub-status,
    /// inject-bitrot).
    pub admin: OpStats,
    started: Instant,
    total_requests: AtomicU64,
    rejected_connections: AtomicU64,
    errors: AtomicU64,
    reads: AtomicU64,
    degraded_reads: AtomicU64,
    approx_reads: AtomicU64,
    integrity_failures: AtomicU64,
    // Gauges refreshed at snapshot time (last-write-wins, not summed).
    queue_depth: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    cache_insertions: AtomicU64,
    cache_objects: AtomicU64,
    cache_bytes: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            put: OpStats::default(),
            get: OpStats::default(),
            degraded_get: OpStats::default(),
            stat: OpStats::default(),
            admin: OpStats::default(),
            started: Instant::now(),
            total_requests: AtomicU64::new(0),
            rejected_connections: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            degraded_reads: AtomicU64::new(0),
            approx_reads: AtomicU64::new(0),
            integrity_failures: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            cache_insertions: AtomicU64::new(0),
            cache_objects: AtomicU64::new(0),
            cache_bytes: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one request (any op, any outcome).
    pub fn count_request(&self) {
        self.total_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one connection refused by admission control.
    pub fn count_rejected(&self) {
        self.rejected_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request that returned an error status.
    pub fn count_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one read outcome (get or degraded-get).
    pub fn count_read(&self, degraded: bool, approximate: bool, integrity_failures: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        if degraded {
            self.degraded_reads.fetch_add(1, Ordering::Relaxed);
        }
        if approximate {
            self.approx_reads.fetch_add(1, Ordering::Relaxed);
        }
        if integrity_failures > 0 {
            self.integrity_failures
                .fetch_add(integrity_failures, Ordering::Relaxed);
        }
    }

    /// Total requests seen.
    pub fn total_requests(&self) -> u64 {
        self.total_requests.load(Ordering::Relaxed)
    }

    /// Connections refused by admission control.
    pub fn rejected_connections(&self) -> u64 {
        self.rejected_connections.load(Ordering::Relaxed)
    }

    /// Requests that returned an error status.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Reads served.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Reads that reconstructed at least one shard.
    pub fn degraded_reads(&self) -> u64 {
        self.degraded_reads.load(Ordering::Relaxed)
    }

    /// Integrity failures detected while reading.
    pub fn integrity_failures(&self) -> u64 {
        self.integrity_failures.load(Ordering::Relaxed)
    }

    /// Milliseconds since this metrics block (the daemon) started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    /// Sets the repair-queue-depth gauge (refreshed at snapshot time
    /// from the maintenance daemon; stays 0 without one).
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Current repair-queue-depth gauge.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Refreshes the hot-cache gauges from the cache's counters.
    pub fn set_cache(&self, g: &CacheGauges) {
        self.cache_hits.store(g.hits, Ordering::Relaxed);
        self.cache_misses.store(g.misses, Ordering::Relaxed);
        self.cache_evictions.store(g.evictions, Ordering::Relaxed);
        self.cache_insertions.store(g.insertions, Ordering::Relaxed);
        self.cache_objects.store(g.objects, Ordering::Relaxed);
        self.cache_bytes.store(g.bytes, Ordering::Relaxed);
    }

    /// Degraded reads over total reads, in [0,1].
    pub fn degraded_ratio(&self) -> f64 {
        let reads = self.reads();
        if reads == 0 {
            0.0
        } else {
            self.degraded_reads() as f64 / reads as f64
        }
    }

    /// JSON snapshot served by the `metrics` verb. A statistical view:
    /// counters are read one by one while workers keep serving.
    pub fn snapshot_json(&self) -> String {
        obj(vec![
            ("uptime_ms", Value::Num(self.uptime_ms())),
            ("queue_depth", Value::Num(self.queue_depth())),
            ("total_requests", Value::Num(self.total_requests())),
            ("rejected_connections", Value::Num(self.rejected_connections())),
            ("errors", Value::Num(self.errors())),
            ("reads", Value::Num(self.reads())),
            ("degraded_reads", Value::Num(self.degraded_reads())),
            ("approx_reads", Value::Num(self.approx_reads.load(Ordering::Relaxed))),
            ("integrity_failures", Value::Num(self.integrity_failures())),
            ("cache_hits", Value::Num(self.cache_hits.load(Ordering::Relaxed))),
            ("cache_misses", Value::Num(self.cache_misses.load(Ordering::Relaxed))),
            ("cache_evictions", Value::Num(self.cache_evictions.load(Ordering::Relaxed))),
            ("cache_insertions", Value::Num(self.cache_insertions.load(Ordering::Relaxed))),
            ("cache_objects", Value::Num(self.cache_objects.load(Ordering::Relaxed))),
            ("cache_bytes", Value::Num(self.cache_bytes.load(Ordering::Relaxed))),
            (
                "ops",
                Value::Arr(vec![
                    self.put.to_json("put"),
                    self.get.to_json("get"),
                    self.degraded_get.to_json("degraded_get"),
                    self.stat.to_json("stat"),
                    self.admin.to_json("admin"),
                ]),
            ),
        ])
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let st = OpStats::default();
        for us in [3u64, 5, 9, 17, 33, 65, 129, 1025, 4097, 100_000] {
            st.record(us);
        }
        assert_eq!(st.count(), 10);
        let p50 = st.quantile_us(0.50);
        assert!((16..=63).contains(&p50), "p50={p50}");
        let p99 = st.quantile_us(0.99);
        assert!(p99 >= 100_000, "p99={p99}");
        assert!(st.mean_us() > 0);
        // Quantiles are monotone in q.
        assert!(st.quantile_us(0.1) <= st.quantile_us(0.9));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let st = OpStats::default();
        assert_eq!(st.quantile_us(0.99), 0);
        assert_eq!(st.mean_us(), 0);
    }

    #[test]
    fn zero_latency_lands_in_the_first_bucket() {
        let st = OpStats::default();
        st.record(0);
        assert_eq!(st.count(), 1);
        assert_eq!(st.quantile_us(0.5), 1, "bucket 0 upper bound");
    }

    #[test]
    fn snapshot_is_valid_json_with_expected_fields() {
        let m = Metrics::new();
        m.count_request();
        m.get.record(120);
        m.count_read(true, false, 2);
        m.set_queue_depth(3);
        m.set_cache(&CacheGauges {
            hits: 10,
            misses: 4,
            evictions: 1,
            insertions: 5,
            objects: 4,
            bytes: 4096,
        });
        let snap = m.snapshot_json();
        let v = apec_store::json::parse(&snap).expect("snapshot parses");
        assert_eq!(v.get("total_requests").and_then(|x| x.as_num()), Some(1));
        assert_eq!(v.get("reads").and_then(|x| x.as_num()), Some(1));
        assert_eq!(v.get("degraded_reads").and_then(|x| x.as_num()), Some(1));
        assert_eq!(v.get("integrity_failures").and_then(|x| x.as_num()), Some(2));
        assert_eq!(v.get("queue_depth").and_then(|x| x.as_num()), Some(3));
        assert_eq!(v.get("cache_hits").and_then(|x| x.as_num()), Some(10));
        assert_eq!(v.get("cache_misses").and_then(|x| x.as_num()), Some(4));
        assert_eq!(v.get("cache_bytes").and_then(|x| x.as_num()), Some(4096));
        assert!(v.get("uptime_ms").and_then(|x| x.as_num()).is_some());
        let ops = v.get("ops").and_then(|x| x.as_arr()).expect("ops array");
        assert_eq!(ops.len(), 5);
        assert!(ops.iter().all(|o| o.get("p99_us").is_some()));
        assert!((m.degraded_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = std::sync::Arc::new(Metrics::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = std::sync::Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    m.count_request();
                    m.get.record(i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.total_requests(), 4000);
        assert_eq!(m.get.count(), 4000);
    }
}
