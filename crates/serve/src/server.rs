//! The serving daemon: a std-thread TCP server over a shared
//! [`Store`], with bounded admission control and per-worker warm codec
//! sessions.
//!
//! # Architecture
//!
//! ```text
//!            accept()           bounded queue            N workers
//! clients ──────────▶ acceptor ───────────────▶ pop ──▶ serve_connection
//!                        │  queue full                     │ per-request:
//!                        └─▶ Overloaded + close             │ handle_request
//!                                                           └─▶ Store (shared)
//! ```
//!
//! * **Admission control**: the acceptor never buffers unboundedly. A
//!   connection either enters the bounded queue or is answered with
//!   [`Status::Overloaded`] and closed immediately — under overload the
//!   daemon sheds load explicitly instead of accumulating latency.
//! * **Workers** own a [`StoreSession`] each (warm parity arenas and
//!   cached repair plans), serving one connection at a time,
//!   request-after-request until the client closes.
//! * **Shutdown** is cooperative: the stop flag is set (by
//!   [`ServerHandle::shutdown`] or the wire `Shutdown` verb), the queue
//!   closes, and a self-connection unblocks the acceptor.

use crate::metrics::{CacheGauges, Metrics};
use crate::protocol::{
    read_frame, write_frame, Op, Reader, Status, Writer, FLAG_APPROXIMATE, FLAG_DEGRADED,
};
use apec_maint::{CacheConfig, HotCache, MaintConfig, MaintDaemon};
use apec_store::json::{obj, Value};
use apec_store::{Store, StoreError, StoreSession};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (each owns a warm [`StoreSession`]).
    pub workers: usize,
    /// Bounded connection-queue capacity; beyond it, connections are
    /// answered `Overloaded` and closed.
    pub queue_cap: usize,
    /// Hot-read cache budget in bytes (0 disables the cache).
    pub cache_bytes: u64,
    /// Run the embedded maintenance daemon (background scrubber +
    /// exposure-prioritized repair) with this configuration.
    pub maint: Option<MaintConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            // Connections are persistent (one worker each until EOF),
            // so the pool must exceed the expected concurrent client
            // count; the default comfortably covers the load harness's
            // default of 4 readers + 1 coordinator.
            workers: 8,
            queue_cap: 64,
            cache_bytes: 64 << 20,
            maint: None,
        }
    }
}

/// Everything a worker needs to serve requests: the store, the shared
/// counters, the optional hot cache and maintenance daemon surface, and
/// the in-flight-foreground-reads gauge the repair drain defers to.
struct Ctx {
    store: Arc<Store>,
    metrics: Arc<Metrics>,
    cache: Option<Arc<HotCache>>,
    maint: Option<Arc<apec_maint::Shared>>,
    foreground_reads: Arc<AtomicU64>,
}

/// Bounded MPMC connection queue: mutex + condvar, capacity-checked on
/// push — the daemon's explicit backpressure point.
struct ConnQueue {
    inner: Mutex<QueueState>,
    ready: Condvar,
    cap: usize,
}

struct QueueState {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(QueueState {
                conns: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn guard(&self) -> std::sync::MutexGuard<'_, QueueState> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Admits the connection or hands it back (queue full or closed) so
    /// the caller can answer `Overloaded` before closing it.
    fn try_push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut st = self.guard();
        if st.closed || st.conns.len() >= self.cap {
            return Err(conn);
        }
        st.conns.push_back(conn);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut st = self.guard();
        loop {
            if let Some(conn) = st.conns.pop_front() {
                return Some(conn);
            }
            if st.closed {
                return None;
            }
            st = match self.ready.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    fn close(&self) {
        self.guard().closed = true;
        self.ready.notify_all();
    }
}

/// One registration slot per worker: the duplicated handle of the
/// connection that worker is currently serving, if any. Shutdown walks
/// the slots and closes the sockets, which unblocks workers parked in
/// `read_frame` on idle connections — the piece a stop flag alone
/// cannot do.
type ActiveSlots = Vec<Mutex<Option<TcpStream>>>;

fn slot_guard(slot: &Mutex<Option<TcpStream>>) -> std::sync::MutexGuard<'_, Option<TcpStream>> {
    match slot.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Closes every registered in-flight connection. Callers store the stop
/// flag *before* this walk; a worker that registers a connection after
/// its slot was walked will observe the flag through the slot mutex's
/// ordering and bail out itself.
fn interrupt_all(slots: &ActiveSlots) {
    for slot in slots {
        // Take the stream out and let the guard drop before the socket
        // syscall: `shutdown()` can block, and a worker parked on this
        // slot mutex needs it released to observe the stop flag. The
        // worker clears its own slot after serving, so taking the
        // duplicated handle here loses nothing.
        let conn = slot_guard(slot).take();
        if let Some(conn) = conn {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// A running daemon: join handles, shared metrics, and the shutdown
/// trigger.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    active: Arc<ActiveSlots>,
    metrics: Arc<Metrics>,
    maint: Option<MaintDaemon>,
    cache: Option<Arc<HotCache>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's live metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The embedded maintenance daemon, when one was configured.
    pub fn maint(&self) -> Option<&MaintDaemon> {
        self.maint.as_ref()
    }

    /// The hot-read cache, when one was configured.
    pub fn cache(&self) -> Option<&Arc<HotCache>> {
        self.cache.as_ref()
    }

    /// Whether a stop has been requested (by [`ServerHandle::shutdown`]
    /// or the wire `Shutdown` verb).
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Stops the daemon and joins every thread. Idempotent. Connections
    /// being served are closed; queued connections are dropped unserved.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.queue.close();
        interrupt_all(&self.active);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(mut maint) = self.maint.take() {
            maint.shutdown();
        }
    }

    /// Blocks until every thread has exited (a client `Shutdown` verb,
    /// typically). Consumes the handle.
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(mut maint) = self.maint.take() {
            maint.shutdown();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts the daemon on `listener` over `store` and returns immediately.
pub fn serve(
    store: Arc<Store>,
    listener: TcpListener,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(ConnQueue::new(config.queue_cap));
    let metrics = Arc::new(Metrics::new());
    let active: Arc<ActiveSlots> =
        Arc::new((0..config.workers).map(|_| Mutex::new(None)).collect());

    let cache = (config.cache_bytes > 0).then(|| {
        Arc::new(HotCache::new(CacheConfig {
            max_bytes: config.cache_bytes,
            ..CacheConfig::default()
        }))
    });
    let foreground_reads = Arc::new(AtomicU64::new(0));
    let maint = config.maint.map(|mc| {
        MaintDaemon::spawn(
            Arc::clone(&store),
            cache.clone(),
            Arc::clone(&foreground_reads),
            mc,
        )
    });
    let ctx = Arc::new(Ctx {
        store,
        metrics: Arc::clone(&metrics),
        cache: cache.clone(),
        maint: maint.as_ref().map(|d| Arc::clone(d.shared())),
        foreground_reads,
    });

    let mut workers = Vec::with_capacity(config.workers);
    for i in 0..config.workers {
        let queue = Arc::clone(&queue);
        let ctx = Arc::clone(&ctx);
        let stop = Arc::clone(&stop);
        let active = Arc::clone(&active);
        workers.push(
            std::thread::Builder::new()
                .name(format!("apec-serve-worker-{i}"))
                .spawn(move || {
                    let mut session = StoreSession::new();
                    while let Some(conn) = queue.pop() {
                        // Register the connection so shutdown can close
                        // it out from under a blocked read; the slot
                        // mutex also orders the stop-flag check below
                        // against a concurrent interrupt_all walk. The
                        // dup syscall runs before the guard is taken —
                        // never blocking while the slot is held.
                        let dup = conn.try_clone().ok();
                        if let Some(slot) = active.get(i) {
                            *slot_guard(slot) = dup;
                        }
                        if stop.load(Ordering::Acquire) {
                            if let Some(slot) = active.get(i) {
                                *slot_guard(slot) = None;
                            }
                            continue; // drain the queue without serving
                        }
                        serve_connection(&ctx, &mut session, &stop, &active, addr, conn);
                        if let Some(slot) = active.get(i) {
                            *slot_guard(slot) = None;
                        }
                    }
                })?,
        );
    }

    let acceptor = {
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&stop);
        let metrics = Arc::clone(&metrics);
        std::thread::Builder::new()
            .name("apec-serve-acceptor".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    let _ = conn.set_nodelay(true);
                    if let Err(mut rejected) = queue.try_push(conn) {
                        // Shed load explicitly: tell the client, close.
                        metrics.count_rejected();
                        let _ = write_frame(
                            &mut rejected,
                            Status::Overloaded as u8,
                            b"server overloaded; retry later",
                        );
                    }
                }
                queue.close();
            })?
    };

    Ok(ServerHandle {
        addr,
        stop,
        queue,
        active,
        metrics,
        maint,
        cache,
        acceptor: Some(acceptor),
        workers,
    })
}

/// Serves one connection request-after-request until EOF, a protocol
/// error, or shutdown.
fn serve_connection(
    ctx: &Ctx,
    session: &mut StoreSession,
    stop: &AtomicBool,
    active: &ActiveSlots,
    addr: SocketAddr,
    mut conn: TcpStream,
) {
    let metrics = &*ctx.metrics;
    loop {
        let body = match read_frame(&mut conn) {
            Ok(Some(body)) => body,
            Ok(None) => return,
            Err(_) => return,
        };
        metrics.count_request();
        let started = Instant::now();
        let (op, status, payload) = handle_request(ctx, session, &body);
        let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        match op {
            Some(Op::Put) => metrics.put.record(us),
            Some(Op::Get) => metrics.get.record(us),
            Some(Op::DegradedGet) => metrics.degraded_get.record(us),
            Some(Op::Stat) => metrics.stat.record(us),
            Some(_) | None => metrics.admin.record(us),
        }
        if status != Status::Ok {
            metrics.count_error();
        }
        if write_frame(&mut conn, status as u8, &payload).is_err() {
            return;
        }
        if op == Some(Op::Shutdown) {
            stop.store(true, Ordering::Release);
            // Close the other workers' in-flight connections (a blocked
            // read wakes as EOF), then wake the acceptor so it observes
            // the flag and closes the queue, releasing idle workers.
            interrupt_all(active);
            let _ = TcpStream::connect(addr);
            return;
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Decodes and executes one request body; returns the opcode (when it
/// parsed), the response status and the response payload. Never panics:
/// garbage in means `ErrProto` out.
fn handle_request(
    ctx: &Ctx,
    session: &mut StoreSession,
    body: &[u8],
) -> (Option<Op>, Status, Vec<u8>) {
    let store = &*ctx.store;
    let metrics = &*ctx.metrics;
    let Some((&op_byte, payload)) = body.split_first() else {
        return (None, Status::ErrProto, b"empty request body".to_vec());
    };
    let Some(op) = Op::from_byte(op_byte) else {
        return (
            None,
            Status::ErrProto,
            format!("unknown opcode {op_byte}").into_bytes(),
        );
    };
    let mut r = Reader::new(payload);
    let result: Result<Vec<u8>, RequestError> = match op {
        Op::Put => (|| {
            let id = r.str16()?.to_string();
            let important = r.buf32()?.to_vec();
            let unimportant = r.buf32()?.to_vec();
            r.finish()?;
            let meta = store.put_object(session, &id, &important, &unimportant)?;
            Ok(meta_json(&meta).into_bytes())
        })(),
        Op::Get => (|| {
            let id = r.str16()?.to_string();
            r.finish()?;
            serve_get(ctx, session, &id)
        })(),
        Op::DegradedGet => (|| {
            let id = r.str16()?.to_string();
            let mask = r.nodes16()?;
            r.finish()?;
            serve_degraded_get(ctx, session, &id, &mask)
        })(),
        Op::Stat => (|| {
            let id = r.str16()?.to_string();
            r.finish()?;
            let meta = store.stat(&id)?;
            Ok(meta_json(&meta).into_bytes())
        })(),
        Op::Metrics => {
            // Refresh the gauges the snapshot carries: repair-queue
            // depth from the maintenance daemon, cache counters from
            // the hot cache.
            if let Some(maint) = &ctx.maint {
                metrics.set_queue_depth(maint.status().queue_depth);
            }
            if let Some(cache) = &ctx.cache {
                let snap = cache.snapshot();
                metrics.set_cache(&CacheGauges {
                    hits: snap.hits,
                    misses: snap.misses,
                    evictions: snap.evictions,
                    insertions: snap.insertions,
                    objects: snap.objects,
                    bytes: snap.bytes,
                });
            }
            Ok(metrics.snapshot_json().into_bytes())
        }
        Op::Kill => (|| {
            let node = r.u16()? as usize;
            r.finish()?;
            store.kill_node(node)?;
            // Dead-node reads must not be masked by stale cache hits.
            if let Some(cache) = &ctx.cache {
                cache.clear();
            }
            Ok(obj(vec![("killed", Value::Num(node as u64))])
                .to_string()
                .into_bytes())
        })(),
        Op::Repair => (|| {
            r.finish()?;
            let summary = store.repair_all()?;
            Ok(obj(vec![
                ("shards_rebuilt", Value::Num(summary.shards_rebuilt as u64)),
                ("bytes_lost", Value::Num(summary.bytes_lost as u64)),
                ("important_intact", Value::Bool(summary.important_intact)),
                (
                    "integrity_failures",
                    Value::Num(summary.integrity_failures as u64),
                ),
            ])
            .to_string()
            .into_bytes())
        })(),
        Op::ScrubStatus => match &ctx.maint {
            Some(maint) => Ok(maint.status().to_json().into_bytes()),
            None => Err(RequestError::Store(StoreError::User(
                "maintenance daemon is not running".to_string(),
            ))),
        },
        Op::InjectBitrot => (|| {
            let seed = r.u64()?;
            let flips = r.u32()? as usize;
            r.finish()?;
            let hits = store.inject_bitrot(seed, flips)?;
            // Register the hits so scrub-status can report detection
            // and heal latencies for them.
            if let Some(maint) = &ctx.maint {
                maint.note_injections(&hits);
            }
            Ok(obj(vec![
                ("injected", Value::Num(hits.len() as u64)),
                ("seed", Value::Num(seed)),
            ])
            .to_string()
            .into_bytes())
        })(),
        Op::Shutdown => Ok(b"bye".to_vec()),
    };
    match result {
        Ok(payload) => (Some(op), Status::Ok, payload),
        Err(e) => {
            let (status, msg) = e.into_wire();
            (Some(op), status, msg.into_bytes())
        }
    }
}

/// Serves a get: hot-cache first, then a full store read with integrity
/// verification. Only clean reads (exact, non-degraded, zero integrity
/// failures) populate the cache, so a hit is always byte-exact and is
/// served with all reply flags clear.
fn serve_get(ctx: &Ctx, session: &mut StoreSession, id: &str) -> Result<Vec<u8>, RequestError> {
    if let Some(cache) = &ctx.cache {
        if let Some(hit) = cache.get(id) {
            ctx.metrics.count_read(false, false, 0);
            let mut w = Writer::new();
            w.u8(0).u32(0).buf32(&hit.important).buf32(&hit.unimportant);
            return Ok(w.into_bytes());
        }
    }
    serve_degraded_get(ctx, session, id, &[])
}

/// Serves a degraded get: `mask` nodes are treated as dead for this
/// read only (stored files untouched), exercising reconstruction on a
/// healthy cluster. Always reads the store (never the cache), so masked
/// reconstruction is genuinely exercised.
fn serve_degraded_get(
    ctx: &Ctx,
    session: &mut StoreSession,
    id: &str,
    mask: &[usize],
) -> Result<Vec<u8>, RequestError> {
    // Gauge of in-flight foreground reads: the maintenance drain defers
    // non-critical repairs while it is non-zero.
    ctx.foreground_reads.fetch_add(1, Ordering::AcqRel);
    let read = ctx.store.read_object(session, id, mask);
    ctx.foreground_reads.fetch_sub(1, Ordering::AcqRel);
    let out = read?;
    ctx.metrics
        .count_read(out.degraded, out.approximate, out.integrity_failures as u64);
    let clean = !out.degraded && !out.approximate && out.integrity_failures == 0;
    if clean && mask.is_empty() {
        if let Some(cache) = &ctx.cache {
            cache.insert(id, out.important.clone(), out.unimportant.clone());
        }
    }
    let mut flags = 0u8;
    if out.degraded {
        flags |= FLAG_DEGRADED;
    }
    if out.approximate {
        flags |= FLAG_APPROXIMATE;
    }
    let mut w = Writer::new();
    w.u8(flags)
        .u32(out.integrity_failures.min(u32::MAX as usize) as u32)
        .buf32(&out.important)
        .buf32(&out.unimportant);
    Ok(w.into_bytes())
}

fn meta_json(meta: &apec_store::ObjectMeta) -> String {
    obj(vec![
        ("id", Value::Str(meta.id.clone())),
        ("stripes", Value::Num(meta.stripes as u64)),
        ("important_len", Value::Num(meta.important_len as u64)),
        ("unimportant_len", Value::Num(meta.unimportant_len as u64)),
        ("approximated", Value::Bool(meta.approximated)),
    ])
    .to_string()
}

/// Internal error type letting handlers use `?` over both store errors
/// and protocol-decode strings.
enum RequestError {
    Store(StoreError),
    Proto(String),
}

impl RequestError {
    fn into_wire(self) -> (Status, String) {
        match self {
            RequestError::Store(StoreError::User(m)) => (Status::ErrUser, m),
            RequestError::Store(StoreError::Corrupt(m)) => (Status::ErrCorrupt, m),
            RequestError::Store(StoreError::Io(e)) => (Status::ErrIo, e.to_string()),
            RequestError::Proto(m) => (Status::ErrProto, m),
        }
    }
}

impl From<StoreError> for RequestError {
    fn from(e: StoreError) -> Self {
        RequestError::Store(e)
    }
}

impl From<String> for RequestError {
    fn from(m: String) -> Self {
        RequestError::Proto(m)
    }
}
