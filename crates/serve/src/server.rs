//! The serving daemon: a std-thread TCP server over a shared
//! [`Store`], with bounded admission control and per-worker warm codec
//! sessions.
//!
//! # Architecture
//!
//! ```text
//!            accept()           bounded queue            N workers
//! clients ──────────▶ acceptor ───────────────▶ pop ──▶ serve_connection
//!                        │  queue full                     │ per-request:
//!                        └─▶ Overloaded + close             │ handle_request
//!                                                           └─▶ Store (shared)
//! ```
//!
//! * **Admission control**: the acceptor never buffers unboundedly. A
//!   connection either enters the bounded queue or is answered with
//!   [`Status::Overloaded`] and closed immediately — under overload the
//!   daemon sheds load explicitly instead of accumulating latency.
//! * **Workers** own a [`StoreSession`] each (warm parity arenas and
//!   cached repair plans), serving one connection at a time,
//!   request-after-request until the client closes.
//! * **Shutdown** is cooperative: the stop flag is set (by
//!   [`ServerHandle::shutdown`] or the wire `Shutdown` verb), the queue
//!   closes, and a self-connection unblocks the acceptor.

use crate::metrics::Metrics;
use crate::protocol::{
    read_frame, write_frame, Op, Reader, Status, Writer, FLAG_APPROXIMATE, FLAG_DEGRADED,
};
use apec_store::json::{obj, Value};
use apec_store::{Store, StoreError, StoreSession};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (each owns a warm [`StoreSession`]).
    pub workers: usize,
    /// Bounded connection-queue capacity; beyond it, connections are
    /// answered `Overloaded` and closed.
    pub queue_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            // Connections are persistent (one worker each until EOF),
            // so the pool must exceed the expected concurrent client
            // count; the default comfortably covers the load harness's
            // default of 4 readers + 1 coordinator.
            workers: 8,
            queue_cap: 64,
        }
    }
}

/// Bounded MPMC connection queue: mutex + condvar, capacity-checked on
/// push — the daemon's explicit backpressure point.
struct ConnQueue {
    inner: Mutex<QueueState>,
    ready: Condvar,
    cap: usize,
}

struct QueueState {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(QueueState {
                conns: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn guard(&self) -> std::sync::MutexGuard<'_, QueueState> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Admits the connection or hands it back (queue full or closed) so
    /// the caller can answer `Overloaded` before closing it.
    fn try_push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut st = self.guard();
        if st.closed || st.conns.len() >= self.cap {
            return Err(conn);
        }
        st.conns.push_back(conn);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut st = self.guard();
        loop {
            if let Some(conn) = st.conns.pop_front() {
                return Some(conn);
            }
            if st.closed {
                return None;
            }
            st = match self.ready.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    fn close(&self) {
        self.guard().closed = true;
        self.ready.notify_all();
    }
}

/// One registration slot per worker: the duplicated handle of the
/// connection that worker is currently serving, if any. Shutdown walks
/// the slots and closes the sockets, which unblocks workers parked in
/// `read_frame` on idle connections — the piece a stop flag alone
/// cannot do.
type ActiveSlots = Vec<Mutex<Option<TcpStream>>>;

fn slot_guard(slot: &Mutex<Option<TcpStream>>) -> std::sync::MutexGuard<'_, Option<TcpStream>> {
    match slot.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Closes every registered in-flight connection. Callers store the stop
/// flag *before* this walk; a worker that registers a connection after
/// its slot was walked will observe the flag through the slot mutex's
/// ordering and bail out itself.
fn interrupt_all(slots: &ActiveSlots) {
    for slot in slots {
        if let Some(conn) = slot_guard(slot).as_ref() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// A running daemon: join handles, shared metrics, and the shutdown
/// trigger.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    active: Arc<ActiveSlots>,
    metrics: Arc<Metrics>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's live metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Whether a stop has been requested (by [`ServerHandle::shutdown`]
    /// or the wire `Shutdown` verb).
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Stops the daemon and joins every thread. Idempotent. Connections
    /// being served are closed; queued connections are dropped unserved.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.queue.close();
        interrupt_all(&self.active);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Blocks until every thread has exited (a client `Shutdown` verb,
    /// typically). Consumes the handle.
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts the daemon on `listener` over `store` and returns immediately.
pub fn serve(
    store: Arc<Store>,
    listener: TcpListener,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(ConnQueue::new(config.queue_cap));
    let metrics = Arc::new(Metrics::new());
    let active: Arc<ActiveSlots> =
        Arc::new((0..config.workers).map(|_| Mutex::new(None)).collect());

    let mut workers = Vec::with_capacity(config.workers);
    for i in 0..config.workers {
        let queue = Arc::clone(&queue);
        let store = Arc::clone(&store);
        let metrics = Arc::clone(&metrics);
        let stop = Arc::clone(&stop);
        let active = Arc::clone(&active);
        workers.push(
            std::thread::Builder::new()
                .name(format!("apec-serve-worker-{i}"))
                .spawn(move || {
                    let mut session = StoreSession::new();
                    while let Some(conn) = queue.pop() {
                        // Register the connection so shutdown can close
                        // it out from under a blocked read; the slot
                        // mutex also orders the stop-flag check below
                        // against a concurrent interrupt_all walk.
                        if let Some(slot) = active.get(i) {
                            *slot_guard(slot) = conn.try_clone().ok();
                        }
                        if stop.load(Ordering::Acquire) {
                            if let Some(slot) = active.get(i) {
                                *slot_guard(slot) = None;
                            }
                            continue; // drain the queue without serving
                        }
                        serve_connection(
                            &store, &mut session, &metrics, &stop, &active, addr, conn,
                        );
                        if let Some(slot) = active.get(i) {
                            *slot_guard(slot) = None;
                        }
                    }
                })?,
        );
    }

    let acceptor = {
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&stop);
        let metrics = Arc::clone(&metrics);
        std::thread::Builder::new()
            .name("apec-serve-acceptor".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    let _ = conn.set_nodelay(true);
                    if let Err(mut rejected) = queue.try_push(conn) {
                        // Shed load explicitly: tell the client, close.
                        metrics.count_rejected();
                        let _ = write_frame(
                            &mut rejected,
                            Status::Overloaded as u8,
                            b"server overloaded; retry later",
                        );
                    }
                }
                queue.close();
            })?
    };

    Ok(ServerHandle {
        addr,
        stop,
        queue,
        active,
        metrics,
        acceptor: Some(acceptor),
        workers,
    })
}

/// Serves one connection request-after-request until EOF, a protocol
/// error, or shutdown.
fn serve_connection(
    store: &Store,
    session: &mut StoreSession,
    metrics: &Metrics,
    stop: &AtomicBool,
    active: &ActiveSlots,
    addr: SocketAddr,
    mut conn: TcpStream,
) {
    loop {
        let body = match read_frame(&mut conn) {
            Ok(Some(body)) => body,
            Ok(None) => return,
            Err(_) => return,
        };
        metrics.count_request();
        let started = Instant::now();
        let (op, status, payload) = handle_request(store, session, metrics, &body);
        let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        match op {
            Some(Op::Put) => metrics.put.record(us),
            Some(Op::Get) => metrics.get.record(us),
            Some(Op::DegradedGet) => metrics.degraded_get.record(us),
            Some(Op::Stat) => metrics.stat.record(us),
            Some(_) | None => metrics.admin.record(us),
        }
        if status != Status::Ok {
            metrics.count_error();
        }
        if write_frame(&mut conn, status as u8, &payload).is_err() {
            return;
        }
        if op == Some(Op::Shutdown) {
            stop.store(true, Ordering::Release);
            // Close the other workers' in-flight connections (a blocked
            // read wakes as EOF), then wake the acceptor so it observes
            // the flag and closes the queue, releasing idle workers.
            interrupt_all(active);
            let _ = TcpStream::connect(addr);
            return;
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Decodes and executes one request body; returns the opcode (when it
/// parsed), the response status and the response payload. Never panics:
/// garbage in means `ErrProto` out.
fn handle_request(
    store: &Store,
    session: &mut StoreSession,
    metrics: &Metrics,
    body: &[u8],
) -> (Option<Op>, Status, Vec<u8>) {
    let Some((&op_byte, payload)) = body.split_first() else {
        return (None, Status::ErrProto, b"empty request body".to_vec());
    };
    let Some(op) = Op::from_byte(op_byte) else {
        return (
            None,
            Status::ErrProto,
            format!("unknown opcode {op_byte}").into_bytes(),
        );
    };
    let mut r = Reader::new(payload);
    let result: Result<Vec<u8>, RequestError> = match op {
        Op::Put => (|| {
            let id = r.str16()?.to_string();
            let important = r.buf32()?.to_vec();
            let unimportant = r.buf32()?.to_vec();
            r.finish()?;
            let meta = store.put_object(session, &id, &important, &unimportant)?;
            Ok(meta_json(&meta).into_bytes())
        })(),
        Op::Get => (|| {
            let id = r.str16()?.to_string();
            r.finish()?;
            serve_get(store, session, metrics, &id)
        })(),
        Op::DegradedGet => (|| {
            let id = r.str16()?.to_string();
            let mask = r.nodes16()?;
            r.finish()?;
            serve_degraded_get(store, session, metrics, &id, &mask)
        })(),
        Op::Stat => (|| {
            let id = r.str16()?.to_string();
            r.finish()?;
            let meta = store.stat(&id)?;
            Ok(meta_json(&meta).into_bytes())
        })(),
        Op::Metrics => Ok(metrics.snapshot_json().into_bytes()),
        Op::Kill => (|| {
            let node = r.u16()? as usize;
            r.finish()?;
            store.kill_node(node)?;
            Ok(obj(vec![("killed", Value::Num(node as u64))])
                .to_string()
                .into_bytes())
        })(),
        Op::Repair => (|| {
            r.finish()?;
            let summary = store.repair_all()?;
            Ok(obj(vec![
                ("shards_rebuilt", Value::Num(summary.shards_rebuilt as u64)),
                ("bytes_lost", Value::Num(summary.bytes_lost as u64)),
                ("important_intact", Value::Bool(summary.important_intact)),
                (
                    "integrity_failures",
                    Value::Num(summary.integrity_failures as u64),
                ),
            ])
            .to_string()
            .into_bytes())
        })(),
        Op::Shutdown => Ok(b"bye".to_vec()),
    };
    match result {
        Ok(payload) => (Some(op), Status::Ok, payload),
        Err(e) => {
            let (status, msg) = e.into_wire();
            (Some(op), status, msg.into_bytes())
        }
    }
}

/// Serves a get: full read with integrity verification, recording the
/// outcome in the metrics.
fn serve_get(
    store: &Store,
    session: &mut StoreSession,
    metrics: &Metrics,
    id: &str,
) -> Result<Vec<u8>, RequestError> {
    serve_degraded_get(store, session, metrics, id, &[])
}

/// Serves a degraded get: `mask` nodes are treated as dead for this
/// read only (stored files untouched), exercising reconstruction on a
/// healthy cluster.
fn serve_degraded_get(
    store: &Store,
    session: &mut StoreSession,
    metrics: &Metrics,
    id: &str,
    mask: &[usize],
) -> Result<Vec<u8>, RequestError> {
    let out = store.read_object(session, id, mask)?;
    metrics.count_read(out.degraded, out.approximate, out.integrity_failures as u64);
    let mut flags = 0u8;
    if out.degraded {
        flags |= FLAG_DEGRADED;
    }
    if out.approximate {
        flags |= FLAG_APPROXIMATE;
    }
    let mut w = Writer::new();
    w.u8(flags)
        .u32(out.integrity_failures.min(u32::MAX as usize) as u32)
        .buf32(&out.important)
        .buf32(&out.unimportant);
    Ok(w.into_bytes())
}

fn meta_json(meta: &apec_store::ObjectMeta) -> String {
    obj(vec![
        ("id", Value::Str(meta.id.clone())),
        ("stripes", Value::Num(meta.stripes as u64)),
        ("important_len", Value::Num(meta.important_len as u64)),
        ("unimportant_len", Value::Num(meta.unimportant_len as u64)),
        ("approximated", Value::Bool(meta.approximated)),
    ])
    .to_string()
}

/// Internal error type letting handlers use `?` over both store errors
/// and protocol-decode strings.
enum RequestError {
    Store(StoreError),
    Proto(String),
}

impl RequestError {
    fn into_wire(self) -> (Status, String) {
        match self {
            RequestError::Store(StoreError::User(m)) => (Status::ErrUser, m),
            RequestError::Store(StoreError::Corrupt(m)) => (Status::ErrCorrupt, m),
            RequestError::Store(StoreError::Io(e)) => (Status::ErrIo, e.to_string()),
            RequestError::Proto(m) => (Status::ErrProto, m),
        }
    }
}

impl From<StoreError> for RequestError {
    fn from(e: StoreError) -> Self {
        RequestError::Store(e)
    }
}

impl From<String> for RequestError {
    fn from(m: String) -> Self {
        RequestError::Proto(m)
    }
}
