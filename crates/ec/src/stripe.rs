//! Splitting byte objects into per-node shards and back.
//!
//! Objects rarely divide evenly into `k × alignment`, so the splitter pads
//! with zeros and the joiner needs the original length back. These helpers
//! are used by the framework codes, the cluster simulator and the examples.

/// Splits `data` into `k` equal-length shards, each a multiple of
/// `alignment` bytes, zero-padding the tail.
///
/// Returns the shards; the caller must remember `data.len()` to invert the
/// operation with [`join_shards`].
///
/// # Panics
/// Panics if `k == 0` or `alignment == 0`.
pub fn split_into_shards(data: &[u8], k: usize, alignment: usize) -> Vec<Vec<u8>> {
    assert!(k > 0, "cannot split into zero shards");
    assert!(alignment > 0, "alignment must be positive");
    let per_shard = min_shard_len(data.len(), k, alignment);
    let mut shards = Vec::with_capacity(k);
    for i in 0..k {
        let start = (i * per_shard).min(data.len());
        let end = ((i + 1) * per_shard).min(data.len());
        let mut shard = Vec::with_capacity(per_shard);
        shard.extend_from_slice(&data[start..end]);
        shard.resize(per_shard, 0);
        shards.push(shard);
    }
    shards
}

/// The smallest `alignment`-multiple shard length whose `k` shards hold
/// `len` bytes: `ceil(len / (k·alignment)) · alignment`, with one aligned
/// unit for the empty object so a stripe always exists.
///
/// Stated as a single ceiling over the full stripe unit `k·alignment`
/// rather than the historical nested `ceil(ceil(len/k)/alignment)` form —
/// the two are equal for every positive `len` (nested ceilings collapse:
/// `⌈⌈x/a⌉/b⌉ = ⌈x/(ab)⌉`), but the direct form makes the minimality
/// obvious and is what the regression tests below pin.
pub fn min_shard_len(len: usize, k: usize, alignment: usize) -> usize {
    assert!(k > 0, "cannot split into zero shards");
    assert!(alignment > 0, "alignment must be positive");
    len.div_ceil(k * alignment).max(1) * alignment
}

/// Reassembles the original object from data shards produced by
/// [`split_into_shards`].
///
/// # Panics
/// Panics if the shards cannot possibly contain `original_len` bytes.
pub fn join_shards(shards: &[Vec<u8>], original_len: usize) -> Vec<u8> {
    let capacity: usize = shards.iter().map(|s| s.len()).sum();
    assert!(
        capacity >= original_len,
        "shards hold {capacity} bytes but {original_len} were requested"
    );
    let mut out = Vec::with_capacity(original_len);
    for shard in shards {
        if out.len() >= original_len {
            break;
        }
        let take = (original_len - out.len()).min(shard.len());
        // panic-ok: take is clamped to shard.len() on the line above
        out.extend_from_slice(&shard[..take]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_fit() {
        let data: Vec<u8> = (0..24).collect();
        let shards = split_into_shards(&data, 4, 2);
        assert!(shards.iter().all(|s| s.len() == 6));
        assert_eq!(join_shards(&shards, data.len()), data);
    }

    #[test]
    fn round_trip_with_padding() {
        let data: Vec<u8> = (0..10).collect();
        let shards = split_into_shards(&data, 3, 4);
        // ceil(10/3)=4, ceil(4/4)*4=4 per shard.
        assert!(shards.iter().all(|s| s.len() == 4));
        assert_eq!(join_shards(&shards, data.len()), data);
    }

    #[test]
    fn empty_object_still_produces_aligned_shards() {
        let shards = split_into_shards(&[], 3, 8);
        assert_eq!(shards.len(), 3);
        assert!(shards.iter().all(|s| s.len() == 8 && s.iter().all(|&b| b == 0)));
        assert_eq!(join_shards(&shards, 0), Vec::<u8>::new());
    }

    #[test]
    fn tail_padding_is_minimal_at_stripe_boundaries() {
        // Objects just under, at, and just over k × alignment must get the
        // smallest aligned shard that fits — no over-padding at the
        // boundary (regression pin for the shard-length formula).
        let (k, a) = (4, 8);
        for (len, want) in [
            (k * a - 1, a),     // one byte short of a full stripe: still 1 unit
            (k * a, a),         // exact fit
            (k * a + 1, 2 * a), // one byte over: grows by exactly one unit
            (2 * k * a - 1, 2 * a),
            (1, a),
        ] {
            let shards = split_into_shards(&vec![7u8; len], k, a);
            assert!(
                shards.iter().all(|s| s.len() == want),
                "len={len}: got {} want {want}",
                shards[0].len()
            );
            assert_eq!(min_shard_len(len, k, a), want);
        }
        assert_eq!(min_shard_len(0, k, a), a, "empty object keeps one unit");
    }

    #[test]
    fn single_shard() {
        let data = vec![7u8; 5];
        let shards = split_into_shards(&data, 1, 1);
        assert_eq!(shards.len(), 1);
        assert_eq!(join_shards(&shards, 5), data);
    }

    #[test]
    #[should_panic(expected = "cannot split into zero shards")]
    fn zero_k_panics() {
        split_into_shards(&[1], 0, 1);
    }

    #[test]
    #[should_panic(expected = "shards hold")]
    fn join_too_short_panics() {
        join_shards(&[vec![0u8; 2]], 10);
    }

    // Skipped under Miri: the proptest runner is far too slow there and the
    // unit tests above already exercise the same paths.
    #[cfg(not(miri))]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        #[test]
        fn split_join_round_trips(
            data in proptest::collection::vec(any::<u8>(), 0..500),
            k in 1usize..12,
            alignment in 1usize..17,
        ) {
            let shards = split_into_shards(&data, k, alignment);
            prop_assert_eq!(shards.len(), k);
            let len0 = shards[0].len();
            for s in &shards {
                prop_assert_eq!(s.len(), len0);
                prop_assert_eq!(s.len() % alignment, 0);
            }
            prop_assert!(len0 * k >= data.len());
            // Minimality: one aligned unit less would not hold the object
            // (except the floor of one unit kept for empty objects).
            prop_assert!(
                len0 == alignment || (len0 - alignment) * k < data.len(),
                "per-shard {} over-pads {} bytes into {} × {}-aligned shards",
                len0, data.len(), k, alignment
            );
            prop_assert_eq!(join_shards(&shards, data.len()), data);
        }
        }
    }
}
