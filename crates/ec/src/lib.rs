//! Core erasure-coding abstractions shared by every codec in the workspace.
//!
//! * [`ErasureCode`] — the object-safe trait all codes implement (RS,
//!   Cauchy-RS, LRC, EVENODD, RDP, STAR, TIP and the Approximate codes).
//! * [`plan`] — the repair-plan IR: planning and executing repairs as
//!   explicit, inspectable schedules with pooled scratch buffers and
//!   partial (degraded-read) decode.
//! * [`session`] — reusable [`EncodeSession`]/[`DecodeSession`] contexts
//!   that keep parity arenas, striping scratch and repair plans warm
//!   across stripes, plus the zero-copy streaming object encoder.
//! * [`stripe`] — splitting byte objects into aligned per-node shards and
//!   back.
//! * [`parallel`] — a crossbeam-based segmented pipeline that encodes or
//!   repairs large stripes on multiple threads; every code here operates
//!   element-wise, so a stripe can be cut into independent segments.
//! * [`iostats`] — I/O accounting used to reproduce the paper's single-write
//!   and recovery-cost experiments.
//! * [`rng`] — centralised deterministic seed plumbing: every stochastic
//!   component forks its generator from one seed, so runs reproduce
//!   bit-for-bit (entropy-based constructors are banned by `xtask lint`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod iostats;
pub mod parallel;
pub mod plan;
pub mod rng;
pub mod session;
pub mod stripe;
pub mod sync_assert;
mod traits;

pub use error::EcError;
pub use plan::{PlanRead, PlanStep, RepairPlan, RepairScratch};
pub use session::{DecodeSession, EncodeSession};
pub use traits::{BoxedCode, ErasureCode, UpdatePattern};

/// Other crates' placeholder modules get filled in as the build proceeds.
#[doc(hidden)]
pub mod prelude {
    pub use crate::iostats::IoStats;
    pub use crate::stripe::{join_shards, split_into_shards};
    pub use crate::{DecodeSession, EcError, EncodeSession, ErasureCode};
}
