//! Core erasure-coding abstractions shared by every codec in the workspace.
//!
//! * [`ErasureCode`] — the object-safe trait all codes implement (RS,
//!   Cauchy-RS, LRC, EVENODD, RDP, STAR, TIP and the Approximate codes).
//! * [`stripe`] — splitting byte objects into aligned per-node shards and
//!   back.
//! * [`parallel`] — a crossbeam-based segmented pipeline that encodes or
//!   repairs large stripes on multiple threads; every code here operates
//!   element-wise, so a stripe can be cut into independent segments.
//! * [`iostats`] — I/O accounting used to reproduce the paper's single-write
//!   and recovery-cost experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod iostats;
pub mod parallel;
pub mod stripe;
mod traits;

pub use error::EcError;
pub use traits::{BoxedCode, ErasureCode, UpdatePattern};

/// Other crates' placeholder modules get filled in as the build proceeds.
#[doc(hidden)]
pub mod prelude {
    pub use crate::iostats::IoStats;
    pub use crate::stripe::{join_shards, split_into_shards};
    pub use crate::{EcError, ErasureCode};
}
