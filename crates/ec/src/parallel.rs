//! Segmented multi-threaded encode/reconstruct.
//!
//! Every code in this workspace is *offset-local*: byte `o` of every
//! element row interacts only with byte `o` of other element rows (XOR
//! chains and GF multiply-accumulate both work bytewise). A stripe can
//! therefore be cut along the byte-offset axis into independent segments
//! and processed by a pool of crossbeam scoped threads.
//!
//! The subtlety is array codes (`shard_alignment() > 1`): a shard is
//! `rows` concatenated element blocks, and parity equations couple
//! *different rows* at the *same offset*. Slicing a shard into contiguous
//! byte ranges would remap bytes into different rows and silently encode
//! a different stripe (the cross-code integration suite caught exactly
//! that). Instead, a segment takes byte columns `[a, b)` of *every* row —
//! a gather before and a scatter after — which restricts every equation
//! to those offsets and is exactly equivalent to the serial computation.
//!
//! Workers pull segment indices from a shared atomic counter, so long
//! stripes load-balance even when segment costs vary.
//!
//! # Memory ordering of the segment counter
//!
//! The claim counter uses `fetch_add(1, Ordering::Relaxed)`, and Relaxed
//! is sufficient — this is the one place the workspace lint permits it.
//! The argument has two halves:
//!
//! * **Uniqueness** comes from *atomicity*, not ordering: every atomic
//!   read-modify-write observes the latest value in the counter's single
//!   modification order (C++11 [atomics.order] ¶10, the RMW rule), so no
//!   two `fetch_add(1)` calls can return the same index regardless of how
//!   weakly they are ordered against other memory. Each segment index is
//!   therefore claimed by exactly one worker, and every index below the
//!   final counter value is claimed by someone — no segment is processed
//!   twice or skipped. `parallel::claim_model` checks exactly this
//!   protocol under loom (`RUSTFLAGS="--cfg loom"`), and as a std-thread
//!   stress test in normal runs.
//! * **Publication** of the computed segments does not travel through the
//!   counter at all. A worker writes its result into `results[i]` under a
//!   `parking_lot::Mutex` (Release on unlock), and the collecting loop
//!   runs strictly after `crossbeam::thread::scope` returns, which joins
//!   every worker and so establishes a happens-before edge from each
//!   worker's entire execution to the collector. Either edge alone is
//!   enough; the counter never needs Acquire/Release.
//!
//! The `const _` items below are the lint-mandated compile-time witnesses
//! that everything captured by the worker closures is `Send + Sync`.

use crate::session::{EncodeSession, MAX_STACK_NODES};
use crate::sync_assert::assert_send_sync;
use crate::{EcError, ErasureCode};
use std::sync::atomic::{AtomicUsize, Ordering};

#[cfg(any(test, loom))]
pub mod claim_model;

// Everything the scoped workers share: the claim counter, the per-segment
// output cells (encode: pre-split chunks of the final parity buffers;
// reconstruct: per-segment result slots), the first-error slot, the shard
// views, and the code itself (`ErasureCode` has `Send + Sync` supertraits,
// witnessed via a concrete impl's reference).
const _: () = assert_send_sync::<AtomicUsize>();
const _: () = assert_send_sync::<Vec<parking_lot::Mutex<Vec<&mut [u8]>>>>();
const _: () = assert_send_sync::<parking_lot::Mutex<Option<EcError>>>();
const _: () =
    assert_send_sync::<Vec<parking_lot::Mutex<Option<Result<Vec<(usize, Vec<u8>)>, EcError>>>>>();
const _: () = assert_send_sync::<&[Option<Vec<u8>>]>();
const _: () = assert_send_sync::<&[&[u8]]>();
const _: () = assert_send_sync::<&dyn ErasureCode>();

/// Byte-offset ranges `[a, b)` within an element row.
fn offset_ranges(row_len: usize, segment_bytes: usize, rows: usize) -> Vec<(usize, usize)> {
    if row_len == 0 {
        return vec![];
    }
    // `segment_bytes` is the caller's budget for a whole-shard segment;
    // divide by the row count to get the per-row slice width.
    let per_row = (segment_bytes / rows.max(1)).max(1);
    let mut out = Vec::with_capacity(row_len.div_ceil(per_row));
    let mut start = 0;
    while start < row_len {
        let end = (start + per_row).min(row_len);
        out.push((start, end));
        start = end;
    }
    out
}

/// Gathers byte columns `[a, b)` of every element row of `shard` into a
/// reusable buffer, so workers pay one allocation per shard per *worker*
/// instead of one per shard per *segment*.
fn gather_into(shard: &[u8], rows: usize, row_len: usize, a: usize, b: usize, out: &mut Vec<u8>) {
    out.clear();
    out.reserve(rows * (b - a));
    for r in 0..rows {
        // panic-ok: a <= b <= row_len (offset_ranges) and rows * row_len == shard.len() (check_data_shards/check_stripe)
        out.extend_from_slice(&shard[r * row_len + a..r * row_len + b]);
    }
}

/// Inverse of [`gather`]: writes a segment back into `shard`.
fn scatter(segment: &[u8], shard: &mut [u8], rows: usize, row_len: usize, a: usize, b: usize) {
    let w = b - a;
    for r in 0..rows {
        // panic-ok: same bounds as gather_into; segment is rows * w bytes by construction
        shard[r * row_len + a..r * row_len + b].copy_from_slice(&segment[r * w..(r + 1) * w]);
    }
}

/// Encodes a stripe on up to `threads` worker threads by splitting it into
/// segments of roughly `segment_bytes`.
///
/// Produces exactly the same parity bytes as [`ErasureCode::encode`]; the
/// equivalence is part of the test suite and an ablation benchmark.
pub fn encode_segmented(
    code: &dyn ErasureCode,
    data: &[&[u8]],
    segment_bytes: usize,
    threads: usize,
) -> Result<Vec<Vec<u8>>, EcError> {
    let shard_len = code.check_data_shards(data)?;
    let rows = code.shard_alignment().max(1);
    let row_len = shard_len / rows;
    let ranges = offset_ranges(row_len, segment_bytes, rows);
    if ranges.len() <= 1 || threads <= 1 {
        return code.encode(data);
    }

    let next = AtomicUsize::new(0);
    let n_workers = threads.min(ranges.len());

    // Pre-split the final parity buffers into disjoint per-segment
    // chunk sets (`r_parity × rows` chunks each), so workers write their
    // results straight into place: no per-claim result `Vec`, and the
    // collector loop disappears entirely.
    let mut parity = vec![vec![0u8; shard_len]; code.parity_nodes()];
    let mut chunk_sets: Vec<Vec<&mut [u8]>> = (0..ranges.len())
        .map(|_| Vec::with_capacity(parity.len() * rows))
        .collect();
    for shard in parity.iter_mut() {
        for row_slice in shard.chunks_mut(row_len.max(1)) {
            let mut rest = row_slice;
            for (i, &(a, b)) in ranges.iter().enumerate() {
                let (chunk, tail) = rest.split_at_mut(b - a);
                chunk_sets[i].push(chunk);
                rest = tail;
            }
        }
    }
    let cells: Vec<parking_lot::Mutex<Vec<&mut [u8]>>> =
        chunk_sets.into_iter().map(parking_lot::Mutex::new).collect();
    let error: parking_lot::Mutex<Option<EcError>> = parking_lot::Mutex::new(None);

    crossbeam::thread::scope(|s| {
        for _ in 0..n_workers {
            s.spawn(|_| {
                // Per-worker warm state, reused across every segment this
                // worker claims: the encode session's parity arena and one
                // gather buffer per data shard. The borrowed-slice views
                // are rebuilt each claim from a stack array (a loop-carried
                // `Vec<&[u8]>` cannot be refilled across iterations while
                // the gather buffers mutate), which costs no heap.
                let mut session = EncodeSession::new();
                let mut seg_data: Vec<Vec<u8>> = data.iter().map(|_| Vec::new()).collect();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= ranges.len() {
                        break;
                    }
                    let (a, b) = ranges[i];
                    for (buf, d) in seg_data.iter_mut().zip(data) {
                        gather_into(d, rows, row_len, a, b, buf);
                    }
                    let encoded = if seg_data.len() <= MAX_STACK_NODES {
                        let mut refs: [&[u8]; MAX_STACK_NODES] = [&[]; MAX_STACK_NODES];
                        for (r, d) in refs.iter_mut().zip(&seg_data) {
                            *r = d.as_slice();
                        }
                        session.encode(code, &refs[..seg_data.len()])
                    } else {
                        let refs: Vec<&[u8]> = seg_data.iter().map(|d| d.as_slice()).collect();
                        session.encode(code, &refs)
                    };
                    match encoded {
                        Ok(seg_parity) => {
                            let w = b - a;
                            let mut targets = cells[i].lock();
                            for (p, seg_shard) in seg_parity.iter().enumerate() {
                                for r in 0..rows {
                                    // Chunk (p*rows + r) is w bytes by the pre-split above.
                                    targets[p * rows + r]
                                        .copy_from_slice(&seg_shard[r * w..(r + 1) * w]);
                                }
                            }
                        }
                        Err(e) => {
                            error.lock().get_or_insert(e);
                            break;
                        }
                    }
                }
            });
        }
    })
    .map_err(|_| EcError::Internal("worker thread panicked during segmented encode".into()))?;

    drop(cells);
    if let Some(e) = error.lock().take() {
        return Err(e);
    }
    Ok(parity)
}

/// Reconstructs a stripe on up to `threads` worker threads.
///
/// Byte-identical to [`ErasureCode::reconstruct`] on success; errors are
/// the same as the serial path reports for the first failing segment.
pub fn reconstruct_segmented(
    code: &dyn ErasureCode,
    shards: &mut [Option<Vec<u8>>],
    segment_bytes: usize,
    threads: usize,
) -> Result<(), EcError> {
    let (shard_len, missing) = code.check_stripe(shards)?;
    if missing.is_empty() {
        return Ok(());
    }
    let rows = code.shard_alignment().max(1);
    let row_len = shard_len / rows;
    let ranges = offset_ranges(row_len, segment_bytes, rows);
    if ranges.len() <= 1 || threads <= 1 {
        return code.reconstruct(shards);
    }

    let next = AtomicUsize::new(0);
    let n_workers = threads.min(ranges.len());
    type SegResult = Result<Vec<(usize, Vec<u8>)>, EcError>;
    let results: Vec<parking_lot::Mutex<Option<SegResult>>> =
        (0..ranges.len()).map(|_| parking_lot::Mutex::new(None)).collect();
    let shards_ref: &[Option<Vec<u8>>] = shards;

    crossbeam::thread::scope(|s| {
        for _ in 0..n_workers {
            s.spawn(|_| {
                // Buffer pool reused across this worker's segments. The
                // recovered segments are moved out through `results`, but
                // the (majority) survivor gather buffers come back.
                let mut pool: Vec<Vec<u8>> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= ranges.len() {
                        break;
                    }
                    let (a, b) = ranges[i];
                    let mut seg: Vec<Option<Vec<u8>>> = shards_ref
                        .iter()
                        .map(|sh| {
                            sh.as_ref().map(|v| {
                                let mut buf = pool.pop().unwrap_or_default();
                                gather_into(v, rows, row_len, a, b, &mut buf);
                                buf
                            })
                        })
                        .collect();
                    let res = code.reconstruct(&mut seg).and_then(|()| {
                        missing
                            .iter()
                            .map(|&m| {
                                seg.get_mut(m)
                                    .and_then(Option::take)
                                    .map(|bytes| (m, bytes))
                                    .ok_or_else(|| {
                                        EcError::Internal(format!(
                                            "segment reconstruct left shard {m} unfilled"
                                        ))
                                    })
                            })
                            .collect::<Result<Vec<_>, _>>()
                    });
                    pool.extend(seg.into_iter().flatten());
                    *results[i].lock() = Some(res);
                }
            });
        }
    })
    .map_err(|_| EcError::Internal("worker thread panicked during segmented reconstruct".into()))?;

    // Pre-size the recovered shards, then scatter each segment into place.
    for &m in &missing {
        // panic-ok: check_stripe proved every missing index is within the stripe
        shards[m] = Some(vec![0u8; shard_len]);
    }
    for (cell, &(a, b)) in results.iter().zip(&ranges) {
        let seg = cell.lock().take().ok_or_else(|| {
            // Unreachable by the claim protocol (see module docs and
            // `claim_model`); degrade to a typed error regardless.
            EcError::Internal("segment never claimed by any reconstruct worker".into())
        })?;
        match seg {
            Ok(parts) => {
                for (m, bytes) in parts {
                    let dst = shards
                        .get_mut(m)
                        .and_then(Option::as_mut)
                        .ok_or_else(|| {
                            EcError::Internal(format!("recovered shard {m} not pre-sized"))
                        })?;
                    scatter(&bytes, dst, rows, row_len, a, b);
                }
            }
            Err(e) => {
                // Restore the erased state before reporting: the serial
                // contract is "unmodified on failure".
                for &m in &missing {
                    // panic-ok: same bound as the pre-size loop above
                    shards[m] = None;
                }
                return Err(e);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    /// 2-data + 1-parity code whose parity couples *different rows* (like
    /// a diagonal): p[row 0] = d0[row 0] ^ d1[row 1], p[row 1] =
    /// d0[row 1] ^ d1[row 0]. Catches any segmentation that remaps rows.
    struct CrossRowParity;

    impl CrossRowParity {
        const ROWS: usize = 2;
    }

    impl ErasureCode for CrossRowParity {
        fn name(&self) -> String {
            "CROSS-ROW(2,1)".into()
        }
        fn data_nodes(&self) -> usize {
            2
        }
        fn parity_nodes(&self) -> usize {
            1
        }
        fn fault_tolerance(&self) -> usize {
            1
        }
        fn shard_alignment(&self) -> usize {
            Self::ROWS
        }
        fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
            let len = self.check_data_shards(data)?;
            let e = len / 2;
            let mut p = vec![0u8; len];
            for o in 0..e {
                p[o] = data[0][o] ^ data[1][e + o];
                p[e + o] = data[0][e + o] ^ data[1][o];
            }
            Ok(vec![p])
        }
        fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
            let (len, missing) = self.check_stripe(shards)?;
            if missing.len() > 1 {
                return Err(EcError::TooManyErasures {
                    missing,
                    tolerance: 1,
                });
            }
            let Some(&m) = missing.first() else {
                return Ok(());
            };
            let e = len / 2;
            let get = |i: usize| shards[i].as_ref().unwrap();
            let mut out = vec![0u8; len];
            match m {
                0 => {
                    for o in 0..e {
                        out[o] = get(2)[o] ^ get(1)[e + o];
                        out[e + o] = get(2)[e + o] ^ get(1)[o];
                    }
                }
                1 => {
                    for o in 0..e {
                        out[e + o] = get(2)[o] ^ get(0)[o];
                        out[o] = get(2)[e + o] ^ get(0)[e + o];
                    }
                }
                2 => {
                    for o in 0..e {
                        out[o] = get(0)[o] ^ get(1)[e + o];
                        out[e + o] = get(0)[e + o] ^ get(1)[o];
                    }
                }
                _ => unreachable!(),
            }
            shards[m] = Some(out);
            Ok(())
        }
    }

    fn random_shards(n: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut v = vec![0u8; len];
                rng.fill(v.as_mut_slice());
                v
            })
            .collect()
    }

    #[test]
    fn offset_ranges_cover_exactly() {
        let r = offset_ranges(100, 24, 2);
        assert_eq!(r.first().unwrap().0, 0);
        assert_eq!(r.last().unwrap().1, 100);
        for w in r.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        assert!(offset_ranges(0, 8, 2).is_empty());
    }

    #[test]
    fn gather_scatter_round_trip() {
        let shard: Vec<u8> = (0..24).collect();
        // Pre-dirty the buffer: gather_into must fully overwrite it.
        let mut g = vec![0xEEu8; 64];
        gather_into(&shard, 3, 8, 2, 5, &mut g);
        assert_eq!(g, vec![2, 3, 4, 10, 11, 12, 18, 19, 20]);
        let mut back = vec![0u8; 24];
        scatter(&g, &mut back, 3, 8, 2, 5);
        for r in 0..3 {
            assert_eq!(&back[r * 8 + 2..r * 8 + 5], &shard[r * 8 + 2..r * 8 + 5]);
        }
    }

    #[test]
    fn cross_row_parallel_encode_matches_serial() {
        let code = CrossRowParity;
        let data = random_shards(2, 4096, 9);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = code.encode(&refs).unwrap();
        for threads in [2, 4, 8] {
            for seg in [16, 100, 1000] {
                let par = encode_segmented(&code, &refs, seg, threads).unwrap();
                assert_eq!(par, serial, "threads={threads} seg={seg}");
            }
        }
    }

    #[test]
    fn cross_row_parallel_reconstruct_matches_serial() {
        let code = CrossRowParity;
        let data = random_shards(2, 2048, 10);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let full: Vec<Option<Vec<u8>>> = data.iter().cloned().chain(parity).map(Some).collect();
        for victim in 0..3 {
            let mut stripe = full.clone();
            stripe[victim] = None;
            reconstruct_segmented(&code, &mut stripe, 128, 4).unwrap();
            assert_eq!(
                stripe,
                full,
                "victim {victim}"
            );
        }
    }

    #[test]
    fn parallel_reconstruct_propagates_errors_and_restores() {
        let code = CrossRowParity;
        let data = random_shards(2, 1024, 11);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut stripe: Vec<Option<Vec<u8>>> = vec![None, None, Some(parity[0].clone())];
        let err = reconstruct_segmented(&code, &mut stripe, 64, 4).unwrap_err();
        assert!(matches!(err, EcError::TooManyErasures { .. }));
        assert!(stripe[0].is_none() && stripe[1].is_none());
    }

    #[test]
    fn no_missing_is_a_noop() {
        let code = CrossRowParity;
        let data = random_shards(2, 256, 12);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut stripe: Vec<Option<Vec<u8>>> =
            data.iter().cloned().chain(parity).map(Some).collect();
        let before = stripe.clone();
        reconstruct_segmented(&code, &mut stripe, 64, 4).unwrap();
        assert_eq!(stripe, before);
    }

    #[test]
    fn single_thread_or_tiny_stripe_falls_back_to_serial() {
        let code = CrossRowParity;
        let data = random_shards(2, 64, 13);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = code.encode(&refs).unwrap();
        assert_eq!(encode_segmented(&code, &refs, 1 << 20, 8).unwrap(), serial);
        assert_eq!(encode_segmented(&code, &refs, 16, 1).unwrap(), serial);
    }
}
