//! Per-node I/O accounting.
//!
//! The paper's single-write (Fig. 9) and recovery (Fig. 14) experiments are
//! about *how many* I/Os a code induces, independent of wall time. This
//! module counts them. Counters are thread-safe so the parallel pipeline
//! and the cluster simulator can share one instance.

use parking_lot::Mutex;

/// I/O totals for one storage node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeIo {
    /// Number of read operations.
    pub read_ops: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Number of write operations.
    pub write_ops: u64,
    /// Bytes written.
    pub write_bytes: u64,
}

/// Thread-safe I/O counters for a set of nodes.
#[derive(Debug)]
pub struct IoStats {
    nodes: Mutex<Vec<NodeIo>>,
}

impl IoStats {
    /// Creates counters for `n` nodes, all zero.
    pub fn new(n: usize) -> Self {
        IoStats {
            nodes: Mutex::new(vec![NodeIo::default(); n]),
        }
    }

    /// Number of tracked nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.lock().len()
    }

    /// Records a read of `bytes` from `node`.
    ///
    /// Counters saturate instead of wrapping: a pinned counter is visibly
    /// wrong in a report, a wrapped one silently corrupts the paper's
    /// cost accounting (and consumers like `tier::io_delta` treat
    /// `u64::MAX` as "saturated" rather than computing a bogus delta).
    pub fn record_read(&self, node: usize, bytes: u64) {
        let mut nodes = self.nodes.lock();
        let io = &mut nodes[node];
        io.read_ops = io.read_ops.saturating_add(1);
        io.read_bytes = io.read_bytes.saturating_add(bytes);
    }

    /// Records a write of `bytes` to `node`.
    pub fn record_write(&self, node: usize, bytes: u64) {
        let mut nodes = self.nodes.lock();
        let io = &mut nodes[node];
        io.write_ops = io.write_ops.saturating_add(1);
        io.write_bytes = io.write_bytes.saturating_add(bytes);
    }

    /// Snapshot of one node's counters.
    pub fn node(&self, node: usize) -> NodeIo {
        self.nodes.lock()[node]
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> Vec<NodeIo> {
        self.nodes.lock().clone()
    }

    /// Sum across nodes.
    pub fn totals(&self) -> NodeIo {
        let nodes = self.nodes.lock();
        let mut t = NodeIo::default();
        for n in nodes.iter() {
            t.read_ops = t.read_ops.saturating_add(n.read_ops);
            t.read_bytes = t.read_bytes.saturating_add(n.read_bytes);
            t.write_ops = t.write_ops.saturating_add(n.write_ops);
            t.write_bytes = t.write_bytes.saturating_add(n.write_bytes);
        }
        t
    }

    /// Total operations (reads + writes) — the paper's "number of I/Os".
    pub fn total_ops(&self) -> u64 {
        let t = self.totals();
        t.read_ops.saturating_add(t.write_ops)
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        let mut nodes = self.nodes.lock();
        for n in nodes.iter_mut() {
            *n = NodeIo::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn record_and_total() {
        let stats = IoStats::new(3);
        stats.record_read(0, 100);
        stats.record_read(0, 50);
        stats.record_write(2, 10);
        assert_eq!(stats.node(0).read_ops, 2);
        assert_eq!(stats.node(0).read_bytes, 150);
        assert_eq!(stats.node(1), NodeIo::default());
        assert_eq!(stats.node(2).write_bytes, 10);
        let t = stats.totals();
        assert_eq!(t.read_ops, 2);
        assert_eq!(t.write_ops, 1);
        assert_eq!(stats.total_ops(), 3);
    }

    #[test]
    fn reset_clears() {
        let stats = IoStats::new(2);
        stats.record_write(1, 5);
        stats.reset();
        assert_eq!(stats.totals(), NodeIo::default());
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let stats = Arc::new(IoStats::new(4));
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&stats);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_read(t, 1);
                    s.record_write((t + 1) % 4, 2);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let t = stats.totals();
        assert_eq!(t.read_ops, 4000);
        assert_eq!(t.read_bytes, 4000);
        assert_eq!(t.write_ops, 4000);
        assert_eq!(t.write_bytes, 8000);
    }
}
