//! The shared error type for all erasure codecs.

use std::fmt;

/// Errors surfaced by encoding/reconstruction across all codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcError {
    /// The caller passed a different number of shards than the code's
    /// geometry requires.
    WrongShardCount {
        /// Shards expected by the code.
        expected: usize,
        /// Shards actually provided.
        got: usize,
    },
    /// Shards must all have the same length.
    ShardSizeMismatch {
        /// Length of the first shard.
        first: usize,
        /// Index of the offending shard.
        index: usize,
        /// Its length.
        got: usize,
    },
    /// Array codes require the shard length to be a multiple of the number
    /// of element rows per column.
    MisalignedShard {
        /// The required alignment in bytes.
        alignment: usize,
        /// The shard length provided.
        got: usize,
    },
    /// More shards are missing than the code can tolerate, or the specific
    /// pattern is outside the code's repair capability.
    TooManyErasures {
        /// Indices of the missing shards.
        missing: Vec<usize>,
        /// The code's declared fault tolerance.
        tolerance: usize,
    },
    /// The erasure pattern is within the nominal count but structurally
    /// unrecoverable for this (non-MDS) code.
    UnrecoverablePattern {
        /// Indices of the missing shards.
        missing: Vec<usize>,
        /// Explanation of what could not be rebuilt.
        detail: String,
    },
    /// A parameter combination the code does not support.
    InvalidParameters(String),
    /// An internal linear-algebra failure that indicates a bug or a
    /// non-MDS pattern slipping through.
    Internal(String),
}

impl fmt::Display for EcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcError::WrongShardCount { expected, got } => {
                write!(f, "expected {expected} shards, got {got}")
            }
            EcError::ShardSizeMismatch { first, index, got } => write!(
                f,
                "shard {index} has {got} bytes but shard 0 has {first}"
            ),
            EcError::MisalignedShard { alignment, got } => write!(
                f,
                "shard length {got} is not a multiple of the required alignment {alignment}"
            ),
            EcError::TooManyErasures { missing, tolerance } => write!(
                f,
                "{} shards missing ({missing:?}) exceeds fault tolerance {tolerance}",
                missing.len()
            ),
            EcError::UnrecoverablePattern { missing, detail } => {
                write!(f, "pattern {missing:?} unrecoverable: {detail}")
            }
            EcError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            EcError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for EcError {}
