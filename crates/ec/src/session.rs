//! Reusable encode/decode sessions: warm working memory across stripes.
//!
//! Every [`ErasureCode::encode`] call allocates fresh parity buffers and
//! every repair allocates plan state, which dominates wall-clock time long
//! before the GF kernels do (the kernels sustain tens of GiB/s; a 64 KiB
//! allocation plus page faults does not). A session is created once per
//! workload and owns all of that memory:
//!
//! * [`EncodeSession`] — a parity output arena, the tail-pad scratch and
//!   zero backing used by the streaming striper, all reshaped lazily and
//!   kept warm across stripes. [`EncodeSession::encode`] writes parity via
//!   [`ErasureCode::encode_into`] with zero per-stripe allocation once
//!   warm; [`EncodeSession::encode_object`] streams a multi-MiB object
//!   stripe-at-a-time from *borrowed* input windows, replacing the
//!   `split_into_shards` full-object copy.
//! * [`DecodeSession`] — a cached [`RepairPlan`] per erasure pattern, the
//!   pooled [`RepairScratch`] arena and reusable output buffers, so a warm
//!   repair loop performs no per-call allocation either.
//!
//! [`EncodeSession::reset`] / [`DecodeSession::reset`] drop cached shapes
//! and plans but keep the byte arenas, for reuse across differently-shaped
//! workloads.
//!
//! # Zero-copy striping invariants
//!
//! The data views handed to the [`EncodeSession::encode_object`] sink are:
//!
//! 1. full `shard_len` windows borrowed directly from the object for every
//!    shard that lies entirely inside it — no bytes are copied;
//! 2. at most **one** view per object backed by the session's pad scratch
//!    (the single shard straddling the object's end, copied and
//!    zero-padded);
//! 3. views of a shared zero buffer for shards entirely past the end.
//!
//! Views are valid only for the duration of the sink call; the parity
//! slices alias the session arena and are overwritten by the next stripe.

use crate::plan::{RepairPlan, RepairScratch};
use crate::{EcError, ErasureCode};
use std::collections::HashMap;
use std::sync::Arc;

/// Largest node count the sessions serve from stack-allocated borrow
/// arrays; wider codes fall back to a heap `Vec` of references (none of
/// the shipped codes come close).
pub const MAX_STACK_NODES: usize = 64;

/// Reshapes an arena to `rows` buffers of exactly `len` bytes, touching
/// memory only when the shape actually changed (the warm-loop case skips
/// both the resize and its zero-fill; `encode_into` overwrites contents).
fn shape_rows(arena: &mut Vec<Vec<u8>>, rows: usize, len: usize) {
    if arena.len() != rows {
        arena.resize_with(rows, Vec::new);
    }
    for row in arena.iter_mut() {
        if row.len() != len {
            row.clear();
            row.resize(len, 0);
        }
    }
}

/// A reusable encoding context owning the parity arena and striping
/// scratch. See the [module docs](self) for the ownership model.
#[derive(Default)]
pub struct EncodeSession {
    /// Parity output arena: `parity_nodes()` rows of the current shard
    /// length, lazily reshaped, capacity kept across stripes.
    parity: Vec<Vec<u8>>,
    /// Tail-pad scratch for the one boundary shard per streamed object.
    pad: Vec<u8>,
    /// Shared zero backing for virtual shards past the object's end.
    zeros: Vec<u8>,
}

impl EncodeSession {
    /// Creates an empty session; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached shapes but keeps nothing allocated beyond empty
    /// vectors' capacity — call between workloads of very different shard
    /// lengths to return memory, or rely on lazy reshaping otherwise.
    pub fn reset(&mut self) {
        for row in self.parity.iter_mut() {
            row.clear();
        }
        self.pad.clear();
        self.zeros.clear();
    }

    /// Encodes one stripe into the session's parity arena and returns the
    /// parity shards, borrowed until the next call.
    ///
    /// Byte-identical to [`ErasureCode::encode`]; once the session is warm
    /// for this `(parity_nodes, shard_len)` shape, the call performs no
    /// heap allocation.
    pub fn encode(
        &mut self,
        code: &dyn ErasureCode,
        data: &[&[u8]],
    ) -> Result<&[Vec<u8>], EcError> {
        let len = code.check_data_shards(data)?;
        shape_rows(&mut self.parity, code.parity_nodes(), len);
        encode_into_rows(code, data, &mut self.parity)?;
        Ok(&self.parity)
    }

    /// Streams `object` through the code one stripe at a time: each stripe
    /// is `data_nodes()` shards of exactly `shard_len` bytes viewed
    /// directly from `object` (see the striping invariants in the
    /// [module docs](self)), encoded into the warm parity arena, and
    /// handed to `sink(stripe_index, data_views, parity)`.
    ///
    /// Returns the number of stripes emitted: `ceil(len / (k·shard_len))`,
    /// with an empty object still producing one all-zero stripe (matching
    /// [`split_into_shards`](crate::stripe::split_into_shards)'s
    /// empty-object behaviour).
    pub fn encode_object<E>(
        &mut self,
        code: &dyn ErasureCode,
        object: &[u8],
        shard_len: usize,
        mut sink: impl FnMut(usize, &[&[u8]], &[Vec<u8>]) -> Result<(), E>,
    ) -> Result<usize, E>
    where
        E: From<EcError>,
    {
        let k = code.data_nodes();
        let align = code.shard_alignment();
        if shard_len == 0 || !shard_len.is_multiple_of(align) {
            return Err(EcError::MisalignedShard {
                alignment: align.max(1),
                got: shard_len,
            }
            .into());
        }
        let stripe_bytes = shard_len.checked_mul(k).ok_or_else(|| {
            EcError::Internal(format!("stripe size {shard_len}×{k} overflows usize"))
        })?;
        let stripes = object.len().div_ceil(stripe_bytes).max(1);

        // Field-level borrows: `pad` is rewritten each stripe while the
        // views borrow `zeros` and `object`, and `parity` is written while
        // the views are alive — disjoint fields keep the borrows legal.
        let Self { parity, pad, zeros } = self;
        if zeros.len() < shard_len {
            zeros.resize(shard_len, 0);
        }
        if pad.len() != shard_len {
            pad.clear();
            pad.resize(shard_len, 0);
        }
        shape_rows(parity, code.parity_nodes(), shard_len);

        for s in 0..stripes {
            let base = s * stripe_bytes;
            // First pass: materialize the (at most one) boundary shard
            // into the pad scratch, so the view pass below only takes
            // shared borrows.
            let mut pad_shard = None;
            for i in 0..k {
                let a = (base + i * shard_len).min(object.len());
                let b = (base + (i + 1) * shard_len).min(object.len());
                if a < b && b - a < shard_len {
                    pad[..b - a].copy_from_slice(&object[a..b]);
                    pad[b - a..].fill(0);
                    pad_shard = Some(i);
                    break;
                }
            }
            let view_of = |i: usize| -> &[u8] {
                if pad_shard == Some(i) {
                    return pad;
                }
                let a = (base + i * shard_len).min(object.len());
                let b = (base + (i + 1) * shard_len).min(object.len());
                if b - a == shard_len {
                    &object[a..b]
                } else {
                    &zeros[..shard_len]
                }
            };
            // Per-iteration stack array: refilling a loop-carried Vec of
            // borrows is rejected by the borrow checker once `pad` is
            // rewritten each stripe, and a fresh array costs no heap.
            if k <= MAX_STACK_NODES {
                let mut views: [&[u8]; MAX_STACK_NODES] = [&[]; MAX_STACK_NODES];
                for (i, v) in views.iter_mut().enumerate().take(k) {
                    *v = view_of(i);
                }
                encode_into_rows(code, &views[..k], parity)?;
                sink(s, &views[..k], parity)?;
            } else {
                let views: Vec<&[u8]> = (0..k).map(view_of).collect();
                encode_into_rows(code, &views, parity)?;
                sink(s, &views, parity)?;
            }
        }
        Ok(stripes)
    }
}

/// Drives [`ErasureCode::encode_into`] against an arena of owned rows,
/// borrowing the mutable views through a stack array so the warm path
/// performs no allocation.
fn encode_into_rows(
    code: &dyn ErasureCode,
    data: &[&[u8]],
    arena: &mut [Vec<u8>],
) -> Result<(), EcError> {
    let r = arena.len();
    if r <= MAX_STACK_NODES {
        let mut views: [&mut [u8]; MAX_STACK_NODES] = std::array::from_fn(|_| &mut [][..]);
        for (v, row) in views.iter_mut().zip(arena.iter_mut()) {
            *v = row.as_mut_slice();
        }
        code.encode_into(data, &mut views[..r])
    } else {
        // alloc-ok: > MAX_STACK_NODES parity rows never happens for shipped codes
        let mut views: Vec<&mut [u8]> = arena.iter_mut().map(|v| v.as_mut_slice()).collect();
        code.encode_into(data, &mut views)
    }
}

/// A reusable decoding context: cached repair plans per erasure pattern,
/// the pooled execution arena, and reusable output buffers.
#[derive(Default)]
pub struct DecodeSession {
    plans: HashMap<(Vec<usize>, Vec<usize>), Arc<RepairPlan>>,
    scratch: RepairScratch,
    out: Vec<Vec<u8>>,
}

impl DecodeSession {
    /// Creates an empty session; plans and buffers build up on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached plans and output shapes (the scratch arena shrinks
    /// naturally on the next `begin`). Call when switching codes: plans
    /// are keyed by erasure pattern only, so one session must not be
    /// shared across codes without a reset in between.
    pub fn reset(&mut self) {
        self.plans.clear();
        for row in self.out.iter_mut() {
            row.clear();
        }
    }

    /// The cached plan for repairing `erased` to materialize `wanted`,
    /// compiling and caching it on first sight of the pattern.
    pub fn plan(
        &mut self,
        code: &dyn ErasureCode,
        erased: &[usize],
        wanted: &[usize],
    ) -> Result<Arc<RepairPlan>, EcError> {
        let key = (erased.to_vec(), wanted.to_vec());
        if let Some(plan) = self.plans.get(&key) {
            return Ok(Arc::clone(plan));
        }
        let plan = Arc::new(code.plan_repair(erased, wanted)?);
        self.plans.insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// Repairs `erased` and returns the `wanted` shards, borrowed from the
    /// session until the next call.
    ///
    /// `shards` holds the stripe's available shards (`None` at least for
    /// every erased position). Plans are cached per `(erased, wanted)`
    /// pattern and the execution arena is reused, so a warm loop over
    /// stripes with a repeating failure pattern performs no allocation
    /// beyond the small cache-key vectors.
    pub fn decode(
        &mut self,
        code: &dyn ErasureCode,
        shards: &[Option<&[u8]>],
        erased: &[usize],
        wanted: &[usize],
    ) -> Result<&[Vec<u8>], EcError> {
        let plan = self.plan(code, erased, wanted)?;
        if self.out.len() != plan.wanted().len() {
            self.out.resize_with(plan.wanted().len(), Vec::new);
        }
        code.execute_plan(&plan, shards, &mut self.scratch, &mut self.out)?;
        Ok(&self.out)
    }

    /// I/O recorded by the most recent [`DecodeSession::decode`] call.
    pub fn last_io(&self) -> Option<&crate::iostats::IoStats> {
        self.scratch.io()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stripe::split_into_shards;

    /// Single-parity XOR code (same shape as the `traits` test code) —
    /// enough to exercise session plumbing without a codec dependency.
    struct ParityCode {
        k: usize,
    }

    impl ErasureCode for ParityCode {
        fn name(&self) -> String {
            format!("PARITY({},1)", self.k)
        }
        fn data_nodes(&self) -> usize {
            self.k
        }
        fn parity_nodes(&self) -> usize {
            1
        }
        fn fault_tolerance(&self) -> usize {
            1
        }
        fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
            let len = self.check_data_shards(data)?;
            let mut p = vec![0u8; len];
            for s in data {
                apec_gf::xor_slice(s, &mut p).expect("data shards share one length");
            }
            Ok(vec![p])
        }
        fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
            let (len, missing) = self.check_stripe(shards)?;
            if missing.len() > 1 {
                return Err(EcError::TooManyErasures {
                    missing,
                    tolerance: 1,
                });
            }
            let Some(&m) = missing.first() else {
                return Ok(());
            };
            let mut acc = vec![0u8; len];
            for s in shards.iter().flatten() {
                apec_gf::xor_slice(s, &mut acc).expect("stripe shards share one length");
            }
            shards[m] = Some(acc);
            Ok(())
        }
    }

    fn bytes(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 131 % 251) as u8).collect()
    }

    #[test]
    fn session_encode_matches_encode_across_shapes() {
        let code = ParityCode { k: 3 };
        let mut sess = EncodeSession::new();
        for len in [16usize, 4096, 7, 16] {
            let data: Vec<Vec<u8>> = (0..3).map(|i| bytes(len + i).split_off(i)).collect();
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let expect = code.encode(&refs).unwrap();
            let got = sess.encode(&code, &refs).unwrap();
            assert_eq!(got, expect.as_slice(), "len={len}");
        }
        // reset keeps the session usable.
        sess.reset();
        let data: Vec<Vec<u8>> = (0..3).map(|_| bytes(33)).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert_eq!(
            sess.encode(&code, &refs).unwrap(),
            code.encode(&refs).unwrap().as_slice()
        );
    }

    #[test]
    fn encode_object_matches_manual_striping() {
        let code = ParityCode { k: 3 };
        let shard_len = 8;
        let stripe_bytes = shard_len * 3;
        // Lengths hitting: exact fit, partial boundary shard, whole-shard
        // gap (zero virtual shards), and a sub-stripe object.
        for obj_len in [stripe_bytes * 2, stripe_bytes * 2 - 5, stripe_bytes + 3, 4] {
            let object = bytes(obj_len);
            let mut sess = EncodeSession::new();
            let mut seen = Vec::new();
            let stripes = sess
                .encode_object(
                    &code,
                    &object,
                    shard_len,
                    |s, data, parity| -> Result<(), EcError> {
                        let owned: Vec<Vec<u8>> = data.iter().map(|d| d.to_vec()).collect();
                        seen.push((s, owned, parity.to_vec()));
                        Ok(())
                    },
                )
                .unwrap();
            assert_eq!(stripes, obj_len.div_ceil(stripe_bytes).max(1));
            assert_eq!(seen.len(), stripes);
            for (s, data, parity) in &seen {
                // Reference: fixed-width slices, zero-padded.
                for (i, shard) in data.iter().enumerate() {
                    assert_eq!(shard.len(), shard_len);
                    let a = (s * stripe_bytes + i * shard_len).min(obj_len);
                    let b = (s * stripe_bytes + (i + 1) * shard_len).min(obj_len);
                    assert_eq!(&shard[..b - a], &object[a..b], "stripe {s} shard {i}");
                    assert!(shard[b - a..].iter().all(|&x| x == 0));
                }
                let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
                assert_eq!(parity, &code.encode(&refs).unwrap(), "stripe {s} parity");
            }
        }
    }

    #[test]
    fn encode_object_empty_matches_split_into_shards_convention() {
        let code = ParityCode { k: 2 };
        let mut sess = EncodeSession::new();
        let mut calls = 0;
        let stripes = sess
            .encode_object(&code, &[], 4, |_, data, _| -> Result<(), EcError> {
                calls += 1;
                assert!(data.iter().all(|d| d.len() == 4 && d.iter().all(|&x| x == 0)));
                Ok(())
            })
            .unwrap();
        assert_eq!((stripes, calls), (1, 1));
        // Same shape split_into_shards produces for an empty object.
        let legacy = split_into_shards(&[], 2, 4);
        assert!(legacy.iter().all(|s| s.len() == 4));
    }

    #[test]
    fn encode_object_rejects_bad_shard_len_and_propagates_sink_errors() {
        let code = ParityCode { k: 2 };
        let mut sess = EncodeSession::new();
        let err = sess
            .encode_object(&code, &[1, 2, 3], 0, |_, _, _| -> Result<(), EcError> { Ok(()) })
            .unwrap_err();
        assert!(matches!(err, EcError::MisalignedShard { .. }));

        let err = sess
            .encode_object(&code, &[1, 2, 3], 4, |_, _, _| {
                Err(EcError::Internal("sink says no".into()))
            })
            .unwrap_err();
        assert!(matches!(err, EcError::Internal(_)));
    }

    #[test]
    fn decode_session_reuses_plans_and_buffers() {
        let code = ParityCode { k: 3 };
        let data: Vec<Vec<u8>> = (0..3).map(|_| bytes(64)).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();

        let mut sess = DecodeSession::new();
        for round in 0..3 {
            let mut shards: Vec<Option<&[u8]>> = refs.iter().map(|r| Some(*r)).collect();
            shards.push(Some(parity[0].as_slice()));
            shards[1] = None;
            let out = sess.decode(&code, &shards, &[1], &[1]).unwrap();
            assert_eq!(out.len(), 1);
            assert_eq!(out[0], data[1], "round {round}");
        }
        assert_eq!(sess.plans.len(), 1, "plan cached once across rounds");
        sess.reset();
        assert!(sess.plans.is_empty());
    }
}
