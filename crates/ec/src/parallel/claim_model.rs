//! Model of the segment-claim protocol used by `encode_segmented` /
//! `reconstruct_segmented`, checked two ways:
//!
//! * under **loom** (`RUSTFLAGS="--cfg loom" cargo test -p apec-ec --lib
//!   --release claim`), every interleaving of the modelled threads is
//!   explored exhaustively, proving the protocol's invariant — *every
//!   segment is claimed by exactly one worker, none skipped, none
//!   doubled* — holds even with `Ordering::Relaxed` on the counter;
//! * under plain `cargo test`, the same protocol runs as a std-thread
//!   stress test, so the invariant is exercised on every CI run without
//!   the loom dependency (which is cfg-gated and never built normally).
//!
//! The model deliberately mirrors the production shape: a shared
//! `AtomicUsize` ticket counter claimed with `fetch_add(1, Relaxed)`, a
//! per-segment mutex cell for the result, and a join barrier before the
//! cells are read. See the module docs of [`crate::parallel`] for why
//! Relaxed suffices (RMW atomicity gives uniqueness; the join and the
//! cell mutexes give publication).

#[cfg(loom)]
use loom::{
    sync::atomic::{AtomicUsize, Ordering},
    sync::{Arc, Mutex},
    thread,
};
#[cfg(not(loom))]
use std::{
    sync::atomic::{AtomicUsize, Ordering},
    sync::{Arc, Mutex},
    thread,
};

/// Runs one round of the claim protocol with `n_workers` threads over
/// `n_segments` segments and returns how many times each segment was
/// claimed. The protocol is correct iff every count is exactly 1.
pub fn claim_round(n_workers: usize, n_segments: usize) -> Vec<usize> {
    let next = Arc::new(AtomicUsize::new(0));
    let hits: Arc<Vec<Mutex<usize>>> = Arc::new((0..n_segments).map(|_| Mutex::new(0)).collect());

    let handles: Vec<_> = (0..n_workers)
        .map(|_| {
            let next = Arc::clone(&next);
            let hits = Arc::clone(&hits);
            thread::spawn(move || loop {
                // The exact production claim: Relaxed fetch_add ticket.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_segments {
                    break;
                }
                // panic-ok: i < n_segments checked above; lock poisoning means a sibling already failed the test
                *hits[i].lock().unwrap() += 1;
            })
        })
        .collect();
    for h in handles {
        // panic-ok: model harness — a worker panic IS the test failure being surfaced
        h.join().unwrap();
    }
    // panic-ok: all workers joined, no lock can be held or poisoned here
    hits.iter().map(|m| *m.lock().unwrap()).collect()
}

/// Exhaustive loom check. Small bounds keep the state space tractable —
/// loom explores every interleaving, so 2 workers × 3 segments already
/// covers claim/claim races, claim/exit races, and the join edge.
#[cfg(loom)]
mod loom_model {
    #[test]
    fn every_segment_claimed_exactly_once() {
        loom::model(|| {
            let hits = super::claim_round(2, 3);
            assert!(
                hits.iter().all(|&h| h == 1),
                "segment claimed {hits:?} times — protocol broken"
            );
        });
    }

    #[test]
    fn more_workers_than_segments_is_safe() {
        loom::model(|| {
            let hits = super::claim_round(3, 2);
            assert!(hits.iter().all(|&h| h == 1), "{hits:?}");
        });
    }
}

/// Std-thread stress fallback for normal test runs.
#[cfg(all(test, not(loom)))]
mod stress {
    #[test]
    fn every_segment_claimed_exactly_once_stress() {
        for workers in [2, 4, 8] {
            for round in 0..50 {
                let hits = super::claim_round(workers, 64);
                assert!(
                    hits.iter().all(|&h| h == 1),
                    "workers={workers} round={round}: {hits:?}"
                );
            }
        }
    }

    #[test]
    fn more_workers_than_segments_is_safe() {
        let hits = super::claim_round(16, 3);
        assert!(hits.iter().all(|&h| h == 1), "{hits:?}");
    }
}
