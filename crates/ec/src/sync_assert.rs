//! Compile-time `Send`/`Sync` witnesses.
//!
//! `cargo xtask lint` requires every file that spawns onto a crossbeam
//! scope to witness, at compile time, that the types crossing the scope
//! are `Send + Sync` — so a later edit that slips a `Rc`/`RefCell`/raw
//! pointer into a worker capture fails the build right at the
//! declaration instead of deep inside a trait bound error (or worse,
//! compiling because some wrapper hid the requirement).
//!
//! Usage, next to the spawning code:
//!
//! ```
//! use apec_ec::sync_assert::assert_send_sync;
//! const _: () = assert_send_sync::<std::sync::atomic::AtomicUsize>();
//! ```

/// Compiles only if `T: Send + Sync`. Call in a `const _: () = …;` item so
/// the witness costs nothing at runtime and cannot be skipped by dead-code
/// elimination.
pub const fn assert_send_sync<T: Send + Sync>() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn witnesses_compile_for_shared_types() {
        const _: () = assert_send_sync::<std::sync::atomic::AtomicUsize>();
        const _: () = assert_send_sync::<Vec<parking_lot::Mutex<Option<Vec<u8>>>>>();
        // A !Sync type would fail to compile here — covered by the fact
        // that this cannot be expressed as a runtime test at all.
    }
}
