//! Centralised deterministic seed plumbing.
//!
//! Every stochastic component in the workspace — the tier workload
//! generator, Monte-Carlo reliability validation, benchmark fixtures,
//! examples — draws its randomness through this module so that one `u64`
//! seed reproduces an entire run bit-for-bit. Entropy-based constructors
//! (`thread_rng`, `rand::rng()`, `from_entropy`, `from_os_rng`) are banned
//! workspace-wide by `cargo xtask lint`; this module is the sanctioned
//! alternative.
//!
//! Independent consumers of one master seed must not share a stream (a
//! workload's read sampler advancing would perturb its failure injector).
//! [`derive`] splits a master seed into decorrelated child seeds by label,
//! and [`fork`] builds the child generator directly:
//!
//! ```
//! use apec_ec::rng;
//! use rand::Rng;
//!
//! let mut reads = rng::fork(42, "reads");
//! let mut failures = rng::fork(42, "failures");
//! // Distinct labels ⇒ decorrelated streams; same seed ⇒ same run.
//! let _ = reads.random_range(0..100u32);
//! let _ = failures.random_range(0..100u32);
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic generator from a bare seed.
///
/// Thin wrapper over `StdRng::seed_from_u64`, named so call sites read as
/// policy ("this randomness is seed-plumbed") rather than mechanism.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a decorrelated child seed from a master seed and a label.
///
/// The label is hashed with FNV-1a and the combination is finalised with
/// the SplitMix64 mixer, so nearby master seeds and similar labels still
/// land far apart in seed space. Deterministic across platforms and
/// releases: the constants are fixed here, not inherited from `std`.
pub fn derive(seed: u64, label: &str) -> u64 {
    // FNV-1a over the label bytes.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in label.as_bytes() {
        h ^= u64::from(b); // raw-xor-ok: seed hashing, not shard data
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // SplitMix64 finaliser over seed ⊕ label-hash.
    let mut z = seed ^ h;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic generator for one labelled sub-stream of a master seed.
///
/// Equivalent to `seeded(derive(seed, label))`.
pub fn fork(seed: u64, label: &str) -> StdRng {
    seeded(derive(seed, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    // Required for `.random()` under the real `rand`; the offline stub
    // exposes the generation methods inherently, making this "unused".
    #[allow(unused_imports)]
    use rand::Rng;

    #[test]
    fn seeded_is_reproducible() {
        let mut r1 = seeded(7);
        let mut r2 = seeded(7);
        let a: Vec<u32> = (0..8).map(|_| r1.random()).collect();
        let b: Vec<u32> = (0..8).map(|_| r2.random()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn derive_is_stable_and_label_sensitive() {
        assert_eq!(derive(42, "reads"), derive(42, "reads"));
        assert_ne!(derive(42, "reads"), derive(42, "failures"));
        assert_ne!(derive(42, "reads"), derive(43, "reads"));
        // The empty label still mixes the seed (fork(s, "") != seeded-from-s).
        assert_ne!(derive(42, ""), 42);
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut a = fork(1, "a");
        let mut b = fork(1, "b");
        let xs: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn nearby_seeds_diverge() {
        // SplitMix64 avalanche: consecutive master seeds must not yield
        // consecutive child seeds.
        let d0 = derive(100, "x");
        let d1 = derive(101, "x");
        assert!(d0.abs_diff(d1) > 1 << 32, "{d0} vs {d1}");
    }
}
