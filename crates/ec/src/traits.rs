//! The [`ErasureCode`] trait.

use crate::plan::{self, RepairPlan, RepairScratch};
use crate::EcError;

/// How a single-block update to one data node ripples through the code —
/// the quantity behind the paper's "Avg. Single Write Overhead" metric
/// (Table 3 and Figure 9).
#[derive(Debug, Clone, PartialEq)]
pub struct UpdatePattern {
    /// Number of node writes for updating one data block: the data node
    /// itself plus every parity node whose content depends on it
    /// (element-averaged for array codes, hence fractional).
    pub node_writes: f64,
    /// Number of parity-element writes per data-element update, before
    /// adding the data write itself.
    pub parity_writes: f64,
}

/// A systematic erasure code over equal-size per-node shards.
///
/// Geometry: `data_nodes()` data shards are encoded into `parity_nodes()`
/// parity shards; all `total_nodes()` shards have equal length, which must
/// be a multiple of `shard_alignment()` bytes (array codes slice each shard
/// into `rows_per_col` elements).
///
/// Implementations are required to be *systematic*: `encode` never modifies
/// data shards, it only derives parities.
pub trait ErasureCode: Send + Sync {
    /// Human-readable name including parameters, e.g. `RS(5,3)` or
    /// `APPR.STAR(5,2,1,4,Uneven)`.
    fn name(&self) -> String;

    /// Number of data nodes (the paper's `k`, possibly aggregated for
    /// framework codes).
    fn data_nodes(&self) -> usize;

    /// Number of parity nodes.
    fn parity_nodes(&self) -> usize;

    /// Total number of nodes in a stripe.
    fn total_nodes(&self) -> usize {
        self.data_nodes() + self.parity_nodes()
    }

    /// Number of *arbitrary* node failures the code guarantees to repair.
    fn fault_tolerance(&self) -> usize;

    /// Required shard-length alignment in bytes (array codes: rows per
    /// column; GF codes: 1).
    fn shard_alignment(&self) -> usize {
        1
    }

    /// Computes the parity shards for the given data shards.
    ///
    /// `data` must contain exactly `data_nodes()` equal-length shards whose
    /// length is a multiple of `shard_alignment()`.
    fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError>;

    /// Computes parity straight into caller-owned slices — the zero-copy
    /// counterpart of [`ErasureCode::encode`], used by
    /// [`EncodeSession`](crate::EncodeSession) so a warm encode loop
    /// performs no per-stripe allocation.
    ///
    /// `parity` must contain exactly `parity_nodes()` slices, each the
    /// same length as the data shards. Output bytes are identical to
    /// `encode`; the slices' prior contents are ignored (implementations
    /// overwrite or zero-fill before accumulating).
    ///
    /// The default delegates to `encode` and copies — correct for any
    /// implementation, but allocating. RS/CRS, LRC, the XOR array codes
    /// and the Approximate framework codes override it natively.
    fn encode_into(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<(), EcError> {
        let len = self.check_data_shards(data)?;
        self.check_parity_bufs(parity, len)?;
        let owned = self.encode(data)?;
        for (dst, src) in parity.iter_mut().zip(&owned) {
            dst.copy_from_slice(src);
        }
        Ok(())
    }

    /// Rebuilds the missing shards in place.
    ///
    /// `shards` has `total_nodes()` entries; `None` marks an erased shard.
    /// On success every entry is `Some` and byte-identical to the original
    /// stripe. Patterns beyond the code's capability return
    /// [`EcError::TooManyErasures`] or [`EcError::UnrecoverablePattern`]
    /// and leave `shards` unmodified except possibly for already-recovered
    /// entries of partially repairable framework codes (documented there).
    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError>;

    /// Compiles a repair of `erased` that materializes the `wanted ⊆ erased`
    /// shards — the plan half of the plan/execute split.
    ///
    /// The returned [`RepairPlan`] is an inspectable value: which survivors
    /// are read (and what fraction of each), the element-level compute
    /// schedule, and which wanted elements a tiered code gives up on. Passing
    /// a strict subset of the erasures yields a *partial decode*: a degraded
    /// read of one shard plans (and later executes) only the work that shard
    /// needs instead of rebuilding the whole stripe.
    ///
    /// The default wraps [`ErasureCode::reconstruct`] in an opaque plan that
    /// reads every survivor in full; RS/CRS, LRC, the XOR array codes and
    /// the Approximate framework codes override it with native planners.
    fn plan_repair(&self, erased: &[usize], wanted: &[usize]) -> Result<RepairPlan, EcError> {
        if erased.len() > self.fault_tolerance() {
            return Err(EcError::TooManyErasures {
                missing: erased.to_vec(),
                tolerance: self.fault_tolerance(),
            });
        }
        RepairPlan::opaque(self.total_nodes(), self.shard_alignment(), erased, wanted)
    }

    /// Executes a plan from [`ErasureCode::plan_repair`] — the execute half
    /// of the plan/execute split.
    ///
    /// `shards` holds the stripe's available shards (`None` for erased or
    /// unread positions; every node the plan reads must be `Some`). The
    /// wanted shards are materialized into `out` — one buffer per entry of
    /// [`RepairPlan::wanted`], reused across calls — and all intermediate
    /// state lives in the pooled `scratch` arena, so a warm repair loop
    /// performs no per-call allocation. The I/O actually performed is
    /// recorded in [`RepairScratch::io`] and matches
    /// [`RepairPlan::expected_io`] by construction.
    fn execute_plan(
        &self,
        plan: &RepairPlan,
        shards: &[Option<&[u8]>],
        scratch: &mut RepairScratch,
        out: &mut [Vec<u8>],
    ) -> Result<(), EcError> {
        if plan.is_opaque() {
            plan::execute_opaque(|stripe| self.reconstruct(stripe), plan, shards, scratch, out)
        } else {
            plan::execute_steps(plan, shards, scratch, out)
        }
    }

    /// The storage overhead ratio `total bytes / data bytes` = n/k.
    fn storage_overhead(&self) -> f64 {
        self.total_nodes() as f64 / self.data_nodes() as f64
    }

    /// Cost of updating a single data block. The default models a plain
    /// MDS code where every parity depends on every data node.
    fn update_pattern(&self) -> UpdatePattern {
        UpdatePattern {
            node_writes: 1.0 + self.parity_nodes() as f64,
            parity_writes: self.parity_nodes() as f64,
        }
    }

    /// Validates a borrowed set of data shards against the code geometry.
    /// Helper for implementations; returns the shard length.
    fn check_data_shards(&self, data: &[&[u8]]) -> Result<usize, EcError> {
        if data.len() != self.data_nodes() {
            return Err(EcError::WrongShardCount {
                expected: self.data_nodes(),
                got: data.len(),
            });
        }
        let len = data.first().map_or(0, |s| s.len());
        for (i, s) in data.iter().enumerate() {
            if s.len() != len {
                return Err(EcError::ShardSizeMismatch {
                    first: len,
                    index: i,
                    got: s.len(),
                });
            }
        }
        let align = self.shard_alignment();
        if align > 1 && !len.is_multiple_of(align) {
            return Err(EcError::MisalignedShard {
                alignment: align,
                got: len,
            });
        }
        Ok(len)
    }

    /// Validates a set of caller-owned parity output slices against the
    /// code geometry and an already-validated data shard length. Helper
    /// for [`ErasureCode::encode_into`] implementations.
    fn check_parity_bufs(&self, parity: &[&mut [u8]], shard_len: usize) -> Result<(), EcError> {
        if parity.len() != self.parity_nodes() {
            return Err(EcError::WrongShardCount {
                expected: self.parity_nodes(),
                got: parity.len(),
            });
        }
        for (i, p) in parity.iter().enumerate() {
            if p.len() != shard_len {
                return Err(EcError::ShardSizeMismatch {
                    first: shard_len,
                    index: i,
                    got: p.len(),
                });
            }
        }
        Ok(())
    }

    /// Validates a reconstruction input: shape, equal sizes, alignment.
    /// Returns `(shard_len, missing_indices)`.
    fn check_stripe(&self, shards: &[Option<Vec<u8>>]) -> Result<(usize, Vec<usize>), EcError> {
        if shards.len() != self.total_nodes() {
            return Err(EcError::WrongShardCount {
                expected: self.total_nodes(),
                got: shards.len(),
            });
        }
        let mut len: Option<usize> = None;
        let mut missing = Vec::new();
        for (i, s) in shards.iter().enumerate() {
            match s {
                None => missing.push(i),
                Some(b) => match len {
                    None => len = Some(b.len()),
                    Some(l) if l != b.len() => {
                        return Err(EcError::ShardSizeMismatch {
                            first: l,
                            index: i,
                            got: b.len(),
                        })
                    }
                    _ => {}
                },
            }
        }
        let len = len.ok_or_else(|| {
            EcError::TooManyErasures {
                missing: missing.clone(),
                tolerance: self.fault_tolerance(),
            }
        })?;
        let align = self.shard_alignment();
        if align > 1 && !len.is_multiple_of(align) {
            return Err(EcError::MisalignedShard {
                alignment: align,
                got: len,
            });
        }
        Ok((len, missing))
    }
}

/// A heap-allocated, dynamically-typed code — how the bench harness and the
/// cluster simulator hold heterogeneous codecs.
pub type BoxedCode = Box<dyn ErasureCode>;

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal single-parity XOR code used to exercise the default methods.
    struct ParityCode {
        k: usize,
    }

    impl ErasureCode for ParityCode {
        fn name(&self) -> String {
            format!("PARITY({},1)", self.k)
        }
        fn data_nodes(&self) -> usize {
            self.k
        }
        fn parity_nodes(&self) -> usize {
            1
        }
        fn fault_tolerance(&self) -> usize {
            1
        }
        fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
            let len = self.check_data_shards(data)?;
            let mut p = vec![0u8; len];
            for s in data {
                apec_gf::xor_slice(s, &mut p).expect("data shards share one length");
            }
            Ok(vec![p])
        }
        fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
            let (len, missing) = self.check_stripe(shards)?;
            if missing.is_empty() {
                return Ok(());
            }
            if missing.len() > 1 {
                return Err(EcError::TooManyErasures {
                    missing,
                    tolerance: 1,
                });
            }
            let mut acc = vec![0u8; len];
            for s in shards.iter().flatten() {
                apec_gf::xor_slice(s, &mut acc).expect("stripe shards share one length");
            }
            shards[missing[0]] = Some(acc);
            Ok(())
        }
    }

    #[test]
    fn defaults_are_consistent() {
        let c = ParityCode { k: 4 };
        assert_eq!(c.total_nodes(), 5);
        assert!((c.storage_overhead() - 1.25).abs() < 1e-12);
        let up = c.update_pattern();
        assert_eq!(up.node_writes, 2.0);
        assert_eq!(up.parity_writes, 1.0);
    }

    #[test]
    fn check_data_shards_validates() {
        let c = ParityCode { k: 2 };
        assert!(matches!(
            c.check_data_shards(&[&[0u8; 4][..]]),
            Err(EcError::WrongShardCount { expected: 2, got: 1 })
        ));
        assert!(matches!(
            c.check_data_shards(&[&[0u8; 4][..], &[0u8; 5][..]]),
            Err(EcError::ShardSizeMismatch { .. })
        ));
        assert_eq!(c.check_data_shards(&[&[0u8; 4][..], &[1u8; 4][..]]), Ok(4));
    }

    #[test]
    fn parity_round_trip_and_errors() {
        let c = ParityCode { k: 3 };
        let data: Vec<Vec<u8>> = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = c.encode(&refs).unwrap();

        let mut stripe: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect();
        stripe[1] = None;
        c.reconstruct(&mut stripe).unwrap();
        assert_eq!(stripe[1].as_deref(), Some(&data[1][..]));

        let mut stripe2: Vec<Option<Vec<u8>>> = vec![None, None, Some(vec![0, 0]), Some(vec![0, 0])];
        assert!(matches!(
            c.reconstruct(&mut stripe2),
            Err(EcError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn default_encode_into_matches_encode() {
        let c = ParityCode { k: 3 };
        let data: Vec<Vec<u8>> = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let expect = c.encode(&refs).unwrap();

        let mut arena = vec![vec![0xFFu8; 2]];
        let mut views: Vec<&mut [u8]> = arena.iter_mut().map(|v| v.as_mut_slice()).collect();
        c.encode_into(&refs, &mut views).unwrap();
        assert_eq!(arena, expect);

        // Wrong parity shapes are rejected before any work happens.
        let mut short = vec![vec![0u8; 1]];
        let mut views: Vec<&mut [u8]> = short.iter_mut().map(|v| v.as_mut_slice()).collect();
        assert!(matches!(
            c.encode_into(&refs, &mut views),
            Err(EcError::ShardSizeMismatch { .. })
        ));
        let mut none: Vec<&mut [u8]> = Vec::new();
        assert!(matches!(
            c.encode_into(&refs, &mut none),
            Err(EcError::WrongShardCount { .. })
        ));
    }

    #[test]
    fn check_stripe_rejects_all_missing() {
        let c = ParityCode { k: 1 };
        let mut stripe: Vec<Option<Vec<u8>>> = vec![None, None];
        assert!(matches!(
            c.reconstruct(&mut stripe),
            Err(EcError::TooManyErasures { .. })
        ));
    }
}
