//! The repair-plan IR: a first-class, inspectable description of a repair.
//!
//! [`ErasureCode::reconstruct`] is a monolithic whole-stripe call; the paper's
//! argument, however, is entirely about the *shape* of a repair — how many
//! shards are read, which groups stay local, what fraction of a node is
//! rebuilt. [`RepairPlan`] makes that shape a value: a set of survivor reads
//! plus an ordered compute schedule over shard *elements*, produced by
//! [`ErasureCode::plan_repair`] and run by [`ErasureCode::execute_plan`]
//! against a reusable [`RepairScratch`] arena.
//!
//! Element granularity: every shard is split into
//! [`ErasureCode::shard_alignment`] equal elements, and the global id of
//! element `idx` of node `node` is `node * elements_per_shard + idx` — the
//! same convention the audit crate's generator probe uses, so plans can be
//! verified symbolically against the probed generator.
//!
//! Partial decode falls out of the IR: `wanted ⊆ erased` lets a degraded
//! read ask for one shard, and [`RepairPlan::from_steps`] prunes the
//! schedule back from the wanted outputs, dropping every read and step the
//! other erasures would have needed.

use crate::iostats::IoStats;
use crate::{EcError, ErasureCode};
use std::collections::{HashMap, HashSet};

/// One compute step: `target` (a global element id on an erased node) is a
/// GF(2^8) linear combination of `sources`.
///
/// Sources are `(coefficient, global element id)` pairs; a source either
/// lives on a surviving node (and appears in the plan's reads) or is the
/// target of an earlier step. Zero coefficients are legal — matrix decoders
/// fetch whole shards regardless, so a zero term still models a read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// Global element id being rebuilt.
    pub target: usize,
    /// `(coefficient, global element id)` terms, XOR-accumulated.
    pub sources: Vec<(u8, usize)>,
}

/// Everything the plan reads from one surviving node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRead {
    /// Surviving node index.
    pub node: usize,
    /// Local element indices read from that node's shard, sorted.
    pub elements: Vec<usize>,
}

/// A compiled repair: which survivors to read, how much of each, and the
/// element-level compute schedule that turns those reads into the wanted
/// shards.
///
/// Plans are produced by [`ErasureCode::plan_repair`]. Codes with native
/// planners (RS/CRS, LRC, the XOR array codes, the Approximate framework
/// codes) emit explicit schedules; the trait default emits an *opaque* plan
/// that reads every survivor in full and defers to
/// [`ErasureCode::reconstruct`] at execution time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairPlan {
    n: usize,
    elements_per_shard: usize,
    erased: Vec<usize>,
    wanted: Vec<usize>,
    unsolved: Vec<usize>,
    reads: Vec<PlanRead>,
    steps: Vec<PlanStep>,
    opaque: bool,
}

/// Validates and normalizes the (erased, wanted) pair shared by every
/// planner: bounds-checks node indices, sorts, dedups, and checks
/// `wanted ⊆ erased`.
pub fn normalize_pattern(
    n: usize,
    erased: &[usize],
    wanted: &[usize],
) -> Result<(Vec<usize>, Vec<usize>), EcError> {
    let sort_checked = |nodes: &[usize], what: &str| -> Result<Vec<usize>, EcError> {
        let mut v = nodes.to_vec(); // clone-ok: tiny index list, not shard bytes
        v.sort_unstable();
        v.dedup();
        if let Some(&bad) = v.iter().find(|&&i| i >= n) {
            return Err(EcError::InvalidParameters(format!(
                "{what} node {bad} out of range for {n} nodes"
            )));
        }
        Ok(v)
    };
    let erased = sort_checked(erased, "erased")?;
    let wanted = sort_checked(wanted, "wanted")?;
    if let Some(&stray) = wanted.iter().find(|w| !erased.contains(w)) {
        return Err(EcError::InvalidParameters(format!(
            "wanted node {stray} is not erased"
        )));
    }
    Ok((erased, wanted))
}

impl RepairPlan {
    /// Builds an opaque plan: read every survivor in full, rebuild via the
    /// code's own [`ErasureCode::reconstruct`]. This is what the trait
    /// default emits for codes without a native planner.
    pub fn opaque(
        n: usize,
        elements_per_shard: usize,
        erased: &[usize],
        wanted: &[usize],
    ) -> Result<RepairPlan, EcError> {
        let eps = elements_per_shard.max(1);
        let (erased, wanted) = normalize_pattern(n, erased, wanted)?;
        let reads = (0..n)
            .filter(|i| !erased.contains(i))
            .map(|node| PlanRead {
                node,
                elements: (0..eps).collect(),
            })
            .collect();
        Ok(RepairPlan {
            n,
            elements_per_shard: eps,
            erased,
            wanted,
            unsolved: Vec::new(),
            reads,
            steps: Vec::new(),
            opaque: true,
        })
    }

    /// Builds a plan from a full recovery schedule, pruning it back from
    /// `wanted`.
    ///
    /// `steps` must be a dependency-ordered schedule (each source is either
    /// on a surviving node or the target of an earlier step) that rebuilds
    /// every erased element not listed in `unsolved` (global element ids).
    /// Steps whose targets the wanted outputs do not depend on are dropped,
    /// and the read set is derived from the surviving sources of the steps
    /// that remain — this is what makes `wanted ⊂ erased` a *partial*
    /// decode.
    pub fn from_steps(
        n: usize,
        elements_per_shard: usize,
        erased: &[usize],
        wanted: &[usize],
        steps: Vec<PlanStep>,
        unsolved: &[usize],
    ) -> Result<RepairPlan, EcError> {
        let eps = elements_per_shard.max(1);
        let (erased, wanted) = normalize_pattern(n, erased, wanted)?;
        let erased_set: HashSet<usize> = erased.iter().copied().collect();
        let unsolved_set: HashSet<usize> = unsolved.iter().copied().collect();

        // Backward pass: keep only the steps the wanted elements depend on.
        let mut needed: HashSet<usize> = wanted
            .iter()
            .flat_map(|&w| w * eps..(w + 1) * eps)
            .filter(|e| !unsolved_set.contains(e))
            .collect();
        let mut kept: Vec<PlanStep> = Vec::with_capacity(steps.len());
        for step in steps.into_iter().rev() {
            if !needed.contains(&step.target) {
                continue;
            }
            for &(_, src) in &step.sources {
                if erased_set.contains(&(src / eps)) {
                    needed.insert(src);
                }
            }
            kept.push(step);
        }
        kept.reverse();

        // Forward pass: every source must be readable or already rebuilt,
        // and every wanted element must end up covered.
        let mut read_elems: HashSet<usize> = HashSet::new();
        let mut known: HashSet<usize> = HashSet::new();
        for step in &kept {
            for &(_, src) in &step.sources {
                if erased_set.contains(&(src / eps)) {
                    if !known.contains(&src) {
                        return Err(EcError::Internal(format!(
                            "repair schedule reads erased element {src} before rebuilding it"
                        )));
                    }
                } else {
                    read_elems.insert(src);
                }
            }
            known.insert(step.target);
        }
        for &w in &wanted {
            for e in w * eps..(w + 1) * eps {
                if !unsolved_set.contains(&e) && !known.contains(&e) {
                    return Err(EcError::Internal(format!(
                        "repair schedule does not cover wanted element {e}"
                    )));
                }
            }
        }

        let mut by_node: HashMap<usize, Vec<usize>> = HashMap::new();
        for e in read_elems {
            by_node.entry(e / eps).or_default().push(e % eps);
        }
        let mut reads: Vec<PlanRead> = by_node
            .into_iter()
            .map(|(node, mut elements)| {
                elements.sort_unstable();
                PlanRead { node, elements }
            })
            .collect();
        reads.sort_by_key(|r| r.node);

        let mut unsolved_wanted: Vec<usize> = unsolved
            .iter()
            .copied()
            .filter(|&e| wanted.binary_search(&(e / eps)).is_ok())
            .collect();
        unsolved_wanted.sort_unstable();
        unsolved_wanted.dedup();

        Ok(RepairPlan {
            n,
            elements_per_shard: eps,
            erased,
            wanted,
            unsolved: unsolved_wanted,
            reads,
            steps: kept,
            opaque: false,
        })
    }

    /// Total nodes in the stripe.
    pub fn total_nodes(&self) -> usize {
        self.n
    }

    /// Elements per shard (= the code's [`ErasureCode::shard_alignment`]).
    pub fn elements_per_shard(&self) -> usize {
        self.elements_per_shard
    }

    /// The erased nodes this plan assumes, sorted.
    pub fn erased(&self) -> &[usize] {
        &self.erased
    }

    /// The erased nodes this plan materializes, sorted.
    pub fn wanted(&self) -> &[usize] {
        &self.wanted
    }

    /// Wanted elements (global ids) the pattern cannot rebuild; their byte
    /// ranges are zero-filled by the executor (tiered codes only).
    pub fn unsolved(&self) -> &[usize] {
        &self.unsolved
    }

    /// Per-survivor reads.
    pub fn reads(&self) -> &[PlanRead] {
        &self.reads
    }

    /// The compute schedule (empty for opaque plans).
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// `true` when this plan defers to [`ErasureCode::reconstruct`] instead
    /// of carrying an explicit schedule.
    pub fn is_opaque(&self) -> bool {
        self.opaque
    }

    /// Fraction of `node`'s shard this plan reads (0 when unused).
    pub fn read_fraction(&self, node: usize) -> f64 {
        self.reads
            .iter()
            .find(|r| r.node == node)
            .map_or(0.0, |r| r.elements.len() as f64 / self.elements_per_shard as f64)
    }

    /// Total shard-fractions read across all survivors.
    pub fn total_read_fraction(&self) -> f64 {
        self.reads
            .iter()
            .map(|r| r.elements.len() as f64 / self.elements_per_shard as f64)
            .sum()
    }

    /// Decode volume in shard units: total source terms across all steps
    /// divided by the elements per shard. For an opaque plan this falls back
    /// to the matrix-decode model (one full pass per survivor read).
    pub fn compute_shards(&self) -> f64 {
        if self.opaque {
            return self.total_read_fraction();
        }
        let terms: usize = self.steps.iter().map(|s| s.sources.len()).sum();
        terms as f64 / self.elements_per_shard as f64
    }

    /// Fraction of `node`'s shard this plan rebuilds (0 for nodes outside
    /// `wanted`, below 1 when a tiered pattern leaves elements unsolved).
    pub fn write_fraction(&self, node: usize) -> f64 {
        if self.wanted.binary_search(&node).is_err() {
            return 0.0;
        }
        let eps = self.elements_per_shard;
        let unsolved_here = self
            .unsolved
            .iter()
            .filter(|&&e| e / eps == node)
            .count();
        (eps - unsolved_here) as f64 / eps as f64
    }

    /// The I/O this plan will charge when executed against shards of
    /// `shard_len` bytes: one read per survivor touched and one write per
    /// wanted node (solved bytes only). The executor records exactly this
    /// into its scratch [`IoStats`], which is what makes plan inspection and
    /// execution agree by construction.
    pub fn expected_io(&self, shard_len: usize) -> Result<IoStats, EcError> {
        let elem_len = self.element_len(shard_len)?;
        let io = IoStats::new(self.n);
        for r in &self.reads {
            io.record_read(r.node, (r.elements.len() * elem_len) as u64);
        }
        let eps = self.elements_per_shard;
        for &w in &self.wanted {
            let unsolved_here = self.unsolved.iter().filter(|&&e| e / eps == w).count();
            io.record_write(w, ((eps - unsolved_here) * elem_len) as u64);
        }
        Ok(io)
    }

    fn element_len(&self, shard_len: usize) -> Result<usize, EcError> {
        if !shard_len.is_multiple_of(self.elements_per_shard) {
            return Err(EcError::MisalignedShard {
                alignment: self.elements_per_shard,
                got: shard_len,
            });
        }
        Ok(shard_len / self.elements_per_shard)
    }
}

/// A reusable execution arena: element buffers, the opaque-path stripe, and
/// the per-call I/O ledger all live here, so repeated
/// [`ErasureCode::execute_plan`] calls allocate nothing once warm.
///
/// The arena owns its memory across calls; buffers grow to the high-water
/// mark of the plans executed through it and are recycled, never returned.
/// One scratch must not be shared between threads mid-call (it is `Send`,
/// not `Sync` — move it into a worker instead).
#[derive(Debug, Default)]
pub struct RepairScratch {
    /// Flat arena holding one slot per schedule step.
    elems: Vec<u8>,
    /// Global element id -> slot index into `elems`.
    slot_of: HashMap<usize, usize>,
    /// Pooled stripe for the opaque path.
    stripe: Vec<Option<Vec<u8>>>,
    /// Spare buffers recycled between opaque executions.
    spare: Vec<Vec<u8>>,
    /// I/O recorded by the most recent execution.
    io: Option<IoStats>,
}

impl RepairScratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// I/O recorded by the most recent [`ErasureCode::execute_plan`] call
    /// through this scratch (reset at the start of each call).
    pub fn io(&self) -> Option<&IoStats> {
        self.io.as_ref()
    }

    fn begin(&mut self, plan: &RepairPlan, elem_len: usize) {
        self.slot_of.clear();
        self.elems.clear();
        self.elems.resize(plan.steps.len() * elem_len, 0);
        self.io = Some(IoStats::new(plan.n));
    }

    fn record_plan_reads(&mut self, plan: &RepairPlan, elem_len: usize) {
        // panic-ok: private helper, only reachable after begin() installed io
        let io = self.io.as_ref().expect("begin() ran");
        for r in &plan.reads {
            io.record_read(r.node, (r.elements.len() * elem_len) as u64);
        }
    }
}

/// Checks the survivor shards an execution was handed against the plan:
/// every read source must be present, all present shards equal-length and
/// aligned. Returns `(shard_len, element_len)`.
fn check_execution_inputs(
    plan: &RepairPlan,
    shards: &[Option<&[u8]>],
    out: &[Vec<u8>],
) -> Result<(usize, usize), EcError> {
    if shards.len() != plan.n {
        return Err(EcError::WrongShardCount {
            expected: plan.n,
            got: shards.len(),
        });
    }
    if out.len() != plan.wanted.len() {
        return Err(EcError::WrongShardCount {
            expected: plan.wanted.len(),
            got: out.len(),
        });
    }
    let mut len: Option<usize> = None;
    for (i, s) in shards.iter().enumerate() {
        if let Some(b) = s {
            match len {
                None => len = Some(b.len()),
                Some(l) if l != b.len() => {
                    return Err(EcError::ShardSizeMismatch {
                        first: l,
                        index: i,
                        got: b.len(),
                    })
                }
                _ => {}
            }
        }
    }
    let shard_len = len.ok_or_else(|| EcError::TooManyErasures {
        missing: (0..plan.n).collect(),
        tolerance: 0,
    })?;
    for r in &plan.reads {
        if shards.get(r.node).copied().flatten().is_none() {
            return Err(EcError::Internal(format!(
                "plan reads node {} but its shard is unavailable",
                r.node
            )));
        }
    }
    let elem_len = plan.element_len(shard_len)?;
    Ok((shard_len, elem_len))
}

/// Runs an explicit schedule: XOR/multiply-accumulate every step into the
/// scratch arena, then assemble the wanted shards into `out` (unsolved
/// element ranges are zero-filled).
pub fn execute_steps(
    plan: &RepairPlan,
    shards: &[Option<&[u8]>],
    scratch: &mut RepairScratch,
    out: &mut [Vec<u8>],
) -> Result<(), EcError> {
    if plan.opaque {
        return Err(EcError::Internal(
            "execute_steps cannot run an opaque plan; use ErasureCode::execute_plan".into(),
        ));
    }
    let (shard_len, elem_len) = check_execution_inputs(plan, shards, out)?;
    let eps = plan.elements_per_shard;
    scratch.begin(plan, elem_len);
    scratch.record_plan_reads(plan, elem_len);

    for (slot, step) in plan.steps.iter().enumerate() {
        // Earlier slots are read-only sources for the current one.
        let (done, rest) = scratch.elems.split_at_mut(slot * elem_len);
        let dst = &mut rest[..elem_len];
        for &(coeff, src) in &step.sources {
            if coeff == 0 {
                continue;
            }
            let src_slice: &[u8] = match scratch.slot_of.get(&src) {
                Some(&s) => &done[s * elem_len..(s + 1) * elem_len],
                None => {
                    let node = src / eps;
                    let offset = (src % eps) * elem_len;
                    let shard = shards.get(node).copied().flatten().ok_or_else(|| {
                        EcError::Internal(format!("source node {node} unavailable mid-plan"))
                    })?;
                    // panic-ok: offset + elem_len <= eps * elem_len == shard_len, validated against the plan
                    &shard[offset..offset + elem_len]
                }
            };
            if coeff == 1 {
                apec_gf::xor_slice(src_slice, dst)
                    .map_err(|e| EcError::Internal(e.to_string()))?;
            } else {
                apec_gf::mul_slice_xor(coeff, src_slice, dst)
                    .map_err(|e| EcError::Internal(e.to_string()))?;
            }
        }
        scratch.slot_of.insert(step.target, slot);
    }

    // panic-ok: scratch.begin() ran at the top of this function
    let io = scratch.io.as_ref().expect("begin() ran");
    for (buf, &w) in out.iter_mut().zip(&plan.wanted) {
        buf.clear();
        buf.resize(shard_len, 0);
        let mut written = 0usize;
        for idx in 0..eps {
            let e = w * eps + idx;
            if plan.unsolved.binary_search(&e).is_ok() {
                continue; // stays zero: the tiered code gave this range up
            }
            let slot = *scratch.slot_of.get(&e).ok_or_else(|| {
                EcError::Internal(format!("plan left wanted element {e} unbuilt"))
            })?;
            buf[idx * elem_len..(idx + 1) * elem_len]
                .copy_from_slice(&scratch.elems[slot * elem_len..(slot + 1) * elem_len]);
            written += elem_len;
        }
        io.record_write(w, written as u64);
    }
    Ok(())
}

/// Runs an opaque plan by assembling a pooled stripe and calling the code's
/// own whole-stripe `reconstruct` (passed as a closure so this stays usable
/// from the trait's default method).
pub fn execute_opaque(
    reconstruct: impl FnOnce(&mut [Option<Vec<u8>>]) -> Result<(), EcError>,
    plan: &RepairPlan,
    shards: &[Option<&[u8]>],
    scratch: &mut RepairScratch,
    out: &mut [Vec<u8>],
) -> Result<(), EcError> {
    let (shard_len, elem_len) = check_execution_inputs(plan, shards, out)?;
    scratch.begin(plan, elem_len);
    scratch.record_plan_reads(plan, elem_len);

    scratch.stripe.resize(plan.n, None);
    for (slot, src) in scratch.stripe.iter_mut().zip(shards) {
        match src {
            Some(bytes) => {
                let mut buf = slot.take().or_else(|| scratch.spare.pop()).unwrap_or_default();
                buf.clear();
                buf.extend_from_slice(bytes);
                *slot = Some(buf);
            }
            None => {
                if let Some(buf) = slot.take() {
                    scratch.spare.push(buf);
                }
            }
        }
    }
    reconstruct(&mut scratch.stripe)?;

    // panic-ok: scratch.begin() ran at the top of this function
    let io = scratch.io.as_ref().expect("begin() ran");
    for (buf, &w) in out.iter_mut().zip(&plan.wanted) {
        let rebuilt = scratch
            .stripe
            .get(w)
            .and_then(|s| s.as_deref())
            .ok_or_else(|| EcError::Internal(format!("reconstruct left shard {w} empty")))?;
        buf.clear();
        buf.extend_from_slice(rebuilt);
        io.record_write(w, shard_len as u64);
    }
    Ok(())
}

/// Convenience wrapper: plan and execute in one call, materializing the
/// wanted shards into `out`. Equivalent to `plan_repair` + `execute_plan`
/// but keeps call sites that never inspect the plan short.
pub fn repair_into(
    code: &dyn ErasureCode,
    erased: &[usize],
    wanted: &[usize],
    shards: &[Option<&[u8]>],
    scratch: &mut RepairScratch,
    out: &mut [Vec<u8>],
) -> Result<RepairPlan, EcError> {
    let plan = code.plan_repair(erased, wanted)?;
    code.execute_plan(&plan, shards, scratch, out)?;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(target: usize, sources: &[(u8, usize)]) -> PlanStep {
        PlanStep {
            target,
            sources: sources.to_vec(),
        }
    }

    #[test]
    fn normalize_rejects_bad_patterns() {
        assert!(normalize_pattern(4, &[5], &[]).is_err());
        assert!(normalize_pattern(4, &[1], &[2]).is_err());
        let (e, w) = normalize_pattern(4, &[3, 1, 1], &[3]).unwrap();
        assert_eq!(e, vec![1, 3]);
        assert_eq!(w, vec![3]);
    }

    #[test]
    fn pruning_drops_unneeded_steps_and_reads() {
        // Two independent targets; wanting only one drops the other's step
        // and its read.
        let steps = vec![step(0, &[(1, 2), (1, 3)]), step(1, &[(1, 4), (1, 5)])];
        let plan = RepairPlan::from_steps(6, 1, &[0, 1], &[0], steps, &[]).unwrap();
        assert_eq!(plan.steps().len(), 1);
        let read_nodes: Vec<usize> = plan.reads().iter().map(|r| r.node).collect();
        assert_eq!(read_nodes, vec![2, 3]);
        assert_eq!(plan.write_fraction(0), 1.0);
        assert_eq!(plan.write_fraction(1), 0.0);
    }

    #[test]
    fn pruning_keeps_dependency_chains() {
        // Rebuilding 1 requires first rebuilding 0 (a chained schedule).
        let steps = vec![step(0, &[(1, 2), (1, 3)]), step(1, &[(1, 0), (1, 4)])];
        let plan = RepairPlan::from_steps(5, 1, &[0, 1], &[1], steps, &[]).unwrap();
        assert_eq!(plan.steps().len(), 2);
        let read_nodes: Vec<usize> = plan.reads().iter().map(|r| r.node).collect();
        assert_eq!(read_nodes, vec![2, 3, 4]);
    }

    #[test]
    fn out_of_order_schedules_are_rejected() {
        let steps = vec![step(1, &[(1, 0), (1, 4)]), step(0, &[(1, 2), (1, 3)])];
        assert!(matches!(
            RepairPlan::from_steps(5, 1, &[0, 1], &[1], steps, &[]),
            Err(EcError::Internal(_))
        ));
    }

    #[test]
    fn uncovered_wanted_elements_are_rejected_unless_unsolved() {
        let steps = vec![step(0, &[(1, 2)])];
        assert!(RepairPlan::from_steps(3, 1, &[0, 1], &[1], steps.clone(), &[]).is_err());
        let plan = RepairPlan::from_steps(3, 1, &[0, 1], &[1], steps, &[1]).unwrap();
        assert_eq!(plan.unsolved(), &[1]);
        assert_eq!(plan.write_fraction(1), 0.0);
        assert!(plan.steps().is_empty(), "unsolved-only want needs no work");
    }

    #[test]
    fn fractions_account_elements_not_shards() {
        // 2 elements per shard; both elements of node 1 feed the rebuild.
        let steps = vec![step(0, &[(1, 2)]), step(1, &[(1, 3), (1, 0)])];
        let plan = RepairPlan::from_steps(2, 2, &[0], &[0], steps, &[]).unwrap();
        assert_eq!(plan.read_fraction(1), 1.0);
        assert_eq!(plan.compute_shards(), 1.5);
        let io = plan.expected_io(8).unwrap();
        assert_eq!(io.node(1).read_bytes, 8);
        assert_eq!(io.node(0).write_bytes, 8);
    }

    #[test]
    fn executor_matches_expected_io_and_bytes() {
        // Toy parity: e0 = e1 + e2 over two survivor nodes.
        let steps = vec![step(0, &[(1, 1), (1, 2)])];
        let plan = RepairPlan::from_steps(3, 1, &[0], &[0], steps, &[]).unwrap();
        let s1 = vec![0xAAu8; 16];
        let s2 = vec![0x0Fu8; 16];
        let shards: Vec<Option<&[u8]>> = vec![None, Some(&s1), Some(&s2)];
        let mut scratch = RepairScratch::new();
        let mut out = vec![Vec::new()];
        execute_steps(&plan, &shards, &mut scratch, &mut out).unwrap();
        assert_eq!(out[0], vec![0xA5u8; 16]);
        let expected = plan.expected_io(16).unwrap();
        let got = scratch.io().unwrap();
        assert_eq!(expected.snapshot(), got.snapshot());
    }

    #[test]
    fn executor_reuses_capacity_across_calls() {
        let steps = vec![step(0, &[(1, 1), (2, 2)])];
        let plan = RepairPlan::from_steps(3, 1, &[0], &[0], steps, &[]).unwrap();
        let s1 = vec![7u8; 64];
        let s2 = vec![9u8; 64];
        let shards: Vec<Option<&[u8]>> = vec![None, Some(&s1), Some(&s2)];
        let mut scratch = RepairScratch::new();
        let mut out = vec![Vec::new()];
        execute_steps(&plan, &shards, &mut scratch, &mut out).unwrap();
        let first = out[0].as_ptr();
        let cap = out[0].capacity();
        execute_steps(&plan, &shards, &mut scratch, &mut out).unwrap();
        assert_eq!(out[0].as_ptr(), first, "output buffer was reused");
        assert_eq!(out[0].capacity(), cap);
    }

    #[test]
    fn opaque_plan_reads_every_survivor() {
        let plan = RepairPlan::opaque(5, 1, &[1, 3], &[1]).unwrap();
        assert!(plan.is_opaque());
        let nodes: Vec<usize> = plan.reads().iter().map(|r| r.node).collect();
        assert_eq!(nodes, vec![0, 2, 4]);
        assert_eq!(plan.total_read_fraction(), 3.0);
    }
}
