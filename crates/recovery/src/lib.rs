//! Approximate recovery of lost video frames.
//!
//! When an Approximate-Code repair cannot rebuild unimportant data (more
//! than `r` failures in a stripe), the affected P/B-frames are gone from
//! the byte store. This crate reproduces the paper's video-recovery module
//! (§3.6.3): each lost frame is synthesised from its nearest decodable
//! neighbours by frame interpolation, and the result is scored with PSNR —
//! the paper reports ≥ 35 dB on average at 1 % unimportant-frame loss,
//! which the `psnr` experiment in `apec-bench` reproduces.
//!
//! The paper uses deep-learning interpolators; this crate substitutes a
//! classical pipeline of increasing quality (documented in DESIGN.md):
//!
//! * [`Interpolator::Hold`] — repeat the nearest neighbour,
//! * [`Interpolator::Linear`] — temporally weighted blend,
//! * [`Interpolator::MotionCompensated`] — global motion estimation by
//!   block search, then motion-corrected blend; on smooth 60 fps content
//!   this comfortably clears the paper's 35 dB bar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apec_video::{DecodedStream, Frame};

/// The interpolation strategy for a lost frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interpolator {
    /// Repeat the nearest surviving frame.
    Hold,
    /// Per-pixel temporally-weighted average of the two neighbours.
    Linear,
    /// Estimate one global displacement between the neighbours (full
    /// search within `search_radius` pixels, sampled on a coarse grid)
    /// and blend along the motion trajectory.
    MotionCompensated {
        /// Maximum displacement, in pixels, the search considers.
        search_radius: usize,
    },
    /// Per-block motion estimation: the frame is tiled into
    /// `block × block` tiles, each with its own displacement search —
    /// handles scenes whose objects move in different directions, at a
    /// quadratic-in-radius cost per tile.
    BlockMotion {
        /// Tile edge length in pixels.
        block: usize,
        /// Maximum displacement per tile.
        search_radius: usize,
    },
}

/// What happened to each lost frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Frames synthesised from two neighbours.
    pub interpolated: Vec<usize>,
    /// Frames synthesised from a single neighbour (stream edge).
    pub extrapolated: Vec<usize>,
    /// Frames with no surviving neighbour at all (left black).
    pub unrecoverable: Vec<usize>,
}

/// Clamped pixel fetch used by the motion-compensated sampler.
#[inline]
fn sample(frame: &Frame, x: isize, y: isize) -> u8 {
    let xc = x.clamp(0, frame.width as isize - 1) as usize;
    let yc = y.clamp(0, frame.height as isize - 1) as usize;
    frame.get(xc, yc)
}

/// SAD between `a` shifted by `(dx, dy)` and `b`, restricted to the tile
/// `[x0, x1) × [y0, y1)` and sampled every `step` pixels.
fn tile_sad(
    a: &Frame,
    b: &Frame,
    dx: isize,
    dy: isize,
    (x0, x1): (usize, usize),
    (y0, y1): (usize, usize),
    step: usize,
) -> u64 {
    let mut sad = 0u64;
    let mut y = y0;
    while y < y1 {
        let mut x = x0;
        while x < x1 {
            let va = sample(a, x as isize + dx, y as isize + dy);
            sad += u64::from(va.abs_diff(b.get(x, y)));
            x += step;
        }
        y += step;
    }
    sad
}

/// Best displacement carrying `prev` onto `next` within one tile.
fn tile_motion(
    prev: &Frame,
    next: &Frame,
    xs: (usize, usize),
    ys: (usize, usize),
    radius: usize,
) -> (isize, isize) {
    let r = radius as isize;
    let mut best = (0isize, 0isize);
    let mut best_key = (u64::MAX, u64::MAX);
    for dy in -r..=r {
        for dx in -r..=r {
            let sad = tile_sad(prev, next, dx, dy, xs, ys, 1);
            let key = (sad, (dx.abs() + dy.abs()) as u64);
            if key < best_key {
                best_key = key;
                best = (dx, dy);
            }
        }
    }
    best
}

/// Sum of absolute differences between `a` shifted by `(dx, dy)` and `b`,
/// sampled every `step` pixels.
fn shifted_sad(a: &Frame, b: &Frame, dx: isize, dy: isize, step: usize) -> u64 {
    let mut sad = 0u64;
    let mut y = 0usize;
    while y < a.height {
        let mut x = 0usize;
        while x < a.width {
            let va = sample(a, x as isize + dx, y as isize + dy);
            let vb = b.get(x, y);
            sad += u64::from(va.abs_diff(vb));
            x += step;
        }
        y += step;
    }
    sad
}

/// Estimates the single dominant displacement carrying `prev` onto `next`.
///
/// Exhaustive integer search in `[-radius, radius]²` on a coarse grid —
/// cheap, deterministic, and adequate for the global drift of the
/// synthetic workload (a real system would plug a learned interpolator in
/// here, as the paper does).
pub fn estimate_global_motion(prev: &Frame, next: &Frame, radius: usize) -> (isize, isize) {
    let step = (prev.width.min(prev.height) / 32).max(1);
    let mut best = (0isize, 0isize);
    let mut best_key = (u64::MAX, u64::MAX);
    let r = radius as isize;
    for dy in -r..=r {
        for dx in -r..=r {
            let sad = shifted_sad(prev, next, dx, dy, step);
            // Prefer smaller displacements on ties for stability.
            let key = (sad, (dx.abs() + dy.abs()) as u64);
            if key < best_key {
                best_key = key;
                best = (dx, dy);
            }
        }
    }
    best
}

/// Synthesises the frame at fractional position `alpha ∈ [0, 1]` between
/// `prev` (alpha = 0) and `next` (alpha = 1).
pub fn interpolate(prev: &Frame, next: &Frame, alpha: f64, method: Interpolator) -> Frame {
    assert_eq!(prev.width, next.width, "frame size mismatch");
    assert_eq!(prev.height, next.height, "frame size mismatch");
    let (w, h) = (prev.width, prev.height);
    match method {
        Interpolator::Hold => {
            if alpha <= 0.5 {
                prev.clone()
            } else {
                next.clone()
            }
        }
        Interpolator::Linear => {
            let pixels = prev
                .pixels
                .iter()
                .zip(&next.pixels)
                .map(|(&a, &b)| {
                    (f64::from(a) * (1.0 - alpha) + f64::from(b) * alpha).round() as u8
                })
                .collect();
            Frame::from_pixels(w, h, pixels)
        }
        Interpolator::MotionCompensated { search_radius } => {
            let (dx, dy) = estimate_global_motion(prev, next, search_radius);
            motion_blend(prev, next, alpha, |_, _| (dx, dy))
        }
        Interpolator::BlockMotion {
            block,
            search_radius,
        } => {
            let block = block.max(4);
            let bw = w.div_ceil(block);
            let bh = h.div_ceil(block);
            let mut motion = vec![(0isize, 0isize); bw * bh];
            for by in 0..bh {
                for bx in 0..bw {
                    let xs = (bx * block, ((bx + 1) * block).min(w));
                    let ys = (by * block, ((by + 1) * block).min(h));
                    motion[by * bw + bx] = tile_motion(prev, next, xs, ys, search_radius);
                }
            }
            motion_blend(prev, next, alpha, |x, y| {
                motion[(y / block) * bw + (x / block)]
            })
        }
    }
}

/// Blends `prev` and `next` at position `alpha` along a per-pixel motion
/// field: a feature at (x, y) in the intermediate frame sat at
/// (x, y) − α·d in prev and moves to (x, y) + (1−α)·d in next.
fn motion_blend(
    prev: &Frame,
    next: &Frame,
    alpha: f64,
    motion_at: impl Fn(usize, usize) -> (isize, isize),
) -> Frame {
    let (w, h) = (prev.width, prev.height);
    let mut pixels = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let (dx, dy) = motion_at(x, y);
            let px = (x as f64 - alpha * dx as f64).round() as isize;
            let py = (y as f64 - alpha * dy as f64).round() as isize;
            let nx = (x as f64 + (1.0 - alpha) * dx as f64).round() as isize;
            let ny = (y as f64 + (1.0 - alpha) * dy as f64).round() as isize;
            let vp = f64::from(sample(prev, px, py));
            let vn = f64::from(sample(next, nx, ny));
            pixels.push((vp * (1.0 - alpha) + vn * alpha).round() as u8);
        }
    }
    Frame::from_pixels(w, h, pixels)
}

/// Fills every `None` frame of a decoded stream by interpolating from its
/// nearest surviving (original, never previously interpolated) neighbours.
///
/// Interpolating only from genuinely decoded frames keeps errors from
/// compounding across a run of consecutive losses; a run is filled by
/// interpolating each member against the run's two outer anchors.
pub fn recover_lost_frames(stream: &mut DecodedStream, method: Interpolator) -> RecoveryReport {
    let n = stream.frames.len();
    let original: Vec<bool> = stream.frames.iter().map(Option::is_some).collect();
    let mut report = RecoveryReport::default();

    for i in 0..n {
        if original[i] {
            continue;
        }
        let prev = (0..i).rev().find(|&j| original[j]);
        let next = (i + 1..n).find(|&j| original[j]);
        match (prev, next) {
            (Some(a), Some(b)) => {
                let alpha = (i - a) as f64 / (b - a) as f64;
                let frame = interpolate(
                    // panic-ok: a was found by scanning original[..], so frames[a] is Some
                    stream.frames[a].as_ref().expect("original frame present"),
                    // panic-ok: b was found by scanning original[..], so frames[b] is Some
                    stream.frames[b].as_ref().expect("original frame present"),
                    alpha,
                    method,
                );
                stream.frames[i] = Some(frame);
                report.interpolated.push(i);
            }
            (Some(a), None) => {
                stream.frames[i] = stream.frames[a].clone();
                report.extrapolated.push(i);
            }
            (None, Some(b)) => {
                stream.frames[i] = stream.frames[b].clone();
                report.extrapolated.push(i);
            }
            (None, None) => {
                report.unrecoverable.push(i);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use apec_video::{psnr_db, SyntheticVideo};

    fn video() -> SyntheticVideo {
        SyntheticVideo::new(64, 48, 60.0, 23, 4)
    }

    #[test]
    fn linear_interpolation_of_static_scene_is_exact() {
        let f = video().frame(0);
        let out = interpolate(&f, &f, 0.5, Interpolator::Linear);
        assert_eq!(out, f);
        let out = interpolate(&f, &f, 0.25, Interpolator::MotionCompensated { search_radius: 2 });
        assert_eq!(out, f);
    }

    #[test]
    fn hold_picks_nearest_side() {
        let a = video().frame(0);
        let b = video().frame(30);
        assert_eq!(interpolate(&a, &b, 0.3, Interpolator::Hold), a);
        assert_eq!(interpolate(&a, &b, 0.7, Interpolator::Hold), b);
    }

    #[test]
    fn interpolation_beats_hold_on_moving_content() {
        let v = video();
        let (a, truth, b) = (v.frame(10), v.frame(11), v.frame(12));
        let hold = interpolate(&a, &b, 0.5, Interpolator::Hold);
        let lin = interpolate(&a, &b, 0.5, Interpolator::Linear);
        assert!(psnr_db(&truth, &lin) >= psnr_db(&truth, &hold));
    }

    #[test]
    fn single_frame_loss_clears_35db_at_60fps() {
        let v = video();
        let (a, truth, b) = (v.frame(20), v.frame(21), v.frame(22));
        for method in [
            Interpolator::Linear,
            Interpolator::MotionCompensated { search_radius: 3 },
        ] {
            let rec = interpolate(&a, &b, 0.5, method);
            let p = psnr_db(&truth, &rec);
            assert!(p > 35.0, "{method:?}: {p} dB");
        }
    }

    #[test]
    fn global_motion_estimate_finds_synthetic_shift() {
        // Shift a frame by a known amount and check the estimator.
        let f = video().frame(0);
        let (w, h) = (f.width, f.height);
        let mut shifted = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                shifted.push(sample(&f, x as isize - 3, y as isize + 2));
            }
        }
        let next = Frame::from_pixels(w, h, shifted);
        // prev shifted by (dx,dy) should match next: the content moved by
        // (+3, -2)^-1 — verify SAD minimum at the true displacement.
        let (dx, dy) = estimate_global_motion(&f, &next, 4);
        assert_eq!((dx, dy), (-3, 2));
    }

    #[test]
    fn recover_lost_frames_fills_everything_with_two_anchors() {
        let v = video();
        let frames: Vec<Frame> = v.frames(12);
        let mut stream = DecodedStream {
            frames: frames.iter().cloned().map(Some).collect(),
        };
        stream.frames[4] = None;
        stream.frames[5] = None;
        stream.frames[9] = None;
        let report = recover_lost_frames(&mut stream, Interpolator::Linear);
        assert_eq!(report.interpolated, vec![4, 5, 9]);
        assert!(report.extrapolated.is_empty());
        assert!(report.unrecoverable.is_empty());
        for (i, f) in stream.frames.iter().enumerate() {
            let f = f.as_ref().unwrap();
            let p = psnr_db(&frames[i], f);
            assert!(p > 35.0, "frame {i}: {p} dB");
        }
    }

    #[test]
    fn edge_losses_extrapolate() {
        let v = video();
        let mut stream = DecodedStream {
            frames: v.frames(6).into_iter().map(Some).collect(),
        };
        stream.frames[0] = None;
        stream.frames[5] = None;
        let report = recover_lost_frames(&mut stream, Interpolator::Linear);
        assert_eq!(report.extrapolated, vec![0, 5]);
        assert_eq!(stream.frames[0], stream.frames[1]);
        assert_eq!(stream.frames[5], stream.frames[4]);
    }

    #[test]
    fn totally_lost_stream_is_reported() {
        let mut stream = DecodedStream {
            frames: vec![None, None],
        };
        let report = recover_lost_frames(&mut stream, Interpolator::Linear);
        assert_eq!(report.unrecoverable, vec![0, 1]);
        assert!(stream.frames.iter().all(Option::is_none));
    }

    #[test]
    fn consecutive_run_uses_outer_anchors_only() {
        // Frames 3..6 lost: each must be interpolated between 2 and 6, not
        // from each other.
        let v = video();
        let frames = v.frames(8);
        let mut stream = DecodedStream {
            frames: frames.iter().cloned().map(Some).collect(),
        };
        for i in 3..6 {
            stream.frames[i] = None;
        }
        let report = recover_lost_frames(&mut stream, Interpolator::Linear);
        assert_eq!(report.interpolated, vec![3, 4, 5]);
        for i in 3..6 {
            let alpha = (i - 2) as f64 / 4.0;
            let expect = interpolate(&frames[2], &frames[6], alpha, Interpolator::Linear);
            assert_eq!(stream.frames[i].as_ref().unwrap(), &expect);
        }
    }
}

#[cfg(test)]
mod block_motion_tests {
    use super::*;
    use apec_video::{psnr_db, SyntheticVideo};

    #[test]
    fn block_motion_interpolation_is_exact_on_static_scenes() {
        let f = SyntheticVideo::new(64, 48, 60.0, 31, 3).frame(0);
        let out = interpolate(
            &f,
            &f,
            0.5,
            Interpolator::BlockMotion {
                block: 16,
                search_radius: 2,
            },
        );
        assert_eq!(out, f);
    }

    #[test]
    fn block_motion_clears_35db_and_rivals_global() {
        // A wider frame gap (4 frames) stresses motion handling; the
        // per-tile estimator must stay above the paper's quality bar and
        // not regress against the global-motion variant.
        let v = SyntheticVideo::new(64, 48, 60.0, 33, 4);
        let (a, truth, b) = (v.frame(10), v.frame(12), v.frame(14));
        let global = interpolate(&a, &b, 0.5, Interpolator::MotionCompensated { search_radius: 3 });
        let block = interpolate(
            &a,
            &b,
            0.5,
            Interpolator::BlockMotion {
                block: 16,
                search_radius: 3,
            },
        );
        let pg = psnr_db(&truth, &global);
        let pb = psnr_db(&truth, &block);
        assert!(pb > 35.0, "block-motion PSNR {pb}");
        assert!(pb > pg - 3.0, "block {pb} vs global {pg}");
    }

    #[test]
    fn tiny_blocks_are_clamped() {
        let v = SyntheticVideo::new(32, 24, 60.0, 35, 2);
        let (a, b) = (v.frame(0), v.frame(2));
        // block=1 would be degenerate; the implementation clamps to >= 4.
        let out = interpolate(
            &a,
            &b,
            0.5,
            Interpolator::BlockMotion {
                block: 1,
                search_radius: 1,
            },
        );
        assert_eq!(out.width, 32);
        assert_eq!(out.height, 24);
    }
}
