//! Azure-style Local Reconstruction Codes (LRC).
//!
//! `LRC(k, l, r)` splits `k` data nodes into `l` local groups, each guarded
//! by one XOR local parity, and adds `r` global parities computed from all
//! data nodes with Cauchy coefficients. Single failures repair inside a
//! group (reading only `k/l` shards — LRC's reason to exist); multi-failure
//! patterns fall back to solving the full generator system.
//!
//! The paper evaluates `LRC(k, 4, 2)` and `LRC(k, 6, 2)` as 3DFT baselines
//! (fault tolerance `r + 1 = 3`) and uses LRC as a base code for
//! `APPR.LRC`. Like the original Azure code, this LRC is non-MDS: it
//! guarantees any `r + 1` failures, and recovers many-but-not-all larger
//! patterns; [`Lrc::reconstruct`] reports a structurally unrecoverable
//! pattern with [`EcError::UnrecoverablePattern`].
//!
//! ```
//! use apec_ec::ErasureCode;
//! use apec_lrc::Lrc;
//!
//! let code = Lrc::new(6, 2, 2).unwrap(); // 6 data, 2 local groups, 2 globals
//! assert_eq!(code.total_nodes(), 10);
//! assert_eq!(code.fault_tolerance(), 3);
//!
//! let data: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 64]).collect();
//! let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
//! let parity = code.encode(&refs).unwrap();
//! let mut stripe: Vec<Option<Vec<u8>>> =
//!     data.into_iter().chain(parity).map(Some).collect();
//! stripe[1] = None; // one failure: repaired from its group alone
//! code.reconstruct(&mut stripe).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apec_ec::plan::{normalize_pattern, PlanStep, RepairPlan};
use apec_ec::{EcError, ErasureCode, UpdatePattern};
use apec_gf::{cauchy, GfMatrix};

/// A Local Reconstruction Code with `k` data nodes, `l` local-parity groups
/// and `r` global parities.
///
/// Shard layout: `[d_0 .. d_{k-1} | lp_0 .. lp_{l-1} | gp_0 .. gp_{r-1}]`.
pub struct Lrc {
    k: usize,
    l: usize,
    r: usize,
    /// `groups[g]` = data-node indices of local group `g`.
    groups: Vec<Vec<usize>>,
    /// r×k Cauchy coefficient matrix for the global parities.
    global_rows: GfMatrix,
}

impl Lrc {
    /// Creates an LRC(k, l, r).
    ///
    /// `k` must be at least `l` so every group is non-empty; groups are
    /// balanced to within one node when `l` does not divide `k`.
    pub fn new(k: usize, l: usize, r: usize) -> Result<Self, EcError> {
        if k == 0 || l == 0 || r == 0 {
            return Err(EcError::InvalidParameters(format!(
                "LRC needs k, l, r >= 1, got k={k} l={l} r={r}"
            )));
        }
        if l > k {
            return Err(EcError::InvalidParameters(format!(
                "LRC cannot have more groups than data nodes: l={l} > k={k}"
            )));
        }
        if r + k > 256 {
            return Err(EcError::InvalidParameters(format!(
                "k + r = {} exceeds GF(2^8) capacity",
                r + k
            )));
        }
        // Balanced contiguous grouping: the first (k % l) groups get one
        // extra node.
        let base = k / l;
        let extra = k % l;
        let mut groups = Vec::with_capacity(l);
        let mut next = 0;
        for g in 0..l {
            let size = base + usize::from(g < extra);
            groups.push((next..next + size).collect());
            next += size;
        }
        let global_rows = cauchy(r, k).map_err(|e| EcError::InvalidParameters(e.to_string()))?;
        Ok(Lrc {
            k,
            l,
            r,
            groups,
            global_rows,
        })
    }

    /// The local groups (data-node indices per group).
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Number of local groups.
    pub fn local_groups(&self) -> usize {
        self.l
    }

    /// Number of global parities.
    pub fn global_parities(&self) -> usize {
        self.r
    }

    /// Index of the local-parity shard of group `g`.
    pub fn local_parity_index(&self, g: usize) -> usize {
        self.k + g
    }

    /// Index of global-parity shard `t`.
    pub fn global_parity_index(&self, t: usize) -> usize {
        self.k + self.l + t
    }

    /// The group a data node belongs to.
    pub fn group_of(&self, data_node: usize) -> usize {
        self.groups
            .iter()
            .position(|g| g.contains(&data_node))
            // panic-ok: the constructor partitions 0..k over the groups exhaustively
            .expect("every data node is grouped")
    }

    /// Full generator matrix: (k + l + r) rows × k columns. Row order
    /// matches the shard layout.
    fn generator(&self) -> GfMatrix {
        let rows = self.k + self.l + self.r;
        let mut g = GfMatrix::zero(rows, self.k);
        for i in 0..self.k {
            g.set(i, i, apec_gf::Gf8::ONE);
        }
        for (gi, group) in self.groups.iter().enumerate() {
            for &d in group {
                g.set(self.k + gi, d, apec_gf::Gf8::ONE);
            }
        }
        for t in 0..self.r {
            for c in 0..self.k {
                g.set(self.k + self.l + t, c, self.global_rows.get(t, c));
            }
        }
        g
    }

    /// Attempts all possible single-missing local repairs, in place.
    /// Returns `true` if any shard was repaired.
    fn local_repair_pass(&self, shards: &mut [Option<Vec<u8>>], len: usize) -> bool {
        let mut progress = false;
        for (gi, group) in self.groups.iter().enumerate() {
            let lp = self.local_parity_index(gi);
            let members: Vec<usize> = group.iter().copied().chain(std::iter::once(lp)).collect();
            let missing: Vec<usize> = members
                .iter()
                .copied()
                // panic-ok: group members and local-parity indices are < total_nodes by construction
                .filter(|&i| shards[i].is_none())
                .collect();
            if missing.len() != 1 {
                continue;
            }
            let mut acc = vec![0u8; len];
            for &m in &members {
                if m == missing[0] {
                    continue;
                }
                // panic-ok: m != missing[0] is the group's only absent member, so shards[m] is Some
                let s = shards[m].as_ref().expect("checked present");
                // panic-ok: check_stripe proved all shards share one length, acc allocated to it
                apec_gf::xor_slice(s, &mut acc).expect("stripe shards share one length");
            }
            // panic-ok: missing[0] is a member index, < total_nodes
            shards[missing[0]] = Some(acc);
            progress = true;
        }
        progress
    }
}

impl ErasureCode for Lrc {
    fn name(&self) -> String {
        format!("LRC({},{},{})", self.k, self.l, self.r)
    }

    fn data_nodes(&self) -> usize {
        self.k
    }

    fn parity_nodes(&self) -> usize {
        self.l + self.r
    }

    fn fault_tolerance(&self) -> usize {
        // Azure LRC guarantees any r+1 arbitrary failures.
        self.r + 1
    }

    fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
        let len = self.check_data_shards(data)?;
        let mut out = Vec::with_capacity(self.l + self.r); // alloc-ok: legacy Vec-returning encode; encode_into is the zero-alloc path
        for group in &self.groups {
            let mut p = vec![0u8; len]; // alloc-ok: legacy Vec-returning encode
            for &d in group {
                // panic-ok: check_data_shards proved equal lengths; p allocated to match
                apec_gf::xor_slice(data[d], &mut p).expect("data shards share one length");
            }
            out.push(p);
        }
        let mut globals = vec![vec![0u8; len]; self.r]; // alloc-ok: legacy Vec-returning encode
        self.global_rows
            .apply(data, &mut globals)
            .map_err(|e| EcError::Internal(e.to_string()))?;
        out.extend(globals);
        Ok(out)
    }

    fn encode_into(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<(), EcError> {
        let len = self.check_data_shards(data)?;
        self.check_parity_bufs(parity, len)?;
        let (locals, globals) = parity.split_at_mut(self.l);
        for (group, p) in self.groups.iter().zip(locals.iter_mut()) {
            p.fill(0);
            for &d in group {
                apec_gf::xor_slice(data[d], p).map_err(|e| EcError::Internal(e.to_string()))?;
            }
        }
        self.global_rows
            .apply_into(data, globals)
            .map_err(|e| EcError::Internal(e.to_string()))
    }

    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        let (len, missing) = self.check_stripe(shards)?;
        if missing.is_empty() {
            return Ok(());
        }

        // Phase 1: cheap local repairs, repeated to a fixed point (one
        // repair can unlock another group's repair only via global shards,
        // but repeating is harmless and keeps the logic obvious).
        while self.local_repair_pass(shards, len) {}

        let still_missing: Vec<usize> = (0..self.total_nodes())
            // panic-ok: check_stripe proved shards.len() == total_nodes()
            .filter(|&i| shards[i].is_none())
            .collect();
        if still_missing.is_empty() {
            return Ok(());
        }

        // Phase 2: global solve. Greedily pick k linearly-independent rows
        // of the generator among surviving shards.
        let gen = self.generator();
        let survivors: Vec<usize> = (0..self.total_nodes())
            // panic-ok: check_stripe proved shards.len() == total_nodes()
            .filter(|&i| shards[i].is_some())
            .collect();
        let mut chosen: Vec<usize> = Vec::with_capacity(self.k);
        for &s in &survivors {
            if chosen.len() == self.k {
                break;
            }
            chosen.push(s);
            if gen.select_rows(&chosen).rank() != chosen.len() {
                chosen.pop();
            }
        }
        if chosen.len() < self.k {
            return Err(EcError::UnrecoverablePattern {
                missing: still_missing,
                detail: format!(
                    "only {} independent surviving equations for {} data nodes",
                    chosen.len(),
                    self.k
                ),
            });
        }

        let inv = gen
            .select_rows(&chosen)
            .invert()
            .map_err(|e| EcError::Internal(format!("independent rows must invert: {e}")))?;
        let chosen_blocks: Vec<&[u8]> = chosen
            .iter()
            // panic-ok: chosen is a subset of survivors, which are Some by construction
            .map(|&i| shards[i].as_deref().expect("chosen rows survive"))
            .collect();

        // Recover missing data nodes.
        let missing_data: Vec<usize> = still_missing
            .iter()
            .copied()
            .filter(|&i| i < self.k)
            .collect();
        if !missing_data.is_empty() {
            let rows = inv.select_rows(&missing_data);
            let mut out = vec![vec![0u8; len]; missing_data.len()];
            rows.apply(&chosen_blocks, &mut out)
                .map_err(|e| EcError::Internal(e.to_string()))?;
            for (&idx, block) in missing_data.iter().zip(out) {
                // panic-ok: idx is a missing index, bounded by check_stripe
                shards[idx] = Some(block);
            }
        }

        // Re-derive any missing parities from complete data.
        let missing_parity: Vec<usize> = still_missing
            .iter()
            .copied()
            .filter(|&i| i >= self.k)
            .collect();
        if !missing_parity.is_empty() {
            let data_blocks: Vec<&[u8]> = (0..self.k)
                // panic-ok: i < k <= total_nodes and missing data was recovered above
                .map(|i| shards[i].as_deref().expect("data complete"))
                .collect();
            let rows = gen.select_rows(&missing_parity);
            let mut out = vec![vec![0u8; len]; missing_parity.len()];
            rows.apply(&data_blocks, &mut out)
                .map_err(|e| EcError::Internal(e.to_string()))?;
            for (&idx, block) in missing_parity.iter().zip(out) {
                // panic-ok: idx is a missing index, bounded by check_stripe
                shards[idx] = Some(block);
            }
        }
        Ok(())
    }

    fn update_pattern(&self) -> UpdatePattern {
        // Paper Table 3: LRC single-write overhead is r + 2 (data node, the
        // group's local parity, and all r globals).
        UpdatePattern {
            node_writes: 2.0 + self.r as f64,
            parity_writes: 1.0 + self.r as f64,
        }
    }

    fn plan_repair(&self, erased: &[usize], wanted: &[usize]) -> Result<RepairPlan, EcError> {
        let n = self.total_nodes();
        let (erased, wanted) = normalize_pattern(n, erased, wanted)?;
        if erased.is_empty() {
            return RepairPlan::from_steps(n, 1, &[], &[], Vec::new(), &[]);
        }
        let mut present: Vec<bool> = (0..n).map(|i| erased.binary_search(&i).is_err()).collect();
        let mut steps: Vec<PlanStep> = Vec::new();

        // Phase 1: simulate the local fixed point; each repair is a pure
        // XOR of the group's other members (data + local parity).
        loop {
            let mut progress = false;
            for (gi, group) in self.groups.iter().enumerate() {
                let lp = self.local_parity_index(gi);
                let members: Vec<usize> =
                    group.iter().copied().chain(std::iter::once(lp)).collect();
                let missing: Vec<usize> = members
                    .iter()
                    .copied()
                    .filter(|&i| !present[i])
                    .collect();
                if missing.len() != 1 {
                    continue;
                }
                let target = missing[0];
                let sources: Vec<(u8, usize)> = members
                    .iter()
                    .copied()
                    .filter(|&m| m != target)
                    .map(|m| (1u8, m))
                    .collect();
                steps.push(PlanStep { target, sources });
                present[target] = true;
                progress = true;
            }
            if !progress {
                break;
            }
        }

        let still_missing: Vec<usize> = (0..n).filter(|&i| !present[i]).collect();
        if !still_missing.is_empty() {
            // Phase 2: mirror `reconstruct`'s greedy global solve — pick k
            // independent surviving generator rows (locally-recovered nodes
            // count as survivors here, exactly as they do at decode time).
            let gen = self.generator();
            let survivors: Vec<usize> = (0..n).filter(|&i| present[i]).collect();
            let mut chosen: Vec<usize> = Vec::with_capacity(self.k);
            for &s in &survivors {
                if chosen.len() == self.k {
                    break;
                }
                chosen.push(s);
                if gen.select_rows(&chosen).rank() != chosen.len() {
                    chosen.pop();
                }
            }
            if chosen.len() < self.k {
                return Err(EcError::UnrecoverablePattern {
                    missing: still_missing,
                    detail: format!(
                        "only {} independent surviving equations for {} data nodes",
                        chosen.len(),
                        self.k
                    ),
                });
            }
            let inv = gen
                .select_rows(&chosen)
                .invert()
                .map_err(|e| EcError::Internal(format!("independent rows must invert: {e}")))?;

            // Missing data node d = row d of inv applied to the chosen
            // shards. Zero coefficients are kept: the matrix decode reads
            // every chosen shard in full.
            for &d in still_missing.iter().filter(|&&i| i < self.k) {
                let sources: Vec<(u8, usize)> = chosen
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| (inv.get(d, j).value(), c))
                    .collect();
                steps.push(PlanStep { target: d, sources });
            }
            // Missing parities re-derive from the (now complete) data.
            for &p in still_missing.iter().filter(|&&i| i >= self.k) {
                let sources: Vec<(u8, usize)> =
                    (0..self.k).map(|t| (gen.get(p, t).value(), t)).collect();
                steps.push(PlanStep { target: p, sources });
            }
        }
        RepairPlan::from_steps(n, 1, &erased, &wanted, steps, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| {
                let mut v = vec![0u8; len];
                rng.fill(v.as_mut_slice());
                v
            })
            .collect()
    }

    fn full_stripe(code: &Lrc, data: &[Vec<u8>]) -> Vec<Option<Vec<u8>>> {
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        data.iter().cloned().chain(parity).map(Some).collect()
    }

    fn combinations(n: usize, f: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        fn rec(n: usize, f: usize, start: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if cur.len() == f {
                out.push(cur.clone());
                return;
            }
            for i in start..n {
                cur.push(i);
                rec(n, f, i + 1, cur, out);
                cur.pop();
            }
        }
        rec(n, f, 0, &mut Vec::new(), &mut out);
        out
    }

    #[test]
    fn parameter_validation() {
        assert!(Lrc::new(0, 1, 2).is_err());
        assert!(Lrc::new(4, 0, 2).is_err());
        assert!(Lrc::new(4, 2, 0).is_err());
        assert!(Lrc::new(3, 4, 2).is_err());
        assert!(Lrc::new(255, 2, 2).is_err());
        assert!(Lrc::new(6, 2, 2).is_ok());
    }

    #[test]
    fn groups_are_balanced_partition() {
        let code = Lrc::new(10, 4, 2).unwrap();
        let sizes: Vec<usize> = code.groups().iter().map(|g| g.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        let mut all: Vec<usize> = code.groups().iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn geometry_and_overhead() {
        let code = Lrc::new(12, 4, 2).unwrap();
        assert_eq!(code.name(), "LRC(12,4,2)");
        assert_eq!(code.total_nodes(), 18);
        assert_eq!(code.fault_tolerance(), 3);
        // Table 3: 1 + (l + r) / k
        assert!((code.storage_overhead() - (1.0 + 6.0 / 12.0)).abs() < 1e-12);
        let up = code.update_pattern();
        assert_eq!(up.node_writes, 4.0);
    }

    #[test]
    fn single_failure_repairs_locally() {
        let code = Lrc::new(8, 4, 2).unwrap();
        let data = random_data(8, 64, 1);
        let full = full_stripe(&code, &data);
        for victim in 0..code.total_nodes() {
            let mut stripe = full.clone();
            stripe[victim] = None;
            code.reconstruct(&mut stripe).unwrap();
            assert_eq!(stripe, full, "victim {victim}");
        }
    }

    #[test]
    fn guaranteed_tolerance_patterns_all_recover() {
        // Any r+1 = 3 failures must decode, for both paper group counts.
        for l in [4usize, 6] {
            let code = Lrc::new(12, l, 2).unwrap();
            let data = random_data(12, 32, 2);
            let full = full_stripe(&code, &data);
            let n = code.total_nodes();
            for f in 1..=3 {
                for pattern in combinations(n, f) {
                    let mut stripe = full.clone();
                    for &i in &pattern {
                        stripe[i] = None;
                    }
                    code.reconstruct(&mut stripe).unwrap_or_else(|e| {
                        panic!("LRC(12,{l},2) failed pattern {pattern:?}: {e}")
                    });
                    assert_eq!(stripe, full, "wrong bytes for {pattern:?}");
                }
            }
        }
    }

    #[test]
    fn some_quad_failures_recover_and_unrecoverable_is_typed() {
        let code = Lrc::new(8, 4, 2).unwrap();
        let data = random_data(8, 16, 3);
        let full = full_stripe(&code, &data);

        // 4 failures spread one per group: all local repairs.
        let mut stripe = full.clone();
        for g in 0..4 {
            stripe[code.groups()[g][0]] = None;
        }
        code.reconstruct(&mut stripe).unwrap();
        assert_eq!(stripe, full);

        // 2 data in one group plus both globals leave only one equation
        // (the group's local parity) for two unknowns.
        let mut stripe = full.clone();
        stripe[0] = None;
        stripe[1] = None;
        stripe[code.global_parity_index(0)] = None;
        stripe[code.global_parity_index(1)] = None;
        match code.reconstruct(&mut stripe) {
            Ok(()) => panic!("expected unrecoverable"),
            Err(EcError::UnrecoverablePattern { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn local_repair_reads_only_group_members() {
        // Structural check: single data failure in group 0 must be fixed
        // without consulting global parities — we verify by corrupting the
        // global parities and observing the repair still yields original
        // data (the local path never touches them).
        let code = Lrc::new(8, 4, 2).unwrap();
        let data = random_data(8, 16, 4);
        let full = full_stripe(&code, &data);
        let mut stripe = full.clone();
        stripe[0] = None;
        for t in 0..2 {
            stripe[code.global_parity_index(t)] = Some(vec![0xFF; 16]);
        }
        code.reconstruct(&mut stripe).unwrap();
        assert_eq!(stripe[0].as_deref(), Some(data[0].as_slice()));
    }

    #[test]
    fn paper_scale_parameters() {
        for k in [5usize, 7, 9, 11, 13, 15, 17] {
            for l in [4usize, 6] {
                if l > k {
                    continue;
                }
                let code = Lrc::new(k, l, 2).unwrap();
                let data = random_data(k, 64, k as u64);
                let full = full_stripe(&code, &data);
                let mut stripe = full.clone();
                stripe[0] = None;
                stripe[k - 1] = None;
                stripe[code.global_parity_index(0)] = None;
                code.reconstruct(&mut stripe).unwrap();
                assert_eq!(stripe, full, "k={k} l={l}");
            }
        }
    }

    #[test]
    fn plan_single_failure_reads_only_the_local_group() {
        // ISSUE acceptance: LRC single-failure plans read only the group.
        let code = Lrc::new(8, 4, 2).unwrap();
        let plan = code.plan_repair(&[0], &[0]).unwrap();
        assert!(!plan.is_opaque());
        let read_nodes: Vec<usize> = plan.reads().iter().map(|r| r.node).collect();
        assert_eq!(read_nodes, vec![1, code.local_parity_index(0)]);
        assert_eq!(plan.total_read_fraction(), 2.0);
        assert_eq!(plan.compute_shards(), 2.0);
    }

    #[test]
    fn plan_execution_matches_reconstruct_all_patterns() {
        let code = Lrc::new(6, 2, 2).unwrap();
        let data = random_data(6, 32, 12);
        let full = full_stripe(&code, &data);
        let n = code.total_nodes();
        let mut scratch = apec_ec::RepairScratch::new();
        for f in 1..=3 {
            for pattern in combinations(n, f) {
                let shards: Vec<Option<&[u8]>> = (0..n)
                    .map(|i| {
                        if pattern.contains(&i) {
                            None
                        } else {
                            full[i].as_deref()
                        }
                    })
                    .collect();
                let plan = code.plan_repair(&pattern, &pattern).unwrap();
                let mut out = vec![Vec::new(); pattern.len()];
                code.execute_plan(&plan, &shards, &mut scratch, &mut out).unwrap();
                for (buf, &e) in out.iter().zip(&pattern) {
                    assert_eq!(Some(&buf[..]), full[e].as_deref(), "pattern {pattern:?} shard {e}");
                }
                assert_eq!(
                    plan.expected_io(32).unwrap().snapshot(),
                    scratch.io().unwrap().snapshot()
                );
                // Partial decode of each shard individually.
                for &w in &pattern {
                    let partial = code.plan_repair(&pattern, &[w]).unwrap();
                    let mut one = vec![Vec::new()];
                    code.execute_plan(&partial, &shards, &mut scratch, &mut one).unwrap();
                    assert_eq!(Some(&one[0][..]), full[w].as_deref());
                }
            }
        }
    }

    #[test]
    fn plan_reports_unrecoverable_patterns() {
        let code = Lrc::new(8, 4, 2).unwrap();
        let pattern = vec![0, 1, code.global_parity_index(0), code.global_parity_index(1)];
        assert!(matches!(
            code.plan_repair(&pattern, &pattern),
            Err(EcError::UnrecoverablePattern { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn random_triple_failures_round_trip(
            k in 4usize..14,
            seed: u64,
            len in 1usize..100,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let l = rng.random_range(2..=k.min(6));
            let code = Lrc::new(k, l, 2).unwrap();
            let data = random_data(k, len, seed);
            let full = full_stripe(&code, &data);
            let n = code.total_nodes();
            let mut victims: Vec<usize> = (0..n).collect();
            victims.shuffle(&mut rng);
            victims.truncate(3);
            let mut stripe = full.clone();
            for &v in &victims {
                stripe[v] = None;
            }
            code.reconstruct(&mut stripe).unwrap();
            prop_assert_eq!(&stripe, &full);
        }
    }
}
