//! Reed-Solomon and Cauchy Reed-Solomon codes over GF(2^8).
//!
//! [`ReedSolomon`] is the classic systematic MDS code the paper benchmarks
//! as `RS(k, 3)` and uses as the base code of `APPR.RS`. Two generator
//! constructions are provided (an ablation in the bench suite compares
//! them):
//!
//! * [`MatrixKind::Vandermonde`] — extended-Vandermonde generator made
//!   systematic by column transformation; the textbook construction.
//! * [`MatrixKind::Cauchy`] — parity rows from a Cauchy matrix, MDS by
//!   construction.
//!
//! Decoding inverts the k×k submatrix of the generator corresponding to the
//! surviving shards; inverted matrices are cached per erasure pattern, so a
//! long repair session pays the O(k³) solve once per pattern.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apec_ec::plan::{normalize_pattern, PlanStep, RepairPlan};
use apec_ec::{EcError, ErasureCode, UpdatePattern};
use apec_gf::{cauchy, identity, systematic_vandermonde, Gf8, GfMatrix};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Which generator-matrix construction to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatrixKind {
    /// Extended Vandermonde, made systematic via column operations.
    Vandermonde,
    /// Identity stacked on a Cauchy parity matrix.
    Cauchy,
}

/// A systematic Reed-Solomon code with `k` data and `r` parity shards.
pub struct ReedSolomon {
    k: usize,
    r: usize,
    kind: MatrixKind,
    /// Full (k+r)×k generator; top k×k block is the identity.
    generator: GfMatrix,
    /// The r×k parity rows of the generator, extracted once at
    /// construction so `encode` does not re-select (and re-allocate) them
    /// on every stripe.
    parity_rows: GfMatrix,
    /// Decode-matrix cache keyed by the sorted list of missing shards.
    /// Entries are shared out as `Arc`s so cache hits never copy the matrix.
    decode_cache: Mutex<HashMap<Vec<usize>, Arc<GfMatrix>>>,
}

impl ReedSolomon {
    /// Creates an RS(k, r) code.
    ///
    /// Fails when `k == 0`, `r == 0` or the geometry exceeds the field
    /// (k + r must be ≤ 255 for Vandermonde, ≤ 256 for Cauchy).
    pub fn new(k: usize, r: usize, kind: MatrixKind) -> Result<Self, EcError> {
        if k == 0 || r == 0 {
            return Err(EcError::InvalidParameters(format!(
                "RS needs k >= 1 and r >= 1, got k={k} r={r}"
            )));
        }
        let generator = match kind {
            MatrixKind::Vandermonde => systematic_vandermonde(k, r)
                .map_err(|e| EcError::InvalidParameters(e.to_string()))?,
            MatrixKind::Cauchy => {
                let par = cauchy(r, k).map_err(|e| EcError::InvalidParameters(e.to_string()))?;
                let mut g = GfMatrix::zero(k + r, k);
                let id = identity(k);
                for row in 0..k {
                    for col in 0..k {
                        g.set(row, col, id.get(row, col));
                    }
                }
                for row in 0..r {
                    for col in 0..k {
                        g.set(k + row, col, par.get(row, col));
                    }
                }
                g
            }
        };
        let parity_rows = generator.select_rows(&(k..k + r).collect::<Vec<_>>());
        Ok(ReedSolomon {
            k,
            r,
            kind,
            generator,
            parity_rows,
            decode_cache: Mutex::new(HashMap::new()),
        })
    }

    /// Convenience constructor for the default (Vandermonde) construction.
    pub fn vandermonde(k: usize, r: usize) -> Result<Self, EcError> {
        Self::new(k, r, MatrixKind::Vandermonde)
    }

    /// Convenience constructor for the Cauchy construction.
    pub fn cauchy(k: usize, r: usize) -> Result<Self, EcError> {
        Self::new(k, r, MatrixKind::Cauchy)
    }

    /// The generator construction in use.
    pub fn kind(&self) -> MatrixKind {
        self.kind
    }

    /// Borrow the full generator matrix (rows: k data then r parity).
    pub fn generator(&self) -> &GfMatrix {
        &self.generator
    }

    /// The inverted decode matrix for a given erasure pattern, cached.
    fn decode_matrix(
        &self,
        missing: &[usize],
        survivors: &[usize],
    ) -> Result<Arc<GfMatrix>, EcError> {
        let key: Vec<usize> = missing.to_vec(); // clone-ok: tiny pattern key, not shard bytes
        if let Some(m) = self.decode_cache.lock().get(&key) {
            return Ok(Arc::clone(m));
        }
        let sub = self.generator.select_rows(&survivors[..self.k]);
        let inv = sub.invert().map_err(|e| {
            EcError::Internal(format!(
                "survivor submatrix must be invertible for an MDS code: {e}"
            ))
        })?;
        let inv = Arc::new(inv);
        self.decode_cache
            .lock()
            .insert(key, Arc::clone(&inv));
        Ok(inv)
    }

    #[cfg(test)]
    fn cached_patterns(&self) -> usize {
        self.decode_cache.lock().len()
    }
}

impl ErasureCode for ReedSolomon {
    fn name(&self) -> String {
        match self.kind {
            MatrixKind::Vandermonde => format!("RS({},{})", self.k, self.r),
            MatrixKind::Cauchy => format!("CRS({},{})", self.k, self.r),
        }
    }

    fn data_nodes(&self) -> usize {
        self.k
    }

    fn parity_nodes(&self) -> usize {
        self.r
    }

    fn fault_tolerance(&self) -> usize {
        self.r
    }

    fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
        let len = self.check_data_shards(data)?;
        let mut out = vec![vec![0u8; len]; self.r]; // alloc-ok: legacy Vec-returning encode; encode_into is the zero-alloc path
        self.parity_rows
            .apply(data, &mut out)
            .map_err(|e| EcError::Internal(e.to_string()))?;
        Ok(out)
    }

    fn encode_into(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) -> Result<(), EcError> {
        let len = self.check_data_shards(data)?;
        self.check_parity_bufs(parity, len)?;
        self.parity_rows
            .apply_into(data, parity)
            .map_err(|e| EcError::Internal(e.to_string()))
    }

    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        let (len, missing) = self.check_stripe(shards)?;
        if missing.is_empty() {
            return Ok(());
        }
        if missing.len() > self.r {
            return Err(EcError::TooManyErasures {
                missing,
                tolerance: self.r,
            });
        }
        let survivors: Vec<usize> = (0..self.total_nodes())
            // panic-ok: check_stripe proved shards.len() == total_nodes()
            .filter(|&i| shards[i].is_some())
            .collect();

        // Recover the data shards first: data = inv(G[survivors]) applied
        // to the first k survivor shards.
        let inv = self.decode_matrix(&missing, &survivors)?;
        let survivor_blocks: Vec<&[u8]> = survivors[..self.k]
            .iter()
            // panic-ok: survivors collected from shards[i].is_some() just above
            .map(|&i| shards[i].as_deref().expect("survivor present"))
            .collect();

        let missing_data: Vec<usize> = missing.iter().copied().filter(|&i| i < self.k).collect();
        if !missing_data.is_empty() {
            // Only compute the generator rows we actually need.
            let rows = inv.select_rows(&missing_data);
            let mut out = vec![vec![0u8; len]; missing_data.len()];
            rows.apply(&survivor_blocks, &mut out)
                .map_err(|e| EcError::Internal(e.to_string()))?;
            for (&idx, block) in missing_data.iter().zip(out) {
                // panic-ok: idx is a missing index, bounded by check_stripe
                shards[idx] = Some(block);
            }
        }

        // Recompute missing parities from the (now complete) data shards.
        let missing_parity: Vec<usize> =
            missing.iter().copied().filter(|&i| i >= self.k).collect();
        if !missing_parity.is_empty() {
            let data_blocks: Vec<&[u8]> = (0..self.k)
                // panic-ok: i < k <= total_nodes and every data shard was recovered above
                .map(|i| shards[i].as_deref().expect("data recovered above"))
                .collect();
            let rows = self.generator.select_rows(&missing_parity);
            let mut out = vec![vec![0u8; len]; missing_parity.len()];
            rows.apply(&data_blocks, &mut out)
                .map_err(|e| EcError::Internal(e.to_string()))?;
            for (&idx, block) in missing_parity.iter().zip(out) {
                // panic-ok: idx is a missing index, bounded by check_stripe
                shards[idx] = Some(block);
            }
        }
        Ok(())
    }

    fn update_pattern(&self) -> UpdatePattern {
        // Paper Table 3: RS single-write overhead is r + 1.
        UpdatePattern {
            node_writes: 1.0 + self.r as f64,
            parity_writes: self.r as f64,
        }
    }

    fn plan_repair(&self, erased: &[usize], wanted: &[usize]) -> Result<RepairPlan, EcError> {
        let n = self.total_nodes();
        let (erased, wanted) = normalize_pattern(n, erased, wanted)?;
        if erased.len() > self.r {
            return Err(EcError::TooManyErasures {
                missing: erased,
                tolerance: self.r,
            });
        }
        if erased.is_empty() {
            return RepairPlan::from_steps(n, 1, &[], &[], Vec::new(), &[]);
        }
        let survivors: Vec<usize> = (0..n).filter(|i| !erased.contains(i)).collect();
        // Survivors are ascending, so the first k are exactly the decode
        // basis `reconstruct` uses (all surviving data nodes sort first).
        let basis = &survivors[..self.k];
        let inv = self.decode_matrix(&erased, &survivors)?;

        // One composed step per erased node: an erased data shard w is row w
        // of inv applied to the basis; an erased parity p is G[p] · inv — a
        // single k-term combination instead of "decode all data, re-encode".
        // Zero coefficients are kept on purpose: the matrix decoder fetches
        // every basis shard in full regardless of sparsity.
        let mut steps = Vec::with_capacity(erased.len());
        for &e in &erased {
            let coeff_of = |j: usize| -> Gf8 {
                if e < self.k {
                    inv.get(e, j)
                } else {
                    (0..self.k).fold(Gf8::ZERO, |acc, t| {
                        acc + self.generator.get(e, t) * inv.get(t, j)
                    })
                }
            };
            let sources: Vec<(u8, usize)> = basis
                .iter()
                .enumerate()
                .map(|(j, &s)| (coeff_of(j).value(), s))
                .collect();
            steps.push(PlanStep { target: e, sources });
        }
        RepairPlan::from_steps(n, 1, &erased, &wanted, steps, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| {
                let mut v = vec![0u8; len];
                rng.fill(v.as_mut_slice());
                v
            })
            .collect()
    }

    fn full_stripe(code: &ReedSolomon, data: &[Vec<u8>]) -> Vec<Option<Vec<u8>>> {
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        data.iter().cloned().chain(parity).map(Some).collect()
    }

    /// Enumerates all f-subsets of 0..n.
    fn combinations(n: usize, f: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut combo: Vec<usize> = (0..f).collect();
        if f == 0 || f > n {
            return out;
        }
        loop {
            out.push(combo.clone());
            let mut i = f;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if combo[i] != i + n - f {
                    break;
                }
                if i == 0 {
                    return out;
                }
            }
            combo[i] += 1;
            for j in i + 1..f {
                combo[j] = combo[j - 1] + 1;
            }
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ReedSolomon::vandermonde(0, 3).is_err());
        assert!(ReedSolomon::vandermonde(3, 0).is_err());
        assert!(ReedSolomon::vandermonde(250, 20).is_err());
        assert!(ReedSolomon::cauchy(250, 20).is_err());
    }

    #[test]
    fn names_include_parameters() {
        assert_eq!(ReedSolomon::vandermonde(5, 3).unwrap().name(), "RS(5,3)");
        assert_eq!(ReedSolomon::cauchy(5, 3).unwrap().name(), "CRS(5,3)");
    }

    #[test]
    fn exhaustive_erasure_patterns_small() {
        for kind in [MatrixKind::Vandermonde, MatrixKind::Cauchy] {
            let code = ReedSolomon::new(4, 3, kind).unwrap();
            let data = random_data(4, 64, 5);
            let full = full_stripe(&code, &data);
            for f in 1..=3 {
                for pattern in combinations(7, f) {
                    let mut stripe = full.clone();
                    for &i in &pattern {
                        stripe[i] = None;
                    }
                    code.reconstruct(&mut stripe)
                        .unwrap_or_else(|e| panic!("{kind:?} failed pattern {pattern:?}: {e}"));
                    assert_eq!(stripe, full, "{kind:?} wrong bytes for {pattern:?}");
                }
            }
        }
    }

    #[test]
    fn too_many_erasures_rejected_and_untouched() {
        let code = ReedSolomon::vandermonde(4, 2).unwrap();
        let data = random_data(4, 32, 6);
        let full = full_stripe(&code, &data);
        let mut stripe = full.clone();
        stripe[0] = None;
        stripe[1] = None;
        stripe[4] = None;
        let snapshot = stripe.clone();
        let err = code.reconstruct(&mut stripe).unwrap_err();
        assert!(
            matches!(err, EcError::TooManyErasures { ref missing, tolerance: 2 } if missing == &vec![0, 1, 4])
        );
        assert_eq!(stripe, snapshot);
    }

    #[test]
    fn paper_scale_parameters_round_trip() {
        // The evaluation sweeps k = 5..17 with r = 3.
        for k in [5usize, 7, 9, 11, 13, 15, 17] {
            let code = ReedSolomon::vandermonde(k, 3).unwrap();
            let data = random_data(k, 128, k as u64);
            let full = full_stripe(&code, &data);
            let mut stripe = full.clone();
            stripe[0] = None;
            stripe[k / 2] = None;
            stripe[k + 2] = None;
            code.reconstruct(&mut stripe).unwrap();
            assert_eq!(stripe, full, "k={k}");
        }
    }

    #[test]
    fn decode_matrix_cache_hits_are_correct() {
        let code = ReedSolomon::cauchy(6, 3).unwrap();
        let data1 = random_data(6, 64, 7);
        let data2 = random_data(6, 64, 8);
        for data in [data1, data2] {
            let full = full_stripe(&code, &data);
            let mut stripe = full.clone();
            stripe[1] = None;
            stripe[3] = None;
            code.reconstruct(&mut stripe).unwrap();
            assert_eq!(stripe, full);
        }
        assert_eq!(code.cached_patterns(), 1, "same pattern cached once");
    }

    #[test]
    fn zero_length_shards_are_legal() {
        let code = ReedSolomon::vandermonde(3, 2).unwrap();
        let data = vec![vec![]; 3];
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        assert!(parity.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn update_pattern_matches_table3() {
        let code = ReedSolomon::vandermonde(9, 3).unwrap();
        let up = code.update_pattern();
        assert_eq!(up.node_writes, 4.0);
        assert_eq!(up.parity_writes, 3.0);
        assert!((code.storage_overhead() - 12.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn systematic_data_shards_untouched_by_encode() {
        let code = ReedSolomon::cauchy(5, 3).unwrap();
        let data = random_data(5, 100, 9);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let before: Vec<Vec<u8>> = data.clone();
        let _ = code.encode(&refs).unwrap();
        assert_eq!(data, before);
    }

    #[test]
    fn segmented_parallel_encode_matches_serial() {
        let code = ReedSolomon::vandermonde(5, 3).unwrap();
        let data = random_data(5, 8192, 10);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = code.encode(&refs).unwrap();
        let parallel = apec_ec::parallel::encode_segmented(&code, &refs, 1024, 4).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn plan_partial_decode_reads_exactly_k_shards() {
        // ISSUE acceptance: a degraded single-shard read on RS(k,r) reads
        // exactly k survivor shards and materializes only the wanted shard.
        let code = ReedSolomon::vandermonde(5, 3).unwrap();
        let plan = code.plan_repair(&[1, 6], &[1]).unwrap();
        assert!(!plan.is_opaque());
        assert_eq!(plan.reads().len(), 5);
        assert_eq!(plan.total_read_fraction(), 5.0);
        assert_eq!(plan.wanted(), &[1]);
        assert_eq!(plan.steps().len(), 1, "only the wanted shard is computed");
        assert_eq!(plan.compute_shards(), 5.0);
    }

    #[test]
    fn plan_execution_matches_reconstruct_all_patterns() {
        for kind in [MatrixKind::Vandermonde, MatrixKind::Cauchy] {
            let code = ReedSolomon::new(4, 3, kind).unwrap();
            let data = random_data(4, 48, 11);
            let full = full_stripe(&code, &data);
            let mut scratch = apec_ec::RepairScratch::new();
            for f in 1..=3 {
                for pattern in combinations(7, f) {
                    let shards: Vec<Option<&[u8]>> = (0..7)
                        .map(|i| {
                            if pattern.contains(&i) {
                                None
                            } else {
                                full[i].as_deref()
                            }
                        })
                        .collect();
                    // Full repair of the pattern.
                    let plan = code.plan_repair(&pattern, &pattern).unwrap();
                    let mut out = vec![Vec::new(); pattern.len()];
                    code.execute_plan(&plan, &shards, &mut scratch, &mut out).unwrap();
                    for (buf, &e) in out.iter().zip(&pattern) {
                        assert_eq!(
                            Some(&buf[..]),
                            full[e].as_deref(),
                            "{kind:?} pattern {pattern:?} shard {e}"
                        );
                    }
                    assert_eq!(
                        plan.expected_io(48).unwrap().snapshot(),
                        scratch.io().unwrap().snapshot(),
                        "plan-reported I/O must match executed I/O"
                    );
                    // Partial decode of each single shard in the pattern.
                    for &w in &pattern {
                        let partial = code.plan_repair(&pattern, &[w]).unwrap();
                        assert_eq!(partial.steps().len(), 1);
                        let mut one = vec![Vec::new()];
                        code.execute_plan(&partial, &shards, &mut scratch, &mut one)
                            .unwrap();
                        assert_eq!(Some(&one[0][..]), full[w].as_deref());
                    }
                }
            }
        }
    }

    #[test]
    fn plan_shares_the_reconstruct_decode_cache() {
        let code = ReedSolomon::vandermonde(5, 3).unwrap();
        let _ = code.plan_repair(&[0, 6], &[0]).unwrap();
        let _ = code.plan_repair(&[0, 6], &[6]).unwrap();
        assert_eq!(code.cached_patterns(), 1, "one inversion per pattern");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_round_trips(
            k in 1usize..12,
            r in 1usize..5,
            len in 1usize..200,
            seed: u64,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            for kind in [MatrixKind::Vandermonde, MatrixKind::Cauchy] {
                let code = ReedSolomon::new(k, r, kind).unwrap();
                let data = random_data(k, len, seed);
                let full = full_stripe(&code, &data);
                let n = k + r;
                let f = rng.random_range(1..=r.min(n));
                let mut victims: Vec<usize> = (0..n).collect();
                victims.shuffle(&mut rng);
                victims.truncate(f);
                let mut stripe = full.clone();
                for &v in &victims {
                    stripe[v] = None;
                }
                code.reconstruct(&mut stripe).unwrap();
                prop_assert_eq!(&stripe, &full);
            }
        }

        #[test]
        fn both_kinds_recover_identical_data(seed: u64, len in 1usize..64) {
            // Parity bytes differ between constructions, but recovered
            // data must always equal the original.
            let k = 5; let r = 3;
            let data = random_data(k, len, seed);
            for kind in [MatrixKind::Vandermonde, MatrixKind::Cauchy] {
                let code = ReedSolomon::new(k, r, kind).unwrap();
                let full = full_stripe(&code, &data);
                let mut stripe = full.clone();
                stripe[0] = None; stripe[2] = None; stripe[4] = None;
                code.reconstruct(&mut stripe).unwrap();
                for i in 0..k {
                    prop_assert_eq!(stripe[i].as_deref().unwrap(), data[i].as_slice());
                }
            }
        }
    }
}
