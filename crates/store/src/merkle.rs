//! Merkle trees over an object's shard digests.
//!
//! Layout: the leaves of stripe `s` are the SHA-256 digests of each
//! node's shard payload (post-CRC-strip), in node order. A stripe root
//! hashes the concatenated leaves under a `0x01` interior prefix; the
//! object root hashes the concatenated stripe roots under the same
//! prefix. Leaves are hashed under a `0x00` prefix so a leaf can never
//! be confused with an interior node (second-preimage hardening).
//!
//! Why both CRC *and* Merkle? The per-shard CRC is cheap and catches
//! bit-rot locally, but an attacker (or a buggy repair) that rewrites a
//! shard can recompute its CRC. The manifest's digests are written once
//! at put time (and re-derived only by repair, which re-commits the
//! manifest atomically), so a degraded read can compare every survivor
//! against its recorded leaf and pinpoint exactly which node is lying —
//! instead of feeding poisoned symbols to the decoder and producing
//! plausible-looking garbage.

use crate::hash::{Digest, Sha256};

/// Domain-separation prefix for leaf hashes.
const LEAF_TAG: u8 = 0x00;
/// Domain-separation prefix for interior hashes.
const NODE_TAG: u8 = 0x01;

/// Hash one shard payload into its manifest leaf.
pub fn leaf(payload: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[LEAF_TAG]);
    h.update(payload);
    h.finish()
}

/// Combine an ordered slice of child digests into an interior node.
pub fn interior(children: &[Digest]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[NODE_TAG]);
    for d in children {
        h.update(&d.0);
    }
    h.finish()
}

/// Root over one stripe's leaves (node order).
pub fn stripe_root(leaves: &[Digest]) -> Digest {
    interior(leaves)
}

/// Object root over all stripe roots (stripe order).
pub fn object_root(stripe_roots: &[Digest]) -> Digest {
    interior(stripe_roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha256;

    #[test]
    fn leaf_differs_from_plain_hash_and_interior() {
        let payload = b"shard payload";
        let l = leaf(payload);
        assert_ne!(l, sha256(payload), "leaves are domain-separated");
        assert_ne!(l, interior(&[l]), "interior of one leaf != the leaf");
    }

    #[test]
    fn root_is_order_sensitive() {
        let a = leaf(b"a");
        let b = leaf(b"b");
        assert_ne!(stripe_root(&[a, b]), stripe_root(&[b, a]));
    }

    #[test]
    fn any_leaf_change_moves_the_object_root() {
        let stripes: Vec<Vec<Digest>> = (0..3)
            .map(|s| (0..4).map(|n| leaf(format!("{s}/{n}").as_bytes())).collect())
            .collect();
        let roots: Vec<Digest> = stripes.iter().map(|l| stripe_root(l)).collect();
        let base = object_root(&roots);
        for (s, stripe_leaves) in stripes.iter().enumerate() {
            for n in 0..stripe_leaves.len() {
                let mut mutated = stripes.clone();
                mutated[s][n] = leaf(b"tampered");
                let new_roots: Vec<Digest> = mutated.iter().map(|l| stripe_root(l)).collect();
                assert_ne!(object_root(&new_roots), base, "leaf ({s},{n})");
            }
        }
    }
}
