//! apec-store — the thread-safe on-disk object store beneath the vault
//! CLI and the serving daemon.
//!
//! This crate extracts the storage stack that used to live inside
//! `apec`'s one-shot `put`/`get` commands and hardens it for a long-lived
//! concurrent server:
//!
//! | module | role |
//! |---|---|
//! | [`crc`] | std-only CRC-32 (IEEE) over shard payloads |
//! | [`hash`] | std-only SHA-256 and hex [`hash::Digest`]s |
//! | [`merkle`] | per-object Merkle trees over stripe shard digests |
//! | [`json`] | dependency-free JSON reader/writer for the metadata files |
//! | [`meta`] | config / state / manifest schemas + crash-safe atomic writes |
//! | [`lock_table`] | fixed-width sharded object lock table (ordered pair path) |
//! | [`store`] | the [`Store`] handle: locked, integrity-checked object I/O |
//!
//! On-disk layout (one directory per store):
//!
//! ```text
//! store/
//!   config.json            code parameters (atomic: tmp + rename)
//!   state.json             dead-node set   (atomic: tmp + rename)
//!   nodes/<n>/<obj>_<s>.shard   [crc32 LE | payload] per (node, object, stripe)
//!   objects/<id>.json      manifest: lengths + Merkle leaves + root (atomic)
//! ```
//!
//! Every shard file is CRC-framed so bit-rot is *detected*, not just
//! reconstructed around, and every object carries a Merkle manifest over
//! its shard digests so a degraded read can pinpoint exactly which
//! survivor is lying even when the per-shard CRC was recomputed by the
//! corruptor. Metadata writes go through a temp file and an atomic
//! rename, so a crash mid-write leaves the previous version intact and a
//! truncated file surfaces as a typed [`StoreError::Corrupt`], never a
//! panic or a silent misparse.
//!
//! The [`Store`] handle is `Sync`: reads of distinct objects run fully in
//! parallel (modulo rare shard collisions in the fixed-width
//! [`lock_table`]), reads of one object run in parallel with each other,
//! and writers (put / kill / repair) are excluded at object or topology
//! granularity — see the locking table in [`store`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod hash;
pub mod json;
pub mod lock_table;
pub mod merkle;
pub mod meta;
pub mod store;

pub use meta::{Manifest, ObjectMeta, StoreConfig, StoreState};
pub use store::{
    BitrotHit, ObjectRepair, ObjectScan, ReadOutcome, RepairSummary, ShardHealth, Store,
    StoreSession, StripeScan,
};

use std::fmt;

/// Store-level errors, with enough context to be actionable from a shell
/// or a wire protocol.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem problem.
    Io(std::io::Error),
    /// Malformed or missing store metadata (truncated JSON, bad Merkle
    /// root, wrong types) — the store refuses to guess.
    Corrupt(String),
    /// User error (bad id, bad parameters, duplicate object, ...).
    User(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
            StoreError::User(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<apec_ec::EcError> for StoreError {
    fn from(e: apec_ec::EcError) -> Self {
        StoreError::User(format!("codec: {e}"))
    }
}
