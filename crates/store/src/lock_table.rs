//! Sharded per-object lock table for the [`Store`](crate::Store).
//!
//! The store used to keep one lazily-created `Arc<RwLock<()>>` per
//! object id inside a `Mutex<HashMap>`. That design had two costs: the
//! map grew monotonically (a long-lived daemon serving millions of ids
//! leaks an `Arc` + `RwLock` per id forever), and every acquisition
//! took the map mutex *before* the object lock — a hidden second lock
//! class on every hot-path read.
//!
//! This table replaces the map with a fixed array of [`SHARD_COUNT`]
//! reader-writer cells. An object id hashes (FNV-1a) to one cell:
//!
//! * memory is O(`SHARD_COUNT`), independent of how many ids exist;
//! * acquisition is hash + one lock — no map mutex on the path;
//! * two objects that collide in a cell falsely contend, but reads
//!   (the common case) still share the cell, so only writer/writer and
//!   writer/reader collisions serialise — with 64 cells and object-id
//!   working sets in the tens, collisions are rare and harmless.
//!
//! # Lock ordering
//!
//! A single-cell guard never takes a second cell, so the table alone
//! cannot deadlock. The two-object path ([`LockTable::write_pair`],
//! used by multi-object maintenance) locks its two cells in **ascending
//! shard-index order** — the total order that makes opposite-argument
//! callers (`write_pair("a", "b")` racing `write_pair("b", "a")`)
//! converge on the same acquisition sequence instead of deadlocking.
//! The claim is machine-checked twice:
//!
//! * `cargo xtask lint` sees the second acquisition inside `write_pair`
//!   as a same-class cross-lock site; the `lock-ok` waiver on it is the
//!   auditable record of the ordering argument;
//! * the [`loom_model`] module (`RUSTFLAGS="--cfg loom" cargo test -p
//!   apec-store --lib lock_table --release`) explores every
//!   interleaving of two threads taking two cells in opposite argument
//!   order and proves none deadlocks; a std-thread stress test runs the
//!   same shape on every normal CI pass.

#[cfg(loom)]
use loom::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};
#[cfg(not(loom))]
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Number of lock cells. A power of two so the hash folds with a mask;
/// 64 keeps the table at one cache line of lock words per few objects
/// while making writer collisions between distinct hot ids unlikely.
#[cfg(not(loom))]
pub const SHARD_COUNT: usize = 64;
/// Under loom the state space must stay tractable: two cells are enough
/// to model every ordering the full-width table can exhibit, because
/// cells are independent and only relative order matters.
#[cfg(loom)]
pub const SHARD_COUNT: usize = 2;

/// Acquire a read guard, absorbing poisoning from a panicked holder
/// (the guarded data lives on disk; the in-memory token carries none).
fn read_guard<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match lock.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Acquire a write guard, absorbing poisoning.
fn write_guard<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match lock.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Fixed-width sharded lock table mapping object ids to reader-writer
/// cells. See the module docs for the design and ordering discipline.
pub struct LockTable {
    cells: Vec<RwLock<()>>,
}

impl Default for LockTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Write guards over the (one or two) cells covering a pair of object
/// ids, released together on drop. Field order is the drop order —
/// the second-acquired cell unlocks first, the exact reverse of
/// acquisition.
pub struct PairWriteGuard<'a> {
    _second: Option<RwLockWriteGuard<'a, ()>>,
    _first: RwLockWriteGuard<'a, ()>,
}

impl LockTable {
    /// A table with [`SHARD_COUNT`] unlocked cells.
    pub fn new() -> Self {
        LockTable {
            cells: (0..SHARD_COUNT).map(|_| RwLock::new(())).collect(),
        }
    }

    /// FNV-1a over the id bytes, folded to a shard index. Deterministic
    /// across runs (no RandomState) so lock-contention behaviour is
    /// reproducible under the load harness.
    fn shard_of(id: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in id.as_bytes() {
            h ^= u64::from(*b); // raw-xor-ok: FNV-1a hash mixing, not a codec kernel
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        (h as usize) & (SHARD_COUNT - 1)
    }

    /// The cell at `idx`. Total without a panic path: `idx` is already
    /// masked below `SHARD_COUNT`, and the `last()` fallback keeps the
    /// lint's panic-freedom argument structural rather than arithmetic.
    fn cell(&self, idx: usize) -> &RwLock<()> {
        match self.cells.get(idx).or_else(|| self.cells.last()) {
            Some(cell) => cell,
            // panic-ok: cells is built with SHARD_COUNT >= 1 entries in new()
            None => unreachable!("lock table has at least one cell"),
        }
    }

    /// Shared lock covering `id` — reads of one object run concurrently
    /// with each other and with traffic on other objects.
    pub fn read_lock(&self, id: &str) -> RwLockReadGuard<'_, ()> {
        read_guard(self.cell(Self::shard_of(id)))
    }

    /// Exclusive lock covering `id`.
    pub fn write_lock(&self, id: &str) -> RwLockWriteGuard<'_, ()> {
        write_guard(self.cell(Self::shard_of(id)))
    }

    /// Exclusive locks covering both `a` and `b`, for multi-object
    /// operations that must exclude traffic on either id atomically.
    /// Cells are acquired in ascending shard-index order regardless of
    /// argument order; when both ids share a cell only one lock is
    /// taken (a same-cell double-write would self-deadlock).
    pub fn write_pair(&self, a: &str, b: &str) -> PairWriteGuard<'_> {
        let (i, j) = (Self::shard_of(a), Self::shard_of(b));
        let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
        let first = write_guard(self.cell(lo));
        let second = if lo == hi {
            None
        } else {
            // lock-ok: second cell taken strictly above the held one in the ascending shard-index total order (lo < hi); the lock_table loom model proves opposite-argument callers cannot deadlock
            Some(write_guard(self.cell(hi)))
        };
        PairWriteGuard {
            _second: second,
            _first: first,
        }
    }
}

/// Exhaustive loom check of the pair path: two threads take write
/// locks over the same two ids in *opposite argument order*. Without
/// the ascending-index discipline this is the textbook AB/BA deadlock;
/// loom explores every interleaving and proves both threads always
/// complete. Ids are chosen so they land in distinct cells under the
/// loom-width table (`SHARD_COUNT == 2`).
#[cfg(loom)]
mod loom_model {
    use super::{LockTable, SHARD_COUNT};
    use loom::sync::Arc;
    use loom::thread;

    /// Two ids guaranteed to occupy different cells.
    fn distinct_ids() -> (&'static str, &'static str) {
        let candidates = ["a", "b", "c", "d", "e"];
        for x in candidates {
            for y in candidates {
                if LockTable::shard_of(x) != LockTable::shard_of(y) {
                    return (x, y);
                }
            }
        }
        // panic-ok: loom harness helper, never compiled into the crate
        unreachable!("{SHARD_COUNT} cells cannot swallow five candidate ids");
    }

    #[test]
    fn opposite_order_write_pairs_cannot_deadlock() {
        loom::model(|| {
            let (a, b) = distinct_ids();
            let table = Arc::new(LockTable::new());
            let t = {
                let table = Arc::clone(&table);
                thread::spawn(move || {
                    let _g = table.write_pair(b, a);
                })
            };
            let _g = table.write_pair(a, b);
            drop(_g);
            t.join().unwrap();
        });
    }

    #[test]
    fn same_cell_pair_takes_one_lock() {
        loom::model(|| {
            let table = LockTable::new();
            // Same id twice always collapses to a single cell — a
            // double write-lock here would self-deadlock instantly.
            let _g = table.write_pair("x", "x");
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for id in ["", "a", "clip_0", "some-long-object-identifier-000"] {
            let s = LockTable::shard_of(id);
            assert!(s < SHARD_COUNT);
            assert_eq!(s, LockTable::shard_of(id));
        }
    }

    #[test]
    fn reads_of_one_id_are_concurrent() {
        let table = LockTable::new();
        let g1 = table.read_lock("obj");
        let g2 = table.read_lock("obj");
        drop(g1);
        drop(g2);
    }

    #[test]
    fn write_excludes_write_on_same_id() {
        let table = Arc::new(LockTable::new());
        let g = table.write_lock("obj");
        let t = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                let _g = table.write_lock("obj");
            })
        };
        // The spawned writer must be blocked until we release.
        thread::sleep(std::time::Duration::from_millis(20));
        drop(g);
        t.join().expect("writer finishes after release");
    }

    #[test]
    fn same_id_pair_collapses_to_one_cell() {
        let table = LockTable::new();
        // Would self-deadlock if write_pair double-locked the cell.
        let _g = table.write_pair("x", "x");
    }

    /// Std-thread mirror of the loom model: many rounds of two threads
    /// taking the same pair in opposite argument order. A deadlock here
    /// hangs the suite (caught by the harness timeout) — with ascending
    /// acquisition it always completes.
    #[test]
    fn opposite_order_write_pairs_complete() {
        // Find two ids in distinct cells so both locks are really taken.
        let ids = ["a", "b", "c", "d", "e"];
        let (x, y) = ids
            .iter()
            .flat_map(|x| ids.iter().map(move |y| (*x, *y)))
            .find(|(x, y)| LockTable::shard_of(x) != LockTable::shard_of(y))
            .expect("five ids cannot all share one of 64 cells");
        let table = Arc::new(LockTable::new());
        for _ in 0..200 {
            let t = {
                let table = Arc::clone(&table);
                thread::spawn(move || {
                    let _g = table.write_pair(y, x);
                })
            };
            let _g = table.write_pair(x, y);
            drop(_g);
            t.join().expect("no deadlock, no panic");
        }
    }
}
