//! A minimal, panic-free JSON reader/writer for the store's metadata
//! files.
//!
//! The store deliberately avoids serde so the whole storage stack stays
//! dependency-free (and fully covered by the offline verification
//! harness). The subset implemented here is exactly what the metadata
//! schemas need: objects, arrays, strings (with `\uXXXX` escapes),
//! non-negative integers, booleans and null. Parsing never panics; every
//! malformed input comes back as a `Err(String)` that callers wrap into
//! `StoreError::Corrupt`.

use std::collections::BTreeMap;

/// Parsed JSON value. Numbers are kept as `u64` — every numeric field in
/// the store's schemas (lengths, counts, node ids) is a non-negative
/// integer, and refusing floats keeps round-trips exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    Num(u64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object (sorted keys, deterministic output).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The `u64` inside, if this is a number.
    pub fn as_num(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The `&str` inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The `bool` inside, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Serialize to compact JSON text (sorted keys — byte-deterministic
    /// for identical values, which keeps metadata diffs and atomic
    /// rewrites honest).
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => out.push_str(&n.to_string()),
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: build an object value from key/value pairs.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Parse a complete JSON document. Trailing non-whitespace is an error,
/// as is nesting beyond a fixed depth (the schemas are three levels
/// deep; the limit only exists so adversarial input can't blow the
/// stack).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        let end = self.pos + word.len();
        if self.bytes.len() >= end && &self.bytes[self.pos..end] == word.as_bytes() {
            self.pos = end;
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
            return Err(format!("non-integer number at byte {start}"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8 in number".to_string())?;
        text.parse::<u64>()
            .map(Value::Num)
            .map_err(|_| format!("number out of range at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex_start = self.pos + 1;
                            let hex_end = hex_start + 4;
                            let hex = self
                                .bytes
                                .get(hex_start..hex_end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let c = char::from_u32(code)
                                .ok_or("surrogate \\u escape unsupported".to_string())?;
                            out.push(c);
                            self.pos = hex_end - 1;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = obj(vec![
            ("k", Value::Num(6)),
            ("id", Value::Str("clip-01".to_string())),
            ("flag", Value::Bool(true)),
            ("rows", Value::Arr(vec![Value::Num(1), Value::Num(2)])),
            ("none", Value::Null),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text), Ok(v));
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}é".to_string());
        assert_eq!(parse(&v.to_string()), Ok(v));
    }

    #[test]
    fn truncated_inputs_error_without_panicking() {
        let full = obj(vec![
            ("stripes", Value::Num(3)),
            ("root", Value::Str("ab".repeat(16))),
        ])
        .to_string();
        for cut in 0..full.len() {
            assert!(
                parse(&full[..cut]).is_err(),
                "prefix of len {cut} parsed unexpectedly"
            );
        }
        assert!(parse(&full).is_ok());
    }

    #[test]
    fn rejects_floats_trailing_data_and_deep_nesting() {
        assert!(parse("1.5").is_err());
        assert!(parse("-3").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("1e9").is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn deterministic_key_order() {
        let a = parse(r#"{"b":1,"a":2}"#).unwrap_or(Value::Null);
        assert_eq!(a.to_string(), r#"{"a":2,"b":1}"#);
    }
}
