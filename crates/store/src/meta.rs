//! Metadata schemas (`config.json`, `state.json`, per-object manifests)
//! and the crash-safe atomic writer they all go through.
//!
//! Every metadata write lands in a temp file in the same directory and
//! is then `rename`d over the target, so readers observe either the old
//! or the new version in full — never a torn write. A truncated or
//! hand-mangled file fails typed (`StoreError::Corrupt`), it never
//! panics and never silently misparses.

use crate::hash::Digest;
use crate::json::{self, obj, Value};
use crate::{merkle, StoreError};
use apec_ec::ErasureCode;
use approx_code::{ApproxCode, BaseFamily, Structure};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Persisted code configuration (schema of `config.json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Base family name: `rs`, `lrc`, `star`, `tip`.
    pub family: String,
    /// Data nodes per local stripe.
    pub k: usize,
    /// Local parities per stripe.
    pub r: usize,
    /// Global parities.
    pub g: usize,
    /// Stripes per global stripe (importance ratio 1/h).
    pub h: usize,
    /// `even` or `uneven`.
    pub structure: String,
    /// Shard length in bytes.
    pub shard_len: usize,
}

impl StoreConfig {
    /// The small demonstration configuration (RS base, `k=4 r=1 g=2
    /// h=3`, uneven structure, 192-byte shards — 17 nodes): the default
    /// for `apec serve` and the serve smoke tests.
    pub fn demo(family: &str) -> StoreConfig {
        StoreConfig {
            family: family.to_string(),
            k: 4,
            r: 1,
            g: 2,
            h: 3,
            structure: "uneven".to_string(),
            shard_len: 192,
        }
    }

    /// Instantiates the code this store encodes under.
    pub fn code(&self) -> Result<ApproxCode, StoreError> {
        let family = match self.family.as_str() {
            "rs" => BaseFamily::Rs,
            "lrc" => BaseFamily::Lrc,
            "star" => BaseFamily::Star,
            "tip" => BaseFamily::Tip,
            other => return Err(StoreError::User(format!("unknown family '{other}'"))),
        };
        let structure = match self.structure.as_str() {
            "even" => Structure::Even,
            "uneven" => Structure::Uneven,
            other => return Err(StoreError::User(format!("unknown structure '{other}'"))),
        };
        ApproxCode::build_named(family, self.k, self.r, self.g, self.h, structure)
            .map_err(|e| StoreError::User(format!("invalid parameters: {e}")))
    }

    /// Validates the configured shard length against the code's alignment.
    pub fn check_shard_len(&self, code: &ApproxCode) -> Result<(), StoreError> {
        if self.shard_len == 0 || !self.shard_len.is_multiple_of(code.shard_alignment()) {
            return Err(StoreError::User(format!(
                "shard_len {} must be a positive multiple of {}",
                self.shard_len,
                code.shard_alignment()
            )));
        }
        Ok(())
    }

    /// Serialize to the `config.json` wire form.
    pub fn to_json(&self) -> String {
        obj(vec![
            ("family", Value::Str(self.family.clone())),
            ("k", Value::Num(self.k as u64)),
            ("r", Value::Num(self.r as u64)),
            ("g", Value::Num(self.g as u64)),
            ("h", Value::Num(self.h as u64)),
            ("structure", Value::Str(self.structure.clone())),
            ("shard_len", Value::Num(self.shard_len as u64)),
        ])
        .to_string()
    }

    /// Parse `config.json` text. Truncation or type mismatch is a typed
    /// `Corrupt` error.
    pub fn from_json(text: &str) -> Result<StoreConfig, StoreError> {
        let v = parse_doc(text, "config.json")?;
        Ok(StoreConfig {
            family: req_str(&v, "family", "config.json")?,
            k: req_usize(&v, "k", "config.json")?,
            r: req_usize(&v, "r", "config.json")?,
            g: req_usize(&v, "g", "config.json")?,
            h: req_usize(&v, "h", "config.json")?,
            structure: req_str(&v, "structure", "config.json")?,
            shard_len: req_usize(&v, "shard_len", "config.json")?,
        })
    }
}

/// Mutable store state (schema of `state.json`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreState {
    /// Nodes currently dead (killed and not yet repaired onto), sorted.
    pub dead_nodes: Vec<usize>,
}

impl StoreState {
    /// Serialize to the `state.json` wire form.
    pub fn to_json(&self) -> String {
        obj(vec![(
            "dead_nodes",
            Value::Arr(self.dead_nodes.iter().map(|&n| Value::Num(n as u64)).collect()),
        )])
        .to_string()
    }

    /// Parse `state.json` text.
    pub fn from_json(text: &str) -> Result<StoreState, StoreError> {
        let v = parse_doc(text, "state.json")?;
        let arr = v
            .get("dead_nodes")
            .and_then(Value::as_arr)
            .ok_or_else(|| corrupt("state.json", "missing 'dead_nodes' array"))?;
        let mut dead_nodes = Vec::with_capacity(arr.len());
        for item in arr {
            dead_nodes.push(to_usize(item, "state.json", "dead_nodes entry")?);
        }
        dead_nodes.sort_unstable();
        dead_nodes.dedup();
        Ok(StoreState { dead_nodes })
    }
}

/// Per-object metadata (embedded in the manifest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Object id (also the file stem).
    pub id: String,
    /// Stripe count.
    pub stripes: usize,
    /// Bytes in the important stream.
    pub important_len: usize,
    /// Bytes in the unimportant stream.
    pub unimportant_len: usize,
    /// `true` once a beyond-tolerance repair zero-filled part of the
    /// unimportant stream; reads of this object are approximate.
    pub approximated: bool,
}

/// Per-object manifest (schema of `objects/<id>.json`): metadata plus
/// the Merkle commitment to every shard the object was written as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Object metadata.
    pub meta: ObjectMeta,
    /// `leaves[stripe][node]` = digest of that shard's payload.
    pub leaves: Vec<Vec<Digest>>,
    /// Object Merkle root over the stripe roots.
    pub root: Digest,
}

impl Manifest {
    /// Build a manifest from metadata and its shard leaves, computing
    /// the root.
    pub fn build(meta: ObjectMeta, leaves: Vec<Vec<Digest>>) -> Manifest {
        let root = Self::root_of(&leaves);
        Manifest { meta, leaves, root }
    }

    /// Recompute the object root implied by `leaves`.
    pub fn root_of(leaves: &[Vec<Digest>]) -> Digest {
        let stripe_roots: Vec<Digest> = leaves.iter().map(|l| merkle::stripe_root(l)).collect();
        merkle::object_root(&stripe_roots)
    }

    /// Serialize to the manifest wire form.
    pub fn to_json(&self) -> String {
        obj(vec![
            ("id", Value::Str(self.meta.id.clone())),
            ("stripes", Value::Num(self.meta.stripes as u64)),
            ("important_len", Value::Num(self.meta.important_len as u64)),
            ("unimportant_len", Value::Num(self.meta.unimportant_len as u64)),
            ("approximated", Value::Bool(self.meta.approximated)),
            (
                "leaves",
                Value::Arr(
                    self.leaves
                        .iter()
                        .map(|stripe| {
                            Value::Arr(
                                stripe.iter().map(|d| Value::Str(d.to_hex())).collect(),
                            )
                        })
                        .collect(),
                ),
            ),
            ("root", Value::Str(self.root.to_hex())),
        ])
        .to_string()
    }

    /// Parse and *verify* a manifest: the stored root must match the
    /// root recomputed from the stored leaves, the leaf matrix must be
    /// `stripes × nodes_per_stripe`, and every digest must be valid hex.
    pub fn from_json(text: &str, what: &str) -> Result<Manifest, StoreError> {
        let v = parse_doc(text, what)?;
        let meta = ObjectMeta {
            id: req_str(&v, "id", what)?,
            stripes: req_usize(&v, "stripes", what)?,
            important_len: req_usize(&v, "important_len", what)?,
            unimportant_len: req_usize(&v, "unimportant_len", what)?,
            approximated: v
                .get("approximated")
                .and_then(Value::as_bool)
                .ok_or_else(|| corrupt(what, "missing 'approximated' bool"))?,
        };
        let leaf_rows = v
            .get("leaves")
            .and_then(Value::as_arr)
            .ok_or_else(|| corrupt(what, "missing 'leaves' array"))?;
        if leaf_rows.len() != meta.stripes {
            return Err(corrupt(
                what,
                &format!("{} leaf rows for {} stripes", leaf_rows.len(), meta.stripes),
            ));
        }
        let mut leaves = Vec::with_capacity(leaf_rows.len());
        let mut width = None;
        for row in leaf_rows {
            let row = row
                .as_arr()
                .ok_or_else(|| corrupt(what, "leaf row is not an array"))?;
            if *width.get_or_insert(row.len()) != row.len() {
                return Err(corrupt(what, "ragged leaf matrix"));
            }
            let mut digests = Vec::with_capacity(row.len());
            for cell in row {
                let hex = cell
                    .as_str()
                    .ok_or_else(|| corrupt(what, "leaf is not a string"))?;
                digests.push(
                    Digest::parse_hex(hex).ok_or_else(|| corrupt(what, "leaf is not hex"))?,
                );
            }
            leaves.push(digests);
        }
        let root_hex = req_str(&v, "root", what)?;
        let root =
            Digest::parse_hex(&root_hex).ok_or_else(|| corrupt(what, "root is not hex"))?;
        if Self::root_of(&leaves) != root {
            return Err(corrupt(what, "merkle root does not match leaves"));
        }
        Ok(Manifest {
            meta,
            leaves,
            root,
        })
    }
}

fn corrupt(what: &str, msg: &str) -> StoreError {
    StoreError::Corrupt(format!("{what}: {msg}"))
}

fn parse_doc(text: &str, what: &str) -> Result<Value, StoreError> {
    json::parse(text).map_err(|e| corrupt(what, &e))
}

fn req_str(v: &Value, key: &str, what: &str) -> Result<String, StoreError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| corrupt(what, &format!("missing string field '{key}'")))
}

fn req_usize(v: &Value, key: &str, what: &str) -> Result<usize, StoreError> {
    let field = v
        .get(key)
        .ok_or_else(|| corrupt(what, &format!("missing numeric field '{key}'")))?;
    to_usize(field, what, key)
}

fn to_usize(v: &Value, what: &str, key: &str) -> Result<usize, StoreError> {
    let n = v
        .as_num()
        .ok_or_else(|| corrupt(what, &format!("field '{key}' is not a number")))?;
    usize::try_from(n).map_err(|_| corrupt(what, &format!("field '{key}' out of range")))
}

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `bytes` to `path` atomically: temp sibling + rename. On any
/// failure the temp file is cleaned up and the previous version of
/// `path` (if any) is untouched.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path)?;
    fs::write(&tmp, bytes)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

fn tmp_sibling(path: &Path) -> io::Result<PathBuf> {
    let dir = path.parent().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "path has no parent directory")
    })?;
    let stem = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("meta");
    let unique = format!(
        ".{stem}.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::SeqCst)
    );
    Ok(dir.join(unique))
}

/// Read a metadata file, mapping a missing file to `None` and any other
/// I/O failure to `Io`.
pub fn read_optional(path: &Path) -> Result<Option<String>, StoreError> {
    match fs::read_to_string(path) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(StoreError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merkle::leaf;

    fn config() -> StoreConfig {
        StoreConfig {
            family: "rs".into(),
            k: 4,
            r: 1,
            g: 2,
            h: 3,
            structure: "uneven".into(),
            shard_len: 192,
        }
    }

    #[test]
    fn config_round_trip() {
        let c = config();
        assert_eq!(StoreConfig::from_json(&c.to_json()).map_err(|e| e.to_string()), Ok(c));
    }

    #[test]
    fn state_round_trip_sorts_and_dedups() {
        let s = StoreState { dead_nodes: vec![4, 1] };
        let text = r#"{"dead_nodes":[4,1,4]}"#;
        assert_eq!(
            StoreState::from_json(text).map_err(|e| e.to_string()),
            Ok(StoreState { dead_nodes: vec![1, 4] })
        );
        let round = StoreState::from_json(&s.to_json());
        assert_eq!(round.map_err(|e| e.to_string()), Ok(StoreState { dead_nodes: vec![1, 4] }));
    }

    fn manifest() -> Manifest {
        let leaves: Vec<Vec<Digest>> = (0..2)
            .map(|s| (0..5).map(|n| leaf(format!("{s}:{n}").as_bytes())).collect())
            .collect();
        Manifest::build(
            ObjectMeta {
                id: "clip-1".into(),
                stripes: 2,
                important_len: 100,
                unimportant_len: 300,
                approximated: false,
            },
            leaves,
        )
    }

    #[test]
    fn manifest_round_trip() {
        let m = manifest();
        let parsed = Manifest::from_json(&m.to_json(), "test");
        assert_eq!(parsed.map_err(|e| e.to_string()), Ok(m));
    }

    #[test]
    fn truncated_manifest_is_typed_corrupt_not_panic() {
        let text = manifest().to_json();
        for cut in 0..text.len() {
            match Manifest::from_json(&text[..cut], "test") {
                Err(StoreError::Corrupt(_)) => {}
                other => panic!("prefix {cut}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn tampered_root_or_leaf_is_rejected() {
        let m = manifest();
        let tampered_root = m.to_json().replace(&m.root.to_hex(), &"0".repeat(64));
        assert!(matches!(
            Manifest::from_json(&tampered_root, "test"),
            Err(StoreError::Corrupt(_))
        ));
        let first_leaf = m.leaves[0][0].to_hex();
        let tampered_leaf = m.to_json().replace(&first_leaf, &"f".repeat(64));
        assert!(matches!(
            Manifest::from_json(&tampered_leaf, "test"),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp(){
        let dir = std::env::temp_dir().join(format!("apec-meta-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("state.json");
        write_atomic(&target, b"one").unwrap();
        write_atomic(&target, b"two").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"two");
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "temp files left behind: {stray:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
