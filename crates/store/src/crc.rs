//! CRC-32 (IEEE 802.3, the `crc32fast` polynomial) — std-only and
//! table-driven.
//!
//! Every shard file is framed as `[crc32 LE | payload]` so the store can
//! tell a bit-rotted shard from a healthy one *before* feeding it to the
//! decoder (Snippet-1-style framing: an erasure code reconstructs around
//! losses it knows about; silent corruption has to be detected first).
//! The 256-entry table is built in a `const` context, so the whole module
//! is allocation- and dependency-free.

/// Bytes of CRC framing prefixed to every shard payload on disk.
pub const CRC_BYTES: usize = 4;

/// Reflected CRC-32 polynomial (IEEE 802.3).
const POLY: u32 = 0xedb8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, reflected, init/final `!0`) — the same value
/// `crc32fast::hash` produces.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    #[test]
    fn single_bit_flip_changes_the_crc() {
        let mut buf: Vec<u8> = (0..255u8).collect();
        let clean = crc32(&buf);
        for byte in 0..buf.len() {
            for bit in 0..8 {
                buf[byte] ^= 1 << bit; // raw-xor-ok: test bit flip, not shard math
                assert_ne!(crc32(&buf), clean, "flip at {byte}.{bit} undetected");
                buf[byte] ^= 1 << bit; // raw-xor-ok: test bit flip, not shard math
            }
        }
        assert_eq!(crc32(&buf), clean, "restored buffer matches again");
    }
}
